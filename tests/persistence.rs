//! Integration: everything that touches bytes — the disk store under the
//! pipeline, NetFlow wire codecs feeding the store, the alarm DB — plus
//! failure injection on corrupted inputs.

use anomex::flow::store::disk;
use anomex::flow::v5::{self, ExportBase};
use anomex::flow::v9;
use anomex::prelude::*;

fn scan_scenario(seed: u64) -> BuiltScenario {
    let mut spec = AnomalySpec::template(
        AnomalyKind::PortScan,
        "10.9.0.1".parse().unwrap(),
        "172.16.1.2".parse().unwrap(),
    );
    spec.flows = 3_000;
    let mut scenario = Scenario::new("persist", seed, Backbone::Switch).with_anomaly(spec);
    scenario.background.flows = 2_000;
    scenario.build()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("anomex-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn extraction_identical_before_and_after_disk_roundtrip() {
    let built = scan_scenario(1);
    let path = tmp("roundtrip.anomex");
    disk::save(&built.store, &path).unwrap();
    let reloaded = disk::load(&path).unwrap();
    assert_eq!(reloaded.len(), built.store.len());

    let alarm = Alarm::new(0, "it", built.scenario.window())
        .with_hints(vec![FeatureItem::src_ip("10.9.0.1".parse().unwrap())]);
    let ex = Extractor::with_defaults();
    let before = ex.extract(&built.store, &alarm);
    let after = ex.extract(&reloaded, &alarm);
    assert_eq!(before.itemsets, after.itemsets, "disk roundtrip changed mining results");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corrupted_store_file_is_rejected_not_misread() {
    let built = scan_scenario(2);
    let path = tmp("corrupt.anomex");
    disk::save(&built.store, &path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert!(disk::load(&path).is_err(), "bit flip must fail the CRC");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncated_store_file_is_rejected() {
    let built = scan_scenario(3);
    let path = tmp("truncated.anomex");
    disk::save(&built.store, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
    assert!(disk::load(&path).is_err());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn v5_export_feeds_the_pipeline() {
    // Flows -> v5 packets -> decode -> store -> extract.
    let built = scan_scenario(4);
    let flows = built.store.snapshot();
    let base = ExportBase::epoch();
    let store = FlowStore::new(60_000);
    let mut sequence = 0u32;
    for chunk in flows.chunks(30) {
        let packet = v5::encode(chunk, base, sequence).unwrap();
        sequence += chunk.len() as u32;
        let decoded = v5::decode(&packet).unwrap();
        store.insert_batch(decoded.records);
    }
    assert_eq!(store.len(), flows.len());

    let alarm = Alarm::new(0, "it", built.scenario.window())
        .with_hints(vec![FeatureItem::src_ip("10.9.0.1".parse().unwrap())]);
    let extraction = Extractor::with_defaults().extract(&store, &alarm);
    assert!(!extraction.is_empty(), "scan lost crossing the v5 wire");
    assert_eq!(extraction.itemsets[0].flow_support, 3_000);
}

#[test]
fn v9_export_feeds_the_pipeline() {
    let built = scan_scenario(5);
    let flows = built.store.snapshot();
    let base = ExportBase::epoch();
    let store = FlowStore::new(60_000);
    let mut cache = v9::TemplateCache::new();
    for chunk in flows.chunks(100) {
        let packet = v9::encode(chunk, base, 0, 7);
        let decoded = v9::decode(&packet, &mut cache).unwrap();
        store.insert_batch(decoded.records);
    }
    assert_eq!(store.len(), flows.len());
    let alarm = Alarm::new(0, "it", built.scenario.window())
        .with_hints(vec![FeatureItem::src_ip("10.9.0.1".parse().unwrap())]);
    let extraction = Extractor::with_defaults().extract(&store, &alarm);
    assert!(!extraction.is_empty(), "scan lost crossing the v9 wire");
}

#[test]
fn alarm_db_survives_detector_to_console_handoff() {
    let built = scan_scenario(6);
    let flows = built.store.snapshot();
    let span = built.scenario.window();
    let mut detector = KlDetector::new(KlConfig { interval_ms: 60_000, ..KlConfig::default() });
    let alarms = detector.detect(&flows, span);

    let path = tmp("alarms-it.json");
    let _ = std::fs::remove_file(&path);
    let mut db = AlarmDb::open(&path).unwrap();
    db.add_all(alarms);
    // Synthesize one alarm in case the 5-minute single window gave the
    // detector nothing to baseline against.
    db.add(
        Alarm::new(0, "manual", span)
            .with_hints(vec![FeatureItem::src_ip("10.9.0.1".parse().unwrap())]),
    );
    db.save().unwrap();

    let db2 = AlarmDb::open(&path).unwrap();
    assert_eq!(db2.len(), db.len());
    let mut console = Console::new(built.store, db2);
    let mut out = Vec::new();
    let last = format!("alarm {}\nextract\nquit\n", db.len() - 1);
    console.run(std::io::Cursor::new(format!("alarms\n{last}")), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("10.9.0.1"), "{text}");
    std::fs::remove_file(&path).unwrap();
}

//! Integration: the byte-support metric as a custom pipeline — hunting
//! alpha flows (benign bulk transfers that trip volume detectors). The
//! paper's extractor mines flows+packets; bytes is the natural third
//! axis and exercises the same encode→mine→decode path.

use anomex::prelude::*;

fn alpha_scenario(seed: u64) -> BuiltScenario {
    let mut spec = AnomalySpec::template(
        AnomalyKind::AlphaFlow,
        "10.2.0.44".parse().unwrap(),
        "172.16.4.4".parse().unwrap(),
    );
    spec.packets = 800_000; // ~1.1 GB transfer
    let mut scenario = Scenario::new("alpha", seed, Backbone::Switch).with_anomaly(spec);
    scenario.background.flows = 15_000;
    scenario.build()
}

#[test]
fn byte_weighted_mining_finds_the_transfer() {
    let built = alpha_scenario(31);
    let flows = built.store.snapshot();
    let txs = encode_flows(&flows, SupportMetric::Bytes);
    let result = mine_top_k(&txs, &TopKConfig { k: 3, floor: 1_000_000, ..TopKConfig::default() });
    assert!(!result.itemsets.is_empty(), "byte mining found nothing");
    // The top byte-support itemset is the transfer's full 4-tuple.
    let top = decode_itemset(&result.itemsets[0].itemset);
    assert!(
        top.contains(&FeatureItem::src_ip("10.2.0.44".parse().unwrap())),
        "top byte itemset is not the alpha flow: {top:?}"
    );
    // And its byte support dwarfs everything the flow metric ranks first.
    let flow_txs = encode_flows(&flows, SupportMetric::Flows);
    let alpha_itemset = &result.itemsets[0].itemset;
    assert!(flow_txs.support_of(alpha_itemset) <= 2, "alpha flow must be flow-rare");
}

#[test]
fn byte_and_packet_rankings_can_disagree() {
    // A scan (many flows, tiny packets/bytes) plus an alpha flow (two
    // flows, huge bytes) in one trace: flow metric ranks the scan first,
    // byte metric the transfer.
    let mut scan = AnomalySpec::template(
        AnomalyKind::PortScan,
        "10.2.0.99".parse().unwrap(),
        "172.16.4.9".parse().unwrap(),
    );
    scan.flows = 9_000;
    let mut alpha = AnomalySpec::template(
        AnomalyKind::AlphaFlow,
        "10.2.0.44".parse().unwrap(),
        "172.16.4.4".parse().unwrap(),
    );
    alpha.packets = 700_000;
    let mut scenario =
        Scenario::new("mixed", 32, Backbone::Switch).with_anomaly(scan).with_anomaly(alpha);
    scenario.background.flows = 5_000;
    let built = scenario.build();
    let flows = built.store.snapshot();

    let scan_sig =
        Itemset::new(built.truth.anomalies[0].signature.iter().map(|&fi| item_of(fi)).collect());
    let alpha_sig =
        Itemset::new(built.truth.anomalies[1].signature.iter().map(|&fi| item_of(fi)).collect());

    let by_flows = encode_flows(&flows, SupportMetric::Flows);
    let by_bytes = encode_flows(&flows, SupportMetric::Bytes);
    assert!(
        by_flows.support_of(&scan_sig) > by_flows.support_of(&alpha_sig),
        "flow metric must prefer the scan"
    );
    assert!(
        by_bytes.support_of(&alpha_sig) > by_bytes.support_of(&scan_sig),
        "byte metric must prefer the transfer"
    );
}

#[test]
fn all_three_metrics_agree_on_identical_traffic() {
    // Uniform traffic: the *ranking* under any metric is the same single
    // full itemset; only the support scale differs.
    let store = FlowStore::new(60_000);
    for i in 0..200u64 {
        store.insert(
            FlowRecord::builder()
                .time(i, i + 1)
                .src("10.0.0.1".parse().unwrap(), 7777)
                .dst("172.16.0.1".parse().unwrap(), 80)
                .volume(10, 5_000)
                .build(),
        );
    }
    let flows = store.snapshot();
    for (metric, expect_total) in [
        (SupportMetric::Flows, 200u64),
        (SupportMetric::Packets, 2_000),
        (SupportMetric::Bytes, 1_000_000),
    ] {
        let txs = encode_flows(&flows, metric);
        assert_eq!(txs.total_weight(), expect_total, "{metric}");
        let mined = mine_top_k(&txs, &TopKConfig { k: 5, floor: 1, ..TopKConfig::default() });
        assert_eq!(mined.itemsets.len(), 1, "{metric}");
        assert_eq!(mined.itemsets[0].support, expect_total, "{metric}");
        assert_eq!(decode_itemset(&mined.itemsets[0].itemset).len(), 4, "{metric}");
    }
}

//! Stress and property coverage for the lock-free MPMC ring channel in
//! `vendor/crossbeam` — the highest-traffic primitive in the streaming
//! ingest path.
//!
//! The soak test hammers N producers × M consumers over a small ring
//! (forcing constant full/empty parking transitions, lap wrap-around,
//! and CAS contention) and asserts the three channel invariants the
//! pipeline relies on: **no loss**, **no duplication**, and **FIFO per
//! producer** (each consumer's observed subsequence of any single
//! producer is in send order — the property that keeps shard windows
//! deterministic). The proptest pins batched `send_many`/`recv_many`
//! delivery to the per-message path: same messages, same order, any
//! interleaving of batch sizes.

use std::collections::HashMap;

use crossbeam::channel::{bounded, Receiver, Sender};
use proptest::prelude::*;

/// Messages are `(producer_id, seq)` so every invariant is checkable
/// from the consumers' transcripts alone.
type Tagged = (usize, u64);

fn soak(producers: usize, consumers: usize, per_producer: u64, cap: usize) {
    let (tx, rx) = bounded::<Tagged>(cap);
    let producer_threads: Vec<_> = (0..producers)
        .map(|p| {
            let tx: Sender<Tagged> = tx.clone();
            std::thread::spawn(move || {
                // Mix batched and per-message sends: odd producers use
                // send_many (uneven flush sizes), even producers send
                // one message at a time.
                if p % 2 == 1 {
                    let mut batch = Vec::new();
                    for seq in 0..per_producer {
                        batch.push((p, seq));
                        if batch.len() as u64 > (seq % 17) {
                            tx.send_many(&mut batch).expect("receivers alive");
                        }
                    }
                    tx.send_many(&mut batch).expect("receivers alive");
                } else {
                    for seq in 0..per_producer {
                        tx.send((p, seq)).expect("receivers alive");
                    }
                }
            })
        })
        .collect();
    drop(tx);
    let consumer_threads: Vec<_> = (0..consumers)
        .map(|c| {
            let rx: Receiver<Tagged> = rx.clone();
            std::thread::spawn(move || {
                // Alternate recv and recv_many so both entry points see
                // contention.
                let mut got: Vec<Tagged> = Vec::new();
                loop {
                    if c % 2 == 0 {
                        let n = rx.recv_many(&mut got, 1 + c * 7);
                        if n == 0 {
                            break;
                        }
                    } else {
                        match rx.recv() {
                            Ok(msg) => got.push(msg),
                            Err(_) => break,
                        }
                    }
                }
                got
            })
        })
        .collect();
    drop(rx);
    for t in producer_threads {
        t.join().unwrap();
    }
    let transcripts: Vec<Vec<Tagged>> =
        consumer_threads.into_iter().map(|t| t.join().unwrap()).collect();

    // FIFO per producer within each consumer: the ring dequeues any one
    // producer's messages in send order, and one consumer's pops are
    // totally ordered, so its per-producer subsequence must ascend.
    for (c, transcript) in transcripts.iter().enumerate() {
        let mut last_seq: HashMap<usize, u64> = HashMap::new();
        for &(p, seq) in transcript {
            if let Some(&prev) = last_seq.get(&p) {
                assert!(
                    seq > prev,
                    "consumer {c} saw producer {p} go {prev} -> {seq} (FIFO violation)"
                );
            }
            last_seq.insert(p, seq);
        }
    }

    // No loss, no duplication: the union of transcripts is exactly the
    // sent multiset.
    let mut all: Vec<Tagged> = transcripts.into_iter().flatten().collect();
    assert_eq!(all.len() as u64, producers as u64 * per_producer, "message count mismatch");
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len() as u64, producers as u64 * per_producer, "duplicated delivery");
    for p in 0..producers {
        for seq in 0..per_producer {
            // all is sorted; binary search keeps the check O(n log n).
            assert!(all.binary_search(&(p, seq)).is_ok(), "lost ({p}, {seq})");
        }
    }
}

#[test]
fn mpmc_soak_no_loss_no_dup_fifo_per_producer() {
    // Scale the soak with the proptest profile machinery so debug runs
    // and PROPTEST_CASES-capped CI stay fast while release runs hammer
    // properly.
    let scale = ProptestConfig::profile_cases(64).cases as u64;
    // Tiny capacity (7, deliberately not a power of two) maximizes
    // full/empty transitions and exercises the lap arithmetic.
    soak(4, 3, 500 * scale, 7);
}

#[test]
fn mpmc_soak_wide_and_shallow() {
    let scale = ProptestConfig::profile_cases(32).cases as u64;
    soak(8, 8, 100 * scale, 2);
}

#[test]
fn spsc_soak_large_capacity() {
    let scale = ProptestConfig::profile_cases(64).cases as u64;
    soak(1, 1, 2_000 * scale, 1_024);
}

proptest! {
    #![proptest_config(ProptestConfig::profile_cases(48))]

    /// Batched delivery is indistinguishable from per-message delivery:
    /// chunking arbitrary messages through `send_many` and draining
    /// with `recv_many` yields exactly the per-message transcript.
    #[test]
    fn batched_send_recv_equals_per_message(
        messages in proptest::collection::vec(any::<u32>(), 0..400),
        send_chunk in 1usize..48,
        recv_chunk in 1usize..48,
        cap in 1usize..32,
    ) {
        // Per-message reference path.
        let reference: Vec<u32> = {
            let (tx, rx) = bounded::<u32>(cap);
            let msgs = messages.clone();
            let producer = std::thread::spawn(move || {
                for m in msgs {
                    tx.send(m).unwrap();
                }
            });
            let collected: Vec<u32> = rx.iter().collect();
            producer.join().unwrap();
            collected
        };

        // Batched path: same messages, arbitrary chunk sizes both ends.
        let batched: Vec<u32> = {
            let (tx, rx) = bounded::<u32>(cap);
            let msgs = messages.clone();
            let producer = std::thread::spawn(move || {
                let mut batch = Vec::new();
                for m in msgs {
                    batch.push(m);
                    if batch.len() >= send_chunk {
                        tx.send_many(&mut batch).unwrap();
                    }
                }
                tx.send_many(&mut batch).unwrap();
            });
            let mut collected = Vec::new();
            while rx.recv_many(&mut collected, recv_chunk) > 0 {}
            producer.join().unwrap();
            collected
        };

        prop_assert_eq!(&reference, &messages, "per-message path must be lossless FIFO");
        prop_assert_eq!(&batched, &messages, "batched path must match per-message exactly");
    }

    /// Range-claim batching is observation-equivalent to the retained
    /// one-CAS-per-slot baseline (`send_many_per_slot` /
    /// `recv_many_per_slot`): for any messages, chunk sizes and ring
    /// capacity, both protocols produce the identical transcript — the
    /// single tail/head CAS per range and the per-slot stamp publishes
    /// change the cost, never the observable behavior.
    #[test]
    fn range_claim_batching_equals_the_per_slot_baseline(
        messages in proptest::collection::vec(any::<u32>(), 0..400),
        send_chunk in 1usize..48,
        recv_chunk in 1usize..48,
        cap in 1usize..32,
    ) {
        let run = |range_claim: bool| -> Vec<u32> {
            let (tx, rx) = bounded::<u32>(cap);
            let msgs = messages.clone();
            let producer = std::thread::spawn(move || {
                let mut batch = Vec::new();
                for m in msgs {
                    batch.push(m);
                    if batch.len() >= send_chunk {
                        if range_claim {
                            tx.send_many(&mut batch).unwrap();
                        } else {
                            tx.send_many_per_slot(&mut batch).unwrap();
                        }
                    }
                }
                if range_claim {
                    tx.send_many(&mut batch).unwrap();
                } else {
                    tx.send_many_per_slot(&mut batch).unwrap();
                }
            });
            let mut collected = Vec::new();
            if range_claim {
                while rx.recv_many(&mut collected, recv_chunk) > 0 {}
            } else {
                while rx.recv_many_per_slot(&mut collected, recv_chunk) > 0 {}
            }
            producer.join().unwrap();
            collected
        };

        let per_slot = run(false);
        let range = run(true);
        prop_assert_eq!(&per_slot, &messages, "per-slot baseline must be lossless FIFO");
        prop_assert_eq!(&range, &per_slot, "range-claim must match the per-slot baseline exactly");
    }
}

//! Integration: the pipeline's behavior on degenerate and hostile
//! inputs — empty intervals, hint mismatches, all-identical candidate
//! sets, zero-weight records, stealthy anomalies under deep sampling.

use anomex::prelude::*;

#[test]
fn alarm_over_empty_interval_yields_empty_extraction() {
    let store = FlowStore::new(60_000);
    let alarm = Alarm::new(0, "t", TimeRange::new(0, 300_000));
    let extraction = Extractor::with_defaults().extract(&store, &alarm);
    assert!(extraction.is_empty());
    assert_eq!(extraction.candidate_flows, 0);
}

#[test]
fn hints_matching_nothing_fall_back_to_nothing_not_panic() {
    let store = FlowStore::new(60_000);
    store.insert(FlowRecord::builder().time(1, 2).build());
    // Hints point at hosts that do not exist in the trace.
    let alarm = Alarm::new(0, "t", TimeRange::all())
        .with_hints(vec![FeatureItem::src_ip("203.0.113.99".parse().unwrap())]);
    let extraction = Extractor::with_defaults().extract(&store, &alarm);
    assert!(extraction.is_empty());
}

#[test]
fn alarm_window_outside_trace_time() {
    let store = FlowStore::new(60_000);
    store.insert(FlowRecord::builder().time(1_000, 2_000).build());
    let alarm = Alarm::new(0, "t", TimeRange::new(10_000_000, 10_300_000));
    let extraction = Extractor::with_defaults().extract(&store, &alarm);
    assert!(extraction.is_empty());
}

#[test]
fn all_identical_candidates_produce_single_full_itemset() {
    let store = FlowStore::new(60_000);
    for i in 0..500u64 {
        store.insert(
            FlowRecord::builder()
                .time(i, i + 1)
                .src("10.0.0.1".parse().unwrap(), 4000)
                .dst("172.16.0.1".parse().unwrap(), 80)
                .volume(2, 100)
                .build(),
        );
    }
    let alarm = Alarm::new(0, "t", TimeRange::all());
    let extraction = Extractor::with_defaults().extract(&store, &alarm);
    assert_eq!(extraction.itemsets.len(), 1);
    assert_eq!(extraction.itemsets[0].items.len(), 4);
    assert_eq!(extraction.itemsets[0].flow_support, 500);
}

#[test]
fn zero_packet_records_cannot_poison_packet_mining() {
    let store = FlowStore::new(60_000);
    for i in 0..100u64 {
        let mut f = FlowRecord::builder()
            .time(i, i + 1)
            .src("10.0.0.1".parse().unwrap(), 4000)
            .dst("172.16.0.1".parse().unwrap(), 80)
            .build();
        f.packets = 0; // malformed exporter output
        store.insert(f);
    }
    let alarm = Alarm::new(0, "t", TimeRange::all());
    let extraction = Extractor::with_defaults().extract(&store, &alarm);
    // Flow-support pass still sees them; packet pass must not panic.
    assert_eq!(extraction.candidate_flows, 100);
    for e in &extraction.itemsets {
        assert_eq!(e.packet_support, 0);
    }
}

#[test]
fn stealthy_scan_under_sampling_is_the_documented_failure() {
    // The paper's 6%: an anomaly too small to mine meaningfully.
    let mut spec = AnomalySpec::template(
        AnomalyKind::StealthyScan,
        "10.8.8.8".parse().unwrap(),
        "172.16.3.3".parse().unwrap(),
    );
    spec.flows = 40;
    let mut scenario =
        Scenario::new("stealthy", 5, Backbone::Geant).with_anomaly(spec).with_sampling(100);
    scenario.background.flows = 30_000;
    let built = scenario.build();
    let alarm = Alarm::new(0, "t", built.scenario.window()).with_hints(vec![
        FeatureItem::src_ip("10.8.8.8".parse().unwrap()),
        FeatureItem::dst_ip("172.16.3.3".parse().unwrap()),
    ]);
    let extraction = Extractor::with_defaults().extract(&built.store, &alarm);
    let observed = built.store.query(alarm.window, &Filter::any());
    let truth = TruthSet::new(vec![TruthEntry {
        id: 0,
        keys: built.truth.anomalies[0].keys.clone(),
        malicious: true,
    }]);
    let verdict = validate(&extraction, &observed, &truth, &ValidationConfig::default());
    assert!(!verdict.is_useful(), "a 40-flow scan sampled 1/100 must not be extractable");
}

#[test]
fn detector_on_constant_traffic_stays_silent() {
    // Perfectly flat traffic: PCA must not fabricate alarms from noise.
    let flows: Vec<FlowRecord> = (0..1200u64)
        .map(|i| {
            FlowRecord::builder()
                .time(i * 600, i * 600 + 100)
                .src(std::net::Ipv4Addr::from(0x0A000000 + (i % 10) as u32), 1000)
                .dst("172.16.0.1".parse().unwrap(), 80)
                .volume(2, 200)
                .build()
        })
        .collect();
    let span = TimeRange::new(0, 720_000);
    let mut pca = PcaDetector::new(PcaConfig { interval_ms: 60_000, ..PcaConfig::default() });
    assert!(pca.detect(&flows, span).is_empty());
    let mut kl = KlDetector::new(KlConfig { interval_ms: 60_000, ..KlConfig::default() });
    assert!(kl.detect(&flows, span).is_empty());
}

#[test]
fn extractor_handles_single_flow_candidate_set() {
    let store = FlowStore::new(60_000);
    store.insert(
        FlowRecord::builder()
            .time(10, 20)
            .src("10.0.0.1".parse().unwrap(), 1)
            .dst("172.16.0.1".parse().unwrap(), 2)
            .volume(1_000_000, 1_000_000_000)
            .build(),
    );
    let alarm = Alarm::new(0, "t", TimeRange::all());
    let extraction = Extractor::with_defaults().extract(&store, &alarm);
    // One flow is below the flow floor but far above the packet floor.
    assert_eq!(extraction.itemsets.len(), 1);
    assert_eq!(extraction.itemsets[0].packet_support, 1_000_000);
}

#[test]
fn console_survives_garbage_input() {
    let store = FlowStore::new(60_000);
    let db = AlarmDb::in_memory();
    let mut console = Console::new(store, db);
    let garbage = "alarm\nalarm nine\nflows -3\nset\nset k\nfilter ((((\nextract\nitemsets\n\u{0}\u{1}\nquit\n";
    let mut out = Vec::new();
    console
        .run(std::io::Cursor::new(garbage.to_string()), &mut out)
        .expect("console must not error on garbage");
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("usage: alarm"));
    assert!(text.contains("filter error"));
}

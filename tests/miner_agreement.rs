//! Cross-miner equivalence: property test + pre-refactor golden fixture.
//!
//! The fim docs promise that Apriori, FP-Growth and Eclat are three
//! independent [`Miner`] implementations over the columnar
//! `TransactionMatrix` producing *identical*, canonically ordered
//! output. Three layers of proof here:
//!
//! 1. a deterministic hand-checkable fixture (weighted supports computed
//!    by hand, both threshold flavors);
//! 2. a **golden fixture** captured from the seed's row-oriented miners
//!    *before* the columnar refactor
//!    (`tests/fixtures/miner_agreement_golden.json`, regenerate with
//!    `cargo run --release --example golden_gen`): the columnar miners
//!    must reproduce it **byte-identically**, for flow-support and
//!    packet-support weights alike;
//! 3. a property test over random weighted corpora, mining every
//!    algorithm under both weight views against a brute-force
//!    linear-scan reference.

use anomex::fim::Eclat;
use anomex::prelude::*;
use proptest::prelude::*;
use serde::{Serialize, Value};

/// A small market-basket-style fixture with known supports:
///
/// | transaction        | weight |
/// |--------------------|--------|
/// | {1, 2, 3}          | 4      |
/// | {1, 2}             | 3      |
/// | {1, 3}             | 2      |
/// | {2, 3}             | 2      |
/// | {1}                | 1      |
///
/// Weighted supports: {1}=10, {2}=9, {3}=8, {1,2}=7, {1,3}=6, {2,3}=6,
/// {1,2,3}=4.
fn fixture() -> TransactionSet {
    [(vec![1, 2, 3], 4), (vec![1, 2], 3), (vec![1, 3], 2), (vec![2, 3], 2), (vec![1], 1)]
        .into_iter()
        .map(|(items, weight)| Transaction::new(items.into_iter().map(Item).collect(), weight))
        .collect()
}

const ALGORITHMS: [Algorithm; 3] = [Algorithm::Apriori, Algorithm::FpGrowth, Algorithm::Eclat];

fn mine_with(algorithm: Algorithm, min_support: MinSupport) -> Vec<FrequentItemset> {
    mine(&fixture().to_matrix(), &MiningConfig { algorithm, min_support, max_len: 0, threads: 1 })
}

#[test]
fn three_miners_agree_on_fixed_transactions() {
    for threshold in [1, 4, 6, 7, 9, 10, 11] {
        let reference = mine_with(Algorithm::Apriori, MinSupport::Absolute(threshold));
        for algorithm in ALGORITHMS {
            let got = mine_with(algorithm, MinSupport::Absolute(threshold));
            assert_eq!(got, reference, "{algorithm} differs from apriori at threshold {threshold}");
        }
    }
}

#[test]
fn supports_match_hand_computed_values() {
    let got = mine_with(Algorithm::Apriori, MinSupport::Absolute(4));
    let expect: Vec<(Vec<u64>, u64)> = vec![
        (vec![1], 10),
        (vec![2], 9),
        (vec![3], 8),
        (vec![1, 2], 7),
        (vec![1, 3], 6),
        (vec![2, 3], 6),
        (vec![1, 2, 3], 4),
    ];
    assert_eq!(got.len(), expect.len());
    for (items, support) in expect {
        let itemset: Itemset = items.into_iter().map(Item).collect();
        let found = got
            .iter()
            .find(|f| f.itemset == itemset)
            .unwrap_or_else(|| panic!("missing itemset {itemset}"));
        assert_eq!(found.support, support, "wrong support for {itemset}");
    }
}

#[test]
fn fractional_threshold_agrees_across_miners() {
    // Total weight is 12; 0.5 means support >= 6.
    let reference = mine_with(Algorithm::Apriori, MinSupport::Fraction(0.5));
    assert_eq!(reference.len(), 6, "expected all but {{1,2,3}} at half support");
    for algorithm in ALGORITHMS {
        assert_eq!(mine_with(algorithm, MinSupport::Fraction(0.5)), reference, "{algorithm}");
    }
}

#[test]
fn max_len_and_parallel_counting_preserve_agreement() {
    let matrix = fixture().to_matrix();
    let bounded_reference = mine(
        &matrix,
        &MiningConfig {
            algorithm: Algorithm::Apriori,
            min_support: MinSupport::Absolute(4),
            max_len: 2,
            threads: 1,
        },
    );
    assert!(bounded_reference.iter().all(|f| f.itemset.len() <= 2));
    for algorithm in ALGORITHMS {
        let got = mine(
            &matrix,
            &MiningConfig {
                algorithm,
                min_support: MinSupport::Absolute(4),
                max_len: 2,
                threads: 4,
            },
        );
        assert_eq!(got, bounded_reference, "{algorithm} with max_len=2");
    }
}

// One corpus definition shared with the fixture regenerator.
include!("fixtures/golden_corpus.rs");

#[test]
fn columnar_miners_reproduce_the_pre_refactor_golden_fixture() {
    let raw = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/miner_agreement_golden.json"
    ))
    .expect("golden fixture present (see examples/golden_gen.rs before regenerating)");
    let doc: Value = serde_json::from_str(&raw).expect("fixture parses");
    let Value::Object(fields) = &doc else { panic!("fixture root must be an object") };
    let cases =
        fields.iter().find_map(|(k, v)| (k == "cases").then_some(v)).expect("fixture has cases");
    let Value::Array(cases) = cases else { panic!("cases must be an array") };
    assert!(cases.len() >= 6, "fixture covers both metrics at several thresholds");

    let flows = golden_corpus();
    for case in cases {
        let Value::Object(case) = case else { panic!("case must be an object") };
        let get = |name: &str| {
            case.iter().find_map(|(k, v)| (k == name).then_some(v)).expect("case field")
        };
        let metric = match get("metric") {
            Value::Str(s) if s == "flows" => SupportMetric::Flows,
            Value::Str(s) if s == "packets" => SupportMetric::Packets,
            other => panic!("unknown metric {other:?}"),
        };
        let Value::U64(min_support) = get("min_support") else { panic!("min_support") };
        let Value::U64(max_len) = get("max_len") else { panic!("max_len") };
        let expected =
            serde_json::to_string(get("results")).expect("re-serialize expected results");

        let matrix = encode_flows(&flows, metric);
        let config = MiningConfig {
            algorithm: Algorithm::Apriori,
            min_support: MinSupport::Absolute(*min_support),
            max_len: *max_len as usize,
            threads: 1,
        };
        for algorithm in ALGORITHMS {
            let mined = mine(&matrix, &MiningConfig { algorithm, ..config });
            let got =
                serde_json::to_string(&mined.to_json_value()).expect("serialize mined results");
            assert_eq!(
                got, expected,
                "{algorithm} diverges from the pre-refactor output at \
                 {metric}/{min_support} (max_len {max_len})"
            );
        }
        // Both Eclat representations — dEclat diffsets with the pair
        // cache (the dispatch default) and plain pre-diffset tidsets —
        // must also reproduce the golden output byte-identically.
        for (label, eclat) in [("dEclat", Eclat::DEFAULT), ("legacy tidset Eclat", Eclat::LEGACY)] {
            let mined = eclat.mine(&matrix, &config);
            let got =
                serde_json::to_string(&mined.to_json_value()).expect("serialize mined results");
            assert_eq!(
                got, expected,
                "{label} diverges from the pre-refactor output at \
                 {metric}/{min_support} (max_len {max_len})"
            );
        }
    }
}

/// Brute force: enumerate every itemset appearing in the data, count by
/// linear scan over the row-oriented reference, keep those meeting the
/// threshold.
fn brute_force(txs: &TransactionSet, threshold: u64) -> Vec<FrequentItemset> {
    let mut seen: std::collections::HashSet<Itemset> = std::collections::HashSet::new();
    for t in txs.transactions() {
        let items = t.items();
        let n = items.len();
        for mask in 1u32..(1 << n) {
            seen.insert(
                (0..n).filter(|&i| mask & (1 << i) != 0).map(|i| items[i]).collect::<Itemset>(),
            );
        }
    }
    let mut out: Vec<FrequentItemset> = seen
        .into_iter()
        .map(|itemset| {
            let support = txs.support_of(&itemset);
            FrequentItemset::new(itemset, support)
        })
        .filter(|f| f.support >= threshold)
        .collect();
    anomex::fim::sort_canonical(&mut out);
    out
}

/// Random weighted corpora shaped like encoded flows: narrow rows,
/// skewed "packet" weights.
fn arb_txs() -> impl Strategy<Value = TransactionSet> {
    prop::collection::vec((prop::collection::vec(0u64..10, 1..5), 1u64..2_000), 1..14).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(vals, w)| Transaction::new(vals.into_iter().map(Item).collect(), w))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::profile_cases(96))]

    /// All three miners on the columnar matrix equal the row-oriented
    /// brute force — under packet-support weights AND the unit-weight
    /// (flow-support) view derived from the same shared structure.
    #[test]
    fn miners_match_brute_force_under_both_weightings(
        txs in arb_txs(),
        threshold in 1u64..3_000,
    ) {
        let matrix = txs.to_matrix();
        let views = [
            ("packet-support", matrix.clone(), txs.clone()),
            ("flow-support", matrix.unit_weights(), txs.unit_weights()),
        ];
        for (label, view, rows) in &views {
            // Scale the threshold into each view's weight range so the
            // flow view isn't vacuously empty.
            let t = (threshold * view.total_weight() / txs.total_weight().max(1)).max(1);
            let reference = brute_force(rows, t);
            for algorithm in ALGORITHMS {
                let got = mine(view, &MiningConfig {
                    algorithm,
                    min_support: MinSupport::Absolute(t),
                    max_len: 0,
                    threads: 1,
                });
                prop_assert_eq!(
                    &got, &reference,
                    "{} disagrees with brute force under {}", algorithm, label
                );
            }
        }
    }

    /// dEclat is an algebraic rewrite, not a new algorithm: every
    /// combination of the diffset representation and the pair cache
    /// must mine exactly what the legacy tidset implementation mines,
    /// on the same matrix, at every threshold — including max_len
    /// truncation, which exercises the diffset transition depth.
    #[test]
    fn declat_diffsets_match_legacy_tidsets(
        txs in arb_txs(),
        threshold in 1u64..3_000,
        max_len in 0usize..4,
    ) {
        let matrix = txs.to_matrix();
        let config = MiningConfig {
            algorithm: Algorithm::Eclat,
            min_support: MinSupport::Absolute(threshold),
            max_len,
            threads: 1,
        };
        let reference = Eclat::LEGACY.mine(&matrix, &config);
        for diffsets in [false, true] {
            for pair_cache in [false, true] {
                let got = Eclat { diffsets, pair_cache }.mine(&matrix, &config);
                prop_assert_eq!(
                    &got, &reference,
                    "diffsets={} pair_cache={} diverges from legacy tidsets",
                    diffsets, pair_cache
                );
            }
        }
    }
}

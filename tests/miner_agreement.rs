//! Cross-miner equivalence smoke test.
//!
//! The fim docs promise that Apriori, FP-Growth and Eclat are three
//! independent implementations producing *identical*, canonically
//! ordered output. The proptests in `crates/fim` fuzz that invariant;
//! this deterministic fixture guards it in every plain `cargo test`
//! run with hand-checkable expectations, including weighted
//! (packet-support) transactions and both threshold flavors.

use anomex::prelude::*;

/// A small market-basket-style fixture with known supports:
///
/// | transaction        | weight |
/// |--------------------|--------|
/// | {1, 2, 3}          | 4      |
/// | {1, 2}             | 3      |
/// | {1, 3}             | 2      |
/// | {2, 3}             | 2      |
/// | {1}                | 1      |
///
/// Weighted supports: {1}=10, {2}=9, {3}=8, {1,2}=7, {1,3}=6, {2,3}=6,
/// {1,2,3}=4.
fn fixture() -> TransactionSet {
    [(vec![1, 2, 3], 4), (vec![1, 2], 3), (vec![1, 3], 2), (vec![2, 3], 2), (vec![1], 1)]
        .into_iter()
        .map(|(items, weight)| Transaction::new(items.into_iter().map(Item).collect(), weight))
        .collect()
}

const ALGORITHMS: [Algorithm; 3] = [Algorithm::Apriori, Algorithm::FpGrowth, Algorithm::Eclat];

fn mine_with(algorithm: Algorithm, min_support: MinSupport) -> Vec<FrequentItemset> {
    mine(&fixture(), &MiningConfig { algorithm, min_support, max_len: 0, threads: 1 })
}

#[test]
fn three_miners_agree_on_fixed_transactions() {
    for threshold in [1, 4, 6, 7, 9, 10, 11] {
        let reference = mine_with(Algorithm::Apriori, MinSupport::Absolute(threshold));
        for algorithm in ALGORITHMS {
            let got = mine_with(algorithm, MinSupport::Absolute(threshold));
            assert_eq!(got, reference, "{algorithm} differs from apriori at threshold {threshold}");
        }
    }
}

#[test]
fn supports_match_hand_computed_values() {
    let got = mine_with(Algorithm::Apriori, MinSupport::Absolute(4));
    let expect: Vec<(Vec<u64>, u64)> = vec![
        (vec![1], 10),
        (vec![2], 9),
        (vec![3], 8),
        (vec![1, 2], 7),
        (vec![1, 3], 6),
        (vec![2, 3], 6),
        (vec![1, 2, 3], 4),
    ];
    assert_eq!(got.len(), expect.len());
    for (items, support) in expect {
        let itemset: Itemset = items.into_iter().map(Item).collect();
        let found = got
            .iter()
            .find(|f| f.itemset == itemset)
            .unwrap_or_else(|| panic!("missing itemset {itemset}"));
        assert_eq!(found.support, support, "wrong support for {itemset}");
    }
}

#[test]
fn fractional_threshold_agrees_across_miners() {
    // Total weight is 12; 0.5 means support >= 6.
    let reference = mine_with(Algorithm::Apriori, MinSupport::Fraction(0.5));
    assert_eq!(reference.len(), 6, "expected all but {{1,2,3}} at half support");
    for algorithm in ALGORITHMS {
        assert_eq!(mine_with(algorithm, MinSupport::Fraction(0.5)), reference, "{algorithm}");
    }
}

#[test]
fn max_len_and_parallel_counting_preserve_agreement() {
    let txs = fixture();
    let bounded_reference = mine(
        &txs,
        &MiningConfig {
            algorithm: Algorithm::Apriori,
            min_support: MinSupport::Absolute(4),
            max_len: 2,
            threads: 1,
        },
    );
    assert!(bounded_reference.iter().all(|f| f.itemset.len() <= 2));
    for algorithm in ALGORITHMS {
        let got = mine(
            &txs,
            &MiningConfig {
                algorithm,
                min_support: MinSupport::Absolute(4),
                max_len: 2,
                threads: 4,
            },
        );
        assert_eq!(got, bounded_reference, "{algorithm} with max_len=2");
    }
}

// Shared between `tests/detector_equivalence.rs` (the golden check) and
// `examples/golden_gen.rs` (the regenerator): one deterministic KL+PCA
// ensemble pipeline run, rendered to the canonical JSON that
// `tests/fixtures/ensemble_alarms_golden.json` pins down.
//
// Everything here must be deterministic: the scenario is seeded, shard
// merge is order-independent, extraction is canonical, and the vendor
// serde sorts map keys — so the JSON is byte-stable across runs and
// shard counts.

/// The golden surface: per-detector counters plus every stream report
/// (merged alarm, per-detector sources, extraction).
#[derive(serde::Serialize)]
struct EnsembleGolden {
    scenario: String,
    windows: u64,
    merged_alarms: u64,
    per_detector: Vec<DetectorCounters>,
    reports: Vec<StreamReport>,
}

/// Run the fixture pipeline and render the canonical pretty JSON.
fn ensemble_golden_json() -> String {
    const WIDTH_MS: u64 = 60_000;
    const WINDOWS: u64 = 14;

    // GEANT-like background with a hard port scan in window 11 — strong
    // enough that both detectors flag it decisively (no threshold-edge
    // flakiness baked into the fixture).
    let mut spec = AnomalySpec::template(
        AnomalyKind::PortScan,
        "10.31.7.77".parse().unwrap(),
        "172.16.9.9".parse().unwrap(),
    );
    spec.flows = 4_000;
    spec.start_ms = 11 * WIDTH_MS;
    spec.duration_ms = WIDTH_MS;
    let mut scenario =
        Scenario::new("ensemble-golden", 0x60_1DE2, Backbone::Geant).with_anomaly(spec);
    scenario.background.flows = 9_000;
    scenario.background.duration_ms = WINDOWS * WIDTH_MS;
    let built = scenario.build();
    let mut records = built.store.snapshot();
    records.sort_by_key(|r| r.start_ms);

    let kl = KlConfig { interval_ms: WIDTH_MS, ..KlConfig::default() };
    let pca = PcaConfig { interval_ms: WIDTH_MS, ..PcaConfig::default() };
    let config = StreamConfig {
        shards: 2,
        span: Some(scenario.window()),
        detectors: DetectorRegistry::from_specs(&[
            DetectorSpec::Kl(kl),
            DetectorSpec::Pca(pca, 12),
        ]),
        ..StreamConfig::default()
    };
    let (mut ingest, reports) = anomex::stream::pipeline::launch(config);
    ingest.push_batch(records);
    let stats = ingest.finish();
    let reports: Vec<StreamReport> = reports.iter().collect();
    assert_eq!(stats.windows, WINDOWS, "fixture span must close every window");
    assert!(
        reports.iter().any(|r| r.sources().len() == 2),
        "fixture must exercise a genuine cross-detector merge; got {:?}",
        reports
            .iter()
            .filter_map(|r| r.alarm().map(|a| (&a.detector, a.window)))
            .collect::<Vec<_>>()
    );

    let golden = EnsembleGolden {
        scenario: "ensemble-golden seed 0x601DE2: 9000 bg + 4000 scan @ w11".to_string(),
        windows: stats.windows,
        merged_alarms: stats.alarms,
        per_detector: stats.per_detector,
        reports,
    };
    serde_json::to_string_pretty(&golden).expect("render ensemble golden json") + "\n"
}

// The deterministic seed corpus behind the miner-agreement golden
// fixture. `include!`d by BOTH `tests/miner_agreement.rs` and
// `examples/golden_gen.rs` so the mined corpus and the fixture
// generator cannot drift apart.

/// 1,200 port-scan flows + 2,400 background flows, fixed seed.
fn golden_corpus() -> Vec<anomex::flow::record::FlowRecord> {
    let mut spec = AnomalySpec::template(
        AnomalyKind::PortScan,
        "10.0.0.9".parse().unwrap(),
        "172.16.0.1".parse().unwrap(),
    );
    spec.flows = 1_200;
    let mut scenario = Scenario::new("golden", 0x601D, Backbone::Geant).with_anomaly(spec);
    scenario.background.flows = 2_400;
    scenario.build().store.snapshot()
}

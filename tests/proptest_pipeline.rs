//! Property tests across crate boundaries: the pipeline's invariants
//! under arbitrary scenario parameters.

use anomex::prelude::*;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = AnomalyKind> {
    prop_oneof![
        Just(AnomalyKind::PortScan),
        Just(AnomalyKind::NetworkScan),
        Just(AnomalyKind::SynFlood),
        Just(AnomalyKind::UdpDdos),
        Just(AnomalyKind::UdpFlood),
        Just(AnomalyKind::IcmpFlood),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::profile_cases(24))]

    /// Extraction never reports an itemset whose exact supports disagree
    /// with a recount over its own candidate set, and reported itemsets
    /// are subset-free after the closed-subsumption merge.
    #[test]
    fn extraction_supports_are_exact(
        kind in arb_kind(),
        anomaly_flows in 50usize..2_000,
        bg in 200usize..2_000,
        seed in any::<u64>(),
    ) {
        let mut spec = AnomalySpec::template(
            kind,
            "10.1.0.1".parse().unwrap(),
            "172.16.0.9".parse().unwrap(),
        );
        spec.flows = anomaly_flows;
        let mut scenario = Scenario::new("prop", seed, Backbone::Switch).with_anomaly(spec);
        scenario.background.flows = bg;
        let built = scenario.build();
        let alarm = Alarm::new(0, "p", built.scenario.window());
        let cands = candidates(&built.store, &alarm, CandidatePolicy::WholeInterval);
        let extraction = Extractor::with_defaults().extract_from_candidates(&cands);

        for e in &extraction.itemsets {
            let flow_recount = cands.iter().filter(|f| e.covers(f)).count() as u64;
            let packet_recount: u64 =
                cands.iter().filter(|f| e.covers(f)).map(|f| f.packets).sum();
            prop_assert_eq!(e.flow_support, flow_recount, "flow support {}", e.pattern());
            prop_assert_eq!(e.packet_support, packet_recount, "packet support {}", e.pattern());
            // The filter agrees with covers().
            for f in &cands {
                prop_assert_eq!(e.filter().matches(f), e.covers(f));
            }
        }
        // Subset-free report.
        for a in &extraction.itemsets {
            for b in &extraction.itemsets {
                if a != b {
                    prop_assert!(
                        !(a.items.iter().all(|x| b.items.contains(x))
                            && a.items.len() < b.items.len()
                            && (b.flow_support * 5 >= a.flow_support * 4
                                || b.packet_support * 5 >= a.packet_support * 4)),
                        "{} absorbed by {} but reported",
                        a.pattern(),
                        b.pattern()
                    );
                }
            }
        }
    }

    /// Validation counts are internally consistent for arbitrary
    /// extraction results.
    #[test]
    fn validation_bookkeeping_consistent(
        kind in arb_kind(),
        anomaly_flows in 50usize..1_000,
        seed in any::<u64>(),
    ) {
        let mut spec = AnomalySpec::template(
            kind,
            "10.1.0.1".parse().unwrap(),
            "172.16.0.9".parse().unwrap(),
        );
        spec.flows = anomaly_flows;
        let mut scenario = Scenario::new("prop", seed, Backbone::Switch).with_anomaly(spec);
        scenario.background.flows = 500;
        let built = scenario.build();
        let alarm = Alarm::new(0, "p", built.scenario.window());
        let extraction = Extractor::with_defaults().extract(&built.store, &alarm);
        let observed = built.store.query(alarm.window, &Filter::any());
        let truth = TruthSet::new(vec![TruthEntry {
            id: 0,
            keys: built.truth.anomalies[0].keys.clone(),
            malicious: true,
        }]);
        let v = validate(&extraction, &observed, &truth, &ValidationConfig::default());

        prop_assert_eq!(v.verdicts.len(), extraction.itemsets.len());
        prop_assert_eq!(v.useful_itemsets + v.false_itemsets, v.verdicts.len());
        for verdict in &v.verdicts {
            prop_assert!(verdict.malicious_covered <= verdict.covered);
            prop_assert!((0.0..=1.0).contains(&verdict.precision));
            if verdict.useful {
                prop_assert!(!verdict.matched.is_empty());
            }
        }
        for (_, r) in &v.recall {
            prop_assert!((0.0..=1.0).contains(r), "recall {r}");
        }
        // Recalled is a subset of scored anomalies.
        for id in &v.recalled {
            prop_assert!(v.recall.iter().any(|(i, _)| i == id));
        }
    }

    /// The console never panics and never writes malformed output for
    /// arbitrary command sequences drawn from its vocabulary.
    #[test]
    fn console_is_total(
        commands in prop::collection::vec(
            prop_oneof![
                Just("alarms".to_string()),
                Just("alarm 0".to_string()),
                Just("alarm 999".to_string()),
                Just("extract".to_string()),
                Just("itemsets".to_string()),
                Just("flows 0".to_string()),
                Just("flows 42".to_string()),
                Just("classify 0".to_string()),
                Just("set k 3".to_string()),
                Just("set packet-support off".to_string()),
                Just("set policy interval".to_string()),
                Just("show".to_string()),
                Just("filter dst port 80".to_string()),
                Just("filter nonsense here".to_string()),
                Just("bogus".to_string()),
            ],
            0..12,
        ),
        seed in any::<u64>(),
    ) {
        let mut spec = AnomalySpec::template(
            AnomalyKind::PortScan,
            "10.1.0.1".parse().unwrap(),
            "172.16.0.9".parse().unwrap(),
        );
        spec.flows = 300;
        let mut scenario = Scenario::new("prop", seed, Backbone::Switch).with_anomaly(spec);
        scenario.background.flows = 300;
        let built = scenario.build();
        let mut db = AlarmDb::in_memory();
        db.add(Alarm::new(0, "p", built.scenario.window())
            .with_hints(vec![FeatureItem::src_ip("10.1.0.1".parse().unwrap())]));
        let mut console = Console::new(built.store, db);
        let script = commands.join("\n") + "\nquit\n";
        let mut out = Vec::new();
        console.run(std::io::Cursor::new(script), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        prop_assert!(text.starts_with("anomex console"));
    }
}

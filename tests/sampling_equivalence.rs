//! Integration: sampled vs unsampled pipeline equivalence — the paper's
//! system worked on unsampled SWITCH data and 1/100-sampled GEANT data;
//! the *conclusions* must agree even though the observed counts differ.

use anomex::prelude::*;

fn flood_scenario(sampling: u32, seed: u64) -> BuiltScenario {
    let mut spec = AnomalySpec::template(
        AnomalyKind::SynFlood,
        "10.3.3.3".parse().unwrap(),
        "172.16.8.8".parse().unwrap(),
    );
    spec.flows = 30_000;
    let mut scenario =
        Scenario::new("samp", seed, Backbone::Geant).with_anomaly(spec).with_sampling(sampling);
    scenario.background.flows = 20_000;
    scenario.build()
}

fn extract_flood(built: &BuiltScenario) -> (Extraction, Alarm) {
    let alarm = Alarm::new(0, "t", built.scenario.window()).with_hints(vec![
        FeatureItem::dst_ip("172.16.8.8".parse().unwrap()),
        FeatureItem::dst_port(80),
    ]);
    (Extractor::with_defaults().extract(&built.store, &alarm), alarm)
}

#[test]
fn volume_anomaly_same_verdict_at_all_rates() {
    for sampling in [1u32, 10, 100] {
        let built = flood_scenario(sampling, 11);
        let (extraction, _) = extract_flood(&built);
        assert!(!extraction.is_empty(), "1/{sampling}: flood vanished");
        let top = &extraction.itemsets[0];
        // The flood signature survives sampling: victim + port 80 fixed.
        assert!(
            top.items.contains(&FeatureItem::dst_ip("172.16.8.8".parse().unwrap())),
            "1/{sampling}: wrong top itemset {}",
            top.pattern()
        );
        assert!(
            top.items.contains(&FeatureItem::dst_port(80)),
            "1/{sampling}: port missing from {}",
            top.pattern()
        );
    }
}

#[test]
fn observed_support_scales_roughly_with_rate() {
    let full = flood_scenario(1, 12);
    let sampled = flood_scenario(100, 12);
    let (full_ex, _) = extract_flood(&full);
    let (samp_ex, _) = extract_flood(&sampled);
    let full_support = full_ex.itemsets[0].flow_support as f64;
    let samp_support = samp_ex.itemsets[0].flow_support as f64;
    // SYN-flood flows carry 1-3 packets; with random per-packet 1/100
    // sampling the kept-flow ratio lands near E[pkts]/100. Demand the
    // right order of magnitude, not the exact constant.
    let ratio = full_support / samp_support.max(1.0);
    assert!(
        (20.0..=300.0).contains(&ratio),
        "support ratio {ratio} (full {full_support}, sampled {samp_support})"
    );
}

#[test]
fn renormalization_recovers_wire_scale_volumes() {
    let built = flood_scenario(100, 13);
    let observed = built.store.snapshot();
    let renormalized = anomex::flow::sampling::renormalize(&observed, 100);
    let wire_packets: u64 = built.wire_flows.iter().map(|f| f.packets).sum();
    let estimated: u64 = renormalized.iter().map(|f| f.packets).sum();
    let err = (estimated as f64 - wire_packets as f64).abs() / wire_packets as f64;
    assert!(
        err < 0.15,
        "renormalized packet estimate off by {:.1}% ({estimated} vs {wire_packets})",
        err * 100.0
    );
}

#[test]
fn sampling_is_deterministic_per_seed() {
    let a = flood_scenario(100, 14);
    let b = flood_scenario(100, 14);
    assert_eq!(a.store.len(), b.store.len());
    let (ea, _) = extract_flood(&a);
    let (eb, _) = extract_flood(&b);
    assert_eq!(ea.itemsets, eb.itemsets);
}

//! Streaming/batch equivalence: fed the same corpus — even with
//! shuffled, bounded-lateness arrival — the sharded streaming pipeline
//! must raise exactly the alarms of the batch `KlDetector` and mine
//! exactly the itemsets of the batch `Extractor`.
//!
//! This holds bit-for-bit, not just approximately: KL histograms
//! accumulate integer-valued `f64`s into fixed-order bins, so shard
//! merging and arrival order cannot perturb even the alarm scores.

use anomex::prelude::*;
use anomex::stream::pipeline;
use anomex_detect::kl::KlConfig;
use proptest::prelude::*;

const WIDTH_MS: u64 = 60_000;
const INTERVALS: u64 = 8;
const LATENESS_MS: u64 = 30_000;
const JITTER_MS: u64 = 20_000; // strictly inside the lateness bound

/// A GEANT-like scenario: 8 minutes of background with a port scan in
/// the 7th minute.
fn corpus() -> (Vec<FlowRecord>, TimeRange) {
    let mut spec = AnomalySpec::template(
        AnomalyKind::PortScan,
        "10.3.0.99".parse().unwrap(),
        "172.16.5.5".parse().unwrap(),
    );
    spec.flows = 3_000;
    spec.start_ms = 6 * WIDTH_MS;
    spec.duration_ms = WIDTH_MS;
    let mut scenario =
        Scenario::new("stream-equivalence", 0xA5_17EA, Backbone::Geant).with_anomaly(spec);
    scenario.background.flows = 5_000;
    scenario.background.duration_ms = INTERVALS * WIDTH_MS;
    let built = scenario.build();
    (built.store.snapshot(), scenario.window())
}

/// Deterministically shuffle arrival order with displacement < `JITTER_MS`.
fn bounded_shuffle(records: &[FlowRecord]) -> Vec<FlowRecord> {
    let mut rng = Xoshiro256::seeded(0xD150_BEEF);
    let mut keyed: Vec<(u64, FlowRecord)> =
        records.iter().map(|r| (r.start_ms + rng.next_below(JITTER_MS), r.clone())).collect();
    keyed.sort_by_key(|(key, _)| *key); // stable: ties keep relative order
    keyed.into_iter().map(|(_, r)| r).collect()
}

#[test]
fn streaming_equals_batch_under_out_of_order_arrival() {
    let (records, span) = corpus();
    let kl = KlConfig { interval_ms: WIDTH_MS, ..KlConfig::default() };

    // --- Batch reference: detector over the whole corpus, extractor
    // over the alarm windows.
    let mut batch_detector = KlDetector::new(kl);
    let batch_alarms = batch_detector.detect(&records, span);
    assert!(!batch_alarms.is_empty(), "scenario must trip the detector");
    let extractor = Extractor::with_defaults();
    let batch_extractions: Vec<Extraction> =
        batch_alarms.iter().map(|a| extractor.extract_from_window(&records, a)).collect();

    // --- Streaming run: same records, shuffled within the lateness
    // bound, sharded 4 ways. Run with the telemetry timing layer on
    // and off, with the detector bank inline and pooled, and with the
    // extraction stage inline and on the async worker: instrumentation
    // and scheduling must never perturb the bit-identity with batch
    // (or the run's statistics).
    let shuffled = bounded_shuffle(&records);
    let inversions = shuffled.windows(2).filter(|pair| pair[0].start_ms > pair[1].start_ms).count();
    assert!(inversions > records.len() / 10, "shuffle must actually disorder arrival");

    let mut stats_by_mode = Vec::new();
    for (telemetry, detector_workers, extraction_workers) in
        [(true, 0, 0), (false, 0, 0), (true, 2, 0), (true, 0, 1), (false, 0, 1), (true, 2, 1)]
    {
        let config = StreamConfig {
            shards: 4,
            queue_depth: 256,
            ingest_batch: 64,
            lateness_ms: LATENESS_MS,
            watermark_every: 64,
            span: Some(span),
            detectors: DetectorRegistry::kl(kl),
            detector_workers,
            extraction_workers,
            pin_shards: false,
            extractor: *extractor.config(),
            retain_windows: 3,
            report_queue: 1_024,
            metrics: MetricsConfig { enabled: telemetry, ..MetricsConfig::default() },
            overload: OverloadPolicy::Backpressure,
            faults: FaultPlan::new(),
        };
        let (mut ingest, reports) = pipeline::launch(config);
        ingest.push_batch(shuffled.clone());
        let stats = ingest.finish();
        let received: Vec<StreamReport> = reports.iter().collect();

        // --- Accounting: nothing may be lost within the lateness bound.
        assert_eq!(stats.ingested, records.len() as u64);
        assert_eq!(stats.late_dropped, 0, "jitter stayed inside the lateness bound");
        assert_eq!(stats.out_of_span, 0);
        assert_eq!(stats.windows, INTERVALS);

        // --- Alarms: bit-identical with the batch detector.
        let stream_alarms: Vec<Alarm> =
            received.iter().filter_map(|r| r.alarm().cloned()).collect();
        assert_eq!(
            stream_alarms, batch_alarms,
            "telemetry={telemetry} detector_workers={detector_workers} \
             extraction_workers={extraction_workers}"
        );

        // --- Itemsets: identical patterns and both supports per alarm.
        assert_eq!(received.len(), batch_extractions.len());
        for (report, batch) in received.iter().zip(&batch_extractions) {
            let extraction = report.extraction().expect("fault-free run emits alarm reports");
            assert_eq!(extraction.candidate_flows, batch.candidate_flows);
            assert_eq!(extraction.candidate_packets, batch.candidate_packets);
            assert_eq!(extraction.itemsets, batch.itemsets);
            assert_eq!(extraction.tuning, batch.tuning);
            assert!(!extraction.is_empty(), "scan must yield itemsets");
        }
        stats_by_mode.push(stats);
    }
    assert_eq!(stats_by_mode[0], stats_by_mode[1], "telemetry mode leaked into the statistics");
    assert_eq!(stats_by_mode[0], stats_by_mode[2], "detector pool leaked into the statistics");
    assert_eq!(stats_by_mode[0], stats_by_mode[3], "extraction pool leaked into the statistics");
    assert_eq!(stats_by_mode[0], stats_by_mode[4], "untimed extraction pool leaked into stats");
    assert_eq!(stats_by_mode[0], stats_by_mode[5], "pooled detect+extract leaked into stats");
}

#[test]
fn multi_handle_shuffled_streaming_equals_batch_bit_for_bit() {
    // The multi-socket case: the same shuffled corpus, but dealt
    // round-robin to THREE concurrently-pushing IngestHandles. The
    // shared min-over-live-handles watermark must keep every record
    // inside the lateness bound no matter how far one handle runs
    // ahead, and the result must still be bit-identical with batch.
    let (records, span) = corpus();
    let kl = KlConfig { interval_ms: WIDTH_MS, ..KlConfig::default() };

    let mut batch_detector = KlDetector::new(kl);
    let batch_alarms = batch_detector.detect(&records, span);
    assert!(!batch_alarms.is_empty(), "scenario must trip the detector");
    let extractor = Extractor::with_defaults();
    let batch_extractions: Vec<Extraction> =
        batch_alarms.iter().map(|a| extractor.extract_from_window(&records, a)).collect();

    let shuffled = bounded_shuffle(&records);
    let mut parts: Vec<Vec<FlowRecord>> = vec![Vec::new(), Vec::new(), Vec::new()];
    for (i, record) in shuffled.into_iter().enumerate() {
        parts[i % 3].push(record);
    }

    let config = StreamConfig {
        shards: 4,
        queue_depth: 256,
        ingest_batch: 32,
        lateness_ms: LATENESS_MS,
        watermark_every: 64,
        span: Some(span),
        detectors: DetectorRegistry::kl(kl),
        detector_workers: 1,   // pooled: detector pushes off the control thread
        extraction_workers: 1, // pooled: mining off the critical path too
        pin_shards: true,      // best-effort affinity must not perturb anything
        extractor: *extractor.config(),
        retain_windows: 3,
        report_queue: 1_024,
        metrics: MetricsConfig::default(),
        overload: OverloadPolicy::Backpressure,
        faults: FaultPlan::new(),
    };
    let (ingest, reports) = pipeline::launch(config);
    let mut handles = ingest.split(3);
    assert_eq!(handles[0].live_handles(), 3);
    let finisher = handles.pop().unwrap();
    let pushers: Vec<_> = handles
        .into_iter()
        .zip(parts.drain(..2))
        .map(|(mut handle, part)| {
            std::thread::spawn(move || {
                handle.push_batch(part);
            })
        })
        .collect();
    let mut finisher = finisher;
    finisher.push_batch(parts.pop().unwrap());
    for pusher in pushers {
        pusher.join().unwrap();
    }
    let stats = finisher.finish();
    let received: Vec<StreamReport> = reports.iter().collect();

    assert_eq!(stats.ingested, records.len() as u64);
    assert_eq!(stats.late_dropped, 0, "min-over-handles watermark must strand nothing");
    assert_eq!(stats.send_failures, 0);
    assert_eq!(stats.windows, INTERVALS);

    let stream_alarms: Vec<Alarm> = received.iter().filter_map(|r| r.alarm().cloned()).collect();
    assert_eq!(stream_alarms, batch_alarms, "alarms must stay bit-identical");
    assert_eq!(received.len(), batch_extractions.len());
    for (report, batch) in received.iter().zip(&batch_extractions) {
        let extraction = report.extraction().expect("fault-free run emits alarm reports");
        assert_eq!(extraction.candidate_flows, batch.candidate_flows);
        assert_eq!(extraction.candidate_packets, batch.candidate_packets);
        assert_eq!(extraction.itemsets, batch.itemsets);
        assert_eq!(extraction.tuning, batch.tuning);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::profile_cases(6))]

    /// The async extraction pool is pure scheduling for *arbitrary*
    /// corpora, not just the curated scenario above: whatever the
    /// anomaly size, background mix, and generator seed, the pooled run
    /// must match the inline run byte for byte — reports, order, and
    /// run statistics alike.
    #[test]
    fn pooled_extraction_equals_inline_for_arbitrary_corpora(
        anomaly_flows in 500usize..3_000,
        bg in 1_000usize..4_000,
        seed in any::<u64>(),
    ) {
        let mut spec = AnomalySpec::template(
            AnomalyKind::PortScan,
            "10.3.0.99".parse().unwrap(),
            "172.16.5.5".parse().unwrap(),
        );
        spec.flows = anomaly_flows;
        spec.start_ms = 6 * WIDTH_MS;
        spec.duration_ms = WIDTH_MS;
        let mut scenario = Scenario::new("prop-pool", seed, Backbone::Geant).with_anomaly(spec);
        scenario.background.flows = bg;
        scenario.background.duration_ms = INTERVALS * WIDTH_MS;
        let built = scenario.build();
        let records = built.store.snapshot();
        let span = scenario.window();
        let shuffled = bounded_shuffle(&records);
        let kl = KlConfig { interval_ms: WIDTH_MS, ..KlConfig::default() };
        let run = |extraction_workers: usize| {
            let config = StreamConfig {
                shards: 2,
                lateness_ms: LATENESS_MS,
                span: Some(span),
                detectors: DetectorRegistry::kl(kl),
                extraction_workers,
                retain_windows: 3,
                ..StreamConfig::default()
            };
            let (mut ingest, reports) = pipeline::launch(config);
            ingest.push_batch(shuffled.clone());
            let stats = ingest.finish();
            (stats, reports.iter().collect::<Vec<StreamReport>>())
        };
        let (inline_stats, inline_reports) = run(0);
        let (pool_stats, pool_reports) = run(1);
        prop_assert_eq!(pool_stats, inline_stats, "pool changed the run statistics");
        prop_assert_eq!(pool_reports, inline_reports, "pool changed a report");
    }
}

#[test]
fn streaming_equals_batch_in_arrival_order_too() {
    // Degenerate case: perfectly ordered arrival must agree as well
    // (guards the window bookkeeping rather than the lateness logic).
    let (records, span) = corpus();
    let kl = KlConfig { interval_ms: WIDTH_MS, ..KlConfig::default() };
    let mut batch_detector = KlDetector::new(kl);
    let batch_alarms = batch_detector.detect(&records, span);

    let mut ordered = records.clone();
    ordered.sort_by_key(|r| r.start_ms);
    let config = StreamConfig {
        shards: 2,
        span: Some(span),
        detectors: DetectorRegistry::kl(kl),
        ..StreamConfig::default()
    };
    let (mut ingest, reports) = pipeline::launch(config);
    ingest.push_batch(ordered);
    ingest.finish();
    let stream_alarms: Vec<Alarm> = reports.iter().filter_map(|r| r.alarm().cloned()).collect();
    assert_eq!(stream_alarms, batch_alarms);
}

//! Integration: the full pipeline (generate → alarm → extract →
//! validate) for every anomaly class the paper's corpus contains.

use std::collections::HashSet;

use anomex::prelude::*;

/// Convert generator truth into validator labels.
fn truth_set(truth: &GroundTruth) -> TruthSet {
    TruthSet::new(
        truth
            .anomalies
            .iter()
            .map(|a| TruthEntry {
                id: a.id,
                keys: a.keys.clone(),
                malicious: a.kind.is_malicious(),
            })
            .collect(),
    )
}

/// Detector-shaped alarm for the primary anomaly.
fn alarm_for(built: &BuiltScenario, id: usize) -> Alarm {
    let spec = &built.truth.anomalies[id].spec;
    let hints = match built.truth.anomalies[id].kind {
        AnomalyKind::PortScan | AnomalyKind::StealthyScan => {
            vec![FeatureItem::src_ip(spec.attacker), FeatureItem::dst_ip(spec.victim)]
        }
        AnomalyKind::NetworkScan => {
            vec![FeatureItem::src_ip(spec.attacker), FeatureItem::dst_port(spec.dst_port)]
        }
        AnomalyKind::SynFlood | AnomalyKind::UdpDdos => {
            vec![FeatureItem::dst_ip(spec.victim), FeatureItem::dst_port(spec.dst_port)]
        }
        _ => vec![FeatureItem::src_ip(spec.attacker), FeatureItem::dst_ip(spec.victim)],
    };
    Alarm::new(0, "it", built.scenario.window()).with_hints(hints)
}

fn run_kind(kind: AnomalyKind, seed: u64) -> (BuiltScenario, Validation) {
    let mut spec =
        AnomalySpec::template(kind, "10.2.3.4".parse().unwrap(), "172.16.2.77".parse().unwrap());
    spec.flows = spec.flows.min(10_000);
    let mut scenario =
        Scenario::new(format!("it-{kind}"), seed, Backbone::Switch).with_anomaly(spec);
    scenario.background.flows = 8_000;
    let built = scenario.build();
    let alarm = alarm_for(&built, 0);
    let extraction = Extractor::with_defaults().extract(&built.store, &alarm);
    let observed = built.store.query(alarm.window, &Filter::any());
    let verdict =
        validate(&extraction, &observed, &truth_set(&built.truth), &ValidationConfig::default());
    (built, verdict)
}

#[test]
fn port_scan_pipeline() {
    let (_, v) = run_kind(AnomalyKind::PortScan, 1);
    assert!(v.is_useful());
    assert_eq!(v.recalled, vec![0]);
}

#[test]
fn network_scan_pipeline() {
    let (_, v) = run_kind(AnomalyKind::NetworkScan, 2);
    assert!(v.is_useful());
    assert_eq!(v.recalled, vec![0]);
}

#[test]
fn syn_flood_pipeline() {
    let (_, v) = run_kind(AnomalyKind::SynFlood, 3);
    assert!(v.is_useful());
    assert_eq!(v.recalled, vec![0]);
}

#[test]
fn udp_ddos_pipeline() {
    let (_, v) = run_kind(AnomalyKind::UdpDdos, 4);
    assert!(v.is_useful());
    assert_eq!(v.recalled, vec![0]);
}

#[test]
fn udp_flood_pipeline_needs_packet_support() {
    let (_, v) = run_kind(AnomalyKind::UdpFlood, 5);
    assert!(v.is_useful(), "dual-support extractor must find the flood");
}

#[test]
fn icmp_flood_pipeline() {
    let (_, v) = run_kind(AnomalyKind::IcmpFlood, 6);
    assert!(v.is_useful());
}

#[test]
fn alpha_flow_is_never_a_security_finding() {
    let (_, v) = run_kind(AnomalyKind::AlphaFlow, 7);
    // The transfer is labeled benign: extraction may see it, validation
    // must not count it as a useful (security) itemset.
    assert!(!v.is_useful());
}

#[test]
fn two_overlapping_anomalies_one_alarm() {
    // Table-1-like: alarm points at the scan; the flood on the same
    // victim must surface as additional flows.
    let victim: std::net::Ipv4Addr = "172.16.0.50".parse().unwrap();
    let mut scan =
        AnomalySpec::template(AnomalyKind::PortScan, "10.1.1.1".parse().unwrap(), victim);
    scan.flows = 9_000;
    let mut flood =
        AnomalySpec::template(AnomalyKind::SynFlood, "10.5.5.5".parse().unwrap(), victim);
    flood.flows = 7_000;
    let mut scenario =
        Scenario::new("overlap", 8, Backbone::Switch).with_anomaly(scan).with_anomaly(flood);
    scenario.background.flows = 8_000;
    let built = scenario.build();
    let alarm = alarm_for(&built, 0);
    let extraction = Extractor::with_defaults().extract(&built.store, &alarm);
    let observed = built.store.query(alarm.window, &Filter::any());
    let verdict =
        validate(&extraction, &observed, &truth_set(&built.truth), &ValidationConfig::default());
    let matched: HashSet<usize> = verdict.matched_anomalies().into_iter().collect();
    assert!(matched.contains(&0), "flagged scan missing");
    assert!(matched.contains(&1), "co-occurring flood not surfaced");
}

#[test]
fn classification_agrees_with_injected_kind() {
    for (kind, expect) in [
        (AnomalyKind::PortScan, ItemsetClass::PortScan),
        (AnomalyKind::SynFlood, ItemsetClass::SynFlood),
        (AnomalyKind::UdpFlood, ItemsetClass::UdpFlood),
    ] {
        let (built, v) = run_kind(kind, 9);
        assert!(v.is_useful(), "{kind}");
        // Classify the first useful itemset.
        let alarm = alarm_for(&built, 0);
        let extraction = Extractor::with_defaults().extract(&built.store, &alarm);
        let idx = v.verdicts.iter().find(|x| x.useful).unwrap().index;
        let itemset = &extraction.itemsets[idx];
        let flows = drill(&built.store, &alarm, itemset);
        let summary = DrillSummary::of(&flows);
        let proto = flows.first().map(|f| f.proto).unwrap_or(Protocol::TCP);
        assert_eq!(classify(itemset, &summary, proto), expect, "{kind}");
    }
}

#[test]
fn whole_interval_policy_still_finds_dominant_anomaly() {
    let mut spec = AnomalySpec::template(
        AnomalyKind::PortScan,
        "10.2.3.4".parse().unwrap(),
        "172.16.2.77".parse().unwrap(),
    );
    spec.flows = 20_000;
    let mut scenario = Scenario::new("nohints", 10, Backbone::Switch).with_anomaly(spec);
    scenario.background.flows = 6_000;
    let built = scenario.build();
    // Alarm with NO meta-data at all.
    let alarm = Alarm::new(0, "blind", built.scenario.window());
    let extraction = Extractor::with_defaults().extract(&built.store, &alarm);
    let observed = built.store.query(alarm.window, &Filter::any());
    let verdict =
        validate(&extraction, &observed, &truth_set(&built.truth), &ValidationConfig::default());
    assert!(verdict.is_useful(), "dominant anomaly must survive blind mining");
}

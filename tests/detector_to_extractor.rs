//! Integration: real detector meta-data (not oracle alarms) driving
//! extraction — the paper's actual operating mode, where "NetReflex …
//! provides the initial meta-data that Apriori uses as input".

use anomex::prelude::*;

/// Twelve 1-minute intervals of background with one anomaly confined to
/// a single interval.
fn trace(kind: AnomalyKind, anomaly_flows: usize, seed: u64) -> (BuiltScenario, u64) {
    let width = 60_000u64;
    let mut scenario = Scenario::new("det2ex", seed, Backbone::Switch);
    scenario.background.duration_ms = 12 * width;
    scenario.background.flows = 18_000;
    let mut spec =
        AnomalySpec::template(kind, "10.103.0.66".parse().unwrap(), "172.20.1.40".parse().unwrap());
    spec.flows = anomaly_flows;
    spec.start_ms = 8 * width;
    spec.duration_ms = width;
    (scenario.with_anomaly(spec).build(), width)
}

fn truth_set(truth: &GroundTruth) -> TruthSet {
    TruthSet::new(
        truth
            .anomalies
            .iter()
            .map(|a| TruthEntry {
                id: a.id,
                keys: a.keys.clone(),
                malicious: a.kind.is_malicious(),
            })
            .collect(),
    )
}

/// Run detector alarms through the extractor and validate.
fn extract_from_detector_alarms(built: &BuiltScenario, alarms: &[Alarm]) -> bool {
    let truth = truth_set(&built.truth);
    let extractor = Extractor::with_defaults();
    for alarm in alarms {
        let extraction = extractor.extract(&built.store, alarm);
        let observed = built.store.query(alarm.window, &Filter::any());
        let verdict = validate(&extraction, &observed, &truth, &ValidationConfig::default());
        if verdict.is_useful() {
            return true;
        }
    }
    false
}

#[test]
fn kl_alarm_meta_data_suffices_for_extraction() {
    let (built, width) = trace(AnomalyKind::PortScan, 6_000, 21);
    let flows = built.store.snapshot();
    let span = TimeRange::new(0, 12 * width);
    let mut detector = KlDetector::new(KlConfig { interval_ms: width, ..KlConfig::default() });
    let alarms = detector.detect(&flows, span);
    assert!(!alarms.is_empty(), "KL missed the scan");
    assert!(
        extract_from_detector_alarms(&built, &alarms),
        "extraction failed on KL meta-data: {:?}",
        alarms.iter().map(|a| a.describe()).collect::<Vec<_>>()
    );
}

#[test]
fn pca_alarm_meta_data_suffices_for_extraction() {
    let (built, width) = trace(AnomalyKind::PortScan, 6_000, 22);
    let flows = built.store.snapshot();
    let span = TimeRange::new(0, 12 * width);
    let mut detector = PcaDetector::new(PcaConfig { interval_ms: width, ..PcaConfig::default() });
    let alarms = detector.detect(&flows, span);
    assert!(!alarms.is_empty(), "PCA missed the scan");
    assert!(
        extract_from_detector_alarms(&built, &alarms),
        "extraction failed on PCA meta-data: {:?}",
        alarms.iter().map(|a| a.describe()).collect::<Vec<_>>()
    );
}

#[test]
fn detector_alarm_windows_confine_candidates() {
    let (built, width) = trace(AnomalyKind::SynFlood, 5_000, 23);
    let flows = built.store.snapshot();
    let span = TimeRange::new(0, 12 * width);
    let mut detector = KlDetector::new(KlConfig { interval_ms: width, ..KlConfig::default() });
    let alarms = detector.detect(&flows, span);
    for alarm in &alarms {
        // Candidates must come from the alarmed interval only.
        let cands = candidates(&built.store, alarm, CandidatePolicy::HintUnion);
        for c in &cands {
            assert!(alarm.window.overlaps(c), "candidate outside alarm window: {c}");
        }
    }
}

#[test]
fn quiet_interval_alarms_do_not_fabricate_incidents() {
    // Alarm pointing at a quiet interval with hints for a busy benign
    // server: extraction runs, validation refuses usefulness.
    let (built, width) = trace(AnomalyKind::PortScan, 6_000, 24);
    let benign_window = TimeRange::new(2 * width, 3 * width); // pre-anomaly
    let busy_server = built
        .store
        .query(benign_window, &Filter::parse("dst port 80").unwrap())
        .first()
        .map(|f| f.dst_ip)
        .expect("some web traffic");
    let alarm =
        Alarm::new(9, "fp", benign_window).with_hints(vec![FeatureItem::dst_ip(busy_server)]);
    let extraction = Extractor::with_defaults().extract(&built.store, &alarm);
    let observed = built.store.query(alarm.window, &Filter::any());
    let verdict =
        validate(&extraction, &observed, &truth_set(&built.truth), &ValidationConfig::default());
    assert!(!verdict.is_useful(), "benign traffic reported as incident");
}

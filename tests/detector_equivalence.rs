//! Detector-equivalence guarantees across the PR-4 detection-engine
//! refactor:
//!
//! 1. exact-threshold `KlOnline` stays **bit-identical** with batch
//!    `detect_series` under arbitrary traffic (the seed guarantee);
//! 2. Welford threshold state agrees with the exact two-pass statistics
//!    within floating-point tolerance, and the two modes raise the same
//!    alarms on generated scenarios;
//! 3. incremental (rank-one update/downdate) `PcaSliding` raises the
//!    same alarms as the leave-one-out refit reference on random
//!    series, divergence allowed only on exact decision boundaries;
//! 4. a KL+PCA ensemble pipeline reproduces the committed golden
//!    fixture byte-for-byte (`tests/fixtures/ensemble_alarms_golden
//!    .json`, regenerate with `cargo run --release --example
//!    golden_gen -- ensemble`).

use anomex::prelude::*;
use proptest::prelude::*;
use std::net::Ipv4Addr;

const WIDTH_MS: u64 = 60_000;

/// Random-but-seeded traffic over `intervals` one-minute intervals.
fn random_flows(seed: u64, n_flows: usize, intervals: u64) -> (Vec<FlowRecord>, TimeRange) {
    let span = TimeRange::new(0, intervals * WIDTH_MS);
    let mut rng = Xoshiro256::seeded(seed);
    let flows = (0..n_flows)
        .map(|_| {
            let start = rng.next_below(intervals * WIDTH_MS);
            FlowRecord::builder()
                .time(start, (start + rng.next_below(8_000)).min(span.to_ms))
                .src(
                    Ipv4Addr::from(0x0A00_0000 + rng.next_below(512) as u32),
                    1_024 + rng.next_below(50_000) as u16,
                )
                .dst(
                    Ipv4Addr::from(0xAC10_0000 + rng.next_below(32) as u32),
                    if rng.next_f64() < 0.6 { 80 } else { 1 + rng.next_below(9_000) as u16 },
                )
                .volume(1 + rng.next_below(200), 64 + rng.next_below(50_000))
                .build()
        })
        .collect();
    (flows, span)
}

proptest! {
    #![proptest_config(ProptestConfig::profile_cases(48))]

    /// Seed guarantee: with the exact threshold mode, pushing a series
    /// interval by interval is bit-identical with batch detection —
    /// same alarms, same scores, same ids.
    #[test]
    fn exact_kl_online_is_bit_identical_with_batch(
        seed in any::<u64>(),
        n_flows in 100usize..800,
        intervals in 6u64..14,
    ) {
        let (flows, span) = random_flows(seed, n_flows, intervals);
        let series = IntervalSeries::cut(&flows, span, WIDTH_MS);
        let config = KlConfig {
            interval_ms: WIDTH_MS,
            threshold: ThresholdMode::Exact,
            ..KlConfig::default()
        };
        let mut batch = KlDetector::new(config);
        let batch_alarms = batch.detect_series(&series);
        let mut online = KlOnline::new(config);
        let online_alarms: Vec<Alarm> =
            series.intervals.iter().filter_map(|stat| online.push(stat)).collect();
        prop_assert_eq!(batch_alarms, online_alarms);
    }

    /// Welford running moments track the exact two-pass threshold to
    /// floating-point tolerance over arbitrary score sequences.
    #[test]
    fn welford_threshold_matches_exact_within_tolerance(
        scores in prop::collection::vec(0.0f64..50.0, 1..300),
        sigma in 1.0f64..4.0,
    ) {
        let mut exact = ThresholdState::new(ThresholdMode::Exact);
        let mut welford = ThresholdState::new(ThresholdMode::Welford);
        for &score in &scores {
            exact.push(score);
            welford.push(score);
            let te = exact.threshold(sigma, 0.05);
            let tw = welford.threshold(sigma, 0.05);
            prop_assert!(
                (te - tw).abs() <= 1e-9 * te.abs().max(1.0),
                "thresholds drifted after {} scores: exact {} vs welford {}",
                exact.len(), te, tw
            );
        }
        prop_assert_eq!(welford.retained(), 3, "Welford must stay O(1)");
    }

    /// Incremental sliding PCA raises the same alarms as the refit
    /// reference; where they disagree, the interval must sit on the
    /// exact SPE-vs-limit decision boundary (floating-point coin flip).
    #[test]
    fn incremental_pca_matches_refit_alarms(
        seed in any::<u64>(),
        n_flows in 300usize..1_200,
        history in 8usize..20,
    ) {
        let (flows, span) = random_flows(seed, n_flows, 24);
        let series = IntervalSeries::cut(&flows, span, WIDTH_MS);
        let config = PcaConfig { interval_ms: WIDTH_MS, ..PcaConfig::default() };
        let mut incremental = PcaSliding::with_mode(config, history, PcaMode::Incremental);
        // Cross several rebuild/re-anchor boundaries per case instead
        // of the production cadence (1024 evictions) no 24-interval
        // series can reach.
        incremental.set_rebuild_every(3);
        let mut refit = PcaSliding::with_mode(config, history, PcaMode::Refit);
        for stat in &series.intervals {
            let a = incremental.push(stat);
            let b = refit.push(stat);
            if a.is_some() == b.is_some() {
                if let (Some(a), Some(b)) = (a, b) {
                    prop_assert_eq!(a.window, b.window);
                }
                continue;
            }
            // Divergence is only legitimate on the decision boundary.
            let on_boundary = [incremental.last_diag(), refit.last_diag()]
                .iter()
                .flatten()
                .any(|&(spe, limit)| {
                    limit.is_finite() && (spe - limit).abs() <= 1e-6 * limit.abs().max(1.0)
                });
            prop_assert!(
                on_boundary,
                "alarm disagreement off the boundary at {:?}: incremental {:?}, refit {:?}",
                stat.range, incremental.last_diag(), refit.last_diag()
            );
        }
    }
}

/// The two threshold modes agree alarm-for-alarm on generated
/// scenarios (clear signals, far from the decision boundary).
#[test]
fn welford_and_exact_agree_on_generated_scenarios() {
    for seed in [3u64, 17, 99, 2024] {
        let mut scenario = Scenario::new("kl-mode-eq", seed, Backbone::Switch);
        scenario.background.flows = 9_000;
        scenario.background.duration_ms = 12 * WIDTH_MS;
        let mut spec = AnomalySpec::template(
            AnomalyKind::PortScan,
            "10.44.0.5".parse().unwrap(),
            "172.20.3.3".parse().unwrap(),
        );
        spec.flows = 3_000;
        spec.start_ms = 9 * WIDTH_MS;
        spec.duration_ms = WIDTH_MS;
        let built = scenario.with_anomaly(spec).build();
        let flows = built.store.snapshot();
        let span = TimeRange::new(0, 12 * WIDTH_MS);

        let mut alarms_by_mode = Vec::new();
        for mode in [ThresholdMode::Exact, ThresholdMode::Welford] {
            let config = KlConfig { interval_ms: WIDTH_MS, threshold: mode, ..KlConfig::default() };
            let mut detector = KlDetector::new(config);
            alarms_by_mode.push(detector.detect(&flows, span));
        }
        let (exact, welford) = (&alarms_by_mode[0], &alarms_by_mode[1]);
        assert!(!exact.is_empty(), "seed {seed}: scenario must trip the detector");
        assert_eq!(exact.len(), welford.len(), "seed {seed}");
        for (a, b) in exact.iter().zip(welford) {
            assert_eq!(a.window, b.window, "seed {seed}");
            assert_eq!(a.hints, b.hints, "seed {seed}");
            assert!(
                (a.score - b.score).abs() <= 1e-9 * a.score.abs().max(1.0),
                "seed {seed}: scores drifted: {} vs {}",
                a.score,
                b.score
            );
        }
    }
}

// One pipeline definition shared with the fixture regenerator.
include!("fixtures/ensemble_corpus.rs");

/// Structural JSON equality with relative tolerance on floats: detector
/// scores shift at the ~1e-12 level between debug and release builds
/// (`powf`/`powi` lowering), so the golden check cannot be
/// byte-identical across profiles the way the integer-support miner
/// fixture is. Everything that is not a float must match exactly.
fn assert_json_approx_eq(got: &serde::Value, want: &serde::Value, path: &str) {
    use serde::Value;
    match (got, want) {
        (Value::F64(a), Value::F64(b)) => {
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "{path}: {a} != {b} beyond float tolerance"
            );
        }
        (Value::Array(a), Value::Array(b)) => {
            assert_eq!(a.len(), b.len(), "{path}: array length");
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert_json_approx_eq(x, y, &format!("{path}[{i}]"));
            }
        }
        (Value::Object(a), Value::Object(b)) => {
            assert_eq!(
                a.iter().map(|(k, _)| k).collect::<Vec<_>>(),
                b.iter().map(|(k, _)| k).collect::<Vec<_>>(),
                "{path}: object keys"
            );
            for ((k, x), (_, y)) in a.iter().zip(b) {
                assert_json_approx_eq(x, y, &format!("{path}/{k}"));
            }
        }
        (a, b) => assert_eq!(a, b, "{path}"),
    }
}

#[test]
fn ensemble_pipeline_reproduces_the_golden_fixture() {
    let expected = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/ensemble_alarms_golden.json"
    ))
    .expect("golden fixture present (regenerate: cargo run --example golden_gen -- ensemble)");
    let got = ensemble_golden_json();
    let got: serde::Value = serde_json::from_str(&got).expect("run output parses");
    let want: serde::Value = serde_json::from_str(&expected).expect("fixture parses");
    assert_json_approx_eq(&got, &want, "");
}

//! Offline stand-in for `criterion`.
//!
//! Keeps the authoring API the benches use (`criterion_group!`,
//! `criterion_main!`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, `black_box`) and
//! measures with a plain `Instant` loop: a short warm-up, then timed
//! batches until the configured measurement time elapses. Each batch
//! yields one ns/iter sample; the report carries **mean** (after a
//! top-decile outlier trim), **median**, and **min** — enough signal
//! that a perf regression shows as a shifted median rather than a
//! guess about one noisy mean. [`summarize`] exposes the same
//! statistics to main-style benches emitting `BENCH_*.json`. No plots
//! or baseline comparison. Passing `--test` (as `cargo test --benches`
//! does) runs each benchmark once for a smoke check.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Robust summary of a set of ns/iter samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Mean over the trimmed samples.
    pub mean: f64,
    /// Median over the trimmed samples.
    pub median: f64,
    /// Fastest sample (untrimmed): the least-noise floor.
    pub min: f64,
    /// Samples measured (before trimming).
    pub samples: usize,
}

/// Summarize ns/iter samples with a simple top-decile outlier trim:
/// the slowest 10% of batches (scheduler noise, cache cold starts) are
/// dropped before computing mean and median; `min` always comes from
/// the full set. Empty input yields all-zero stats.
pub fn summarize(samples: &[f64]) -> Stats {
    if samples.is_empty() {
        return Stats { mean: 0.0, median: 0.0, min: 0.0, samples: 0 };
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let keep = (sorted.len() - sorted.len() / 10).max(1);
    let trimmed = &sorted[..keep];
    let mean = trimmed.iter().sum::<f64>() / trimmed.len() as f64;
    let median = if trimmed.len() % 2 == 1 {
        trimmed[trimmed.len() / 2]
    } else {
        (trimmed[trimmed.len() / 2 - 1] + trimmed[trimmed.len() / 2]) / 2.0
    };
    Stats { mean, median, min: sorted[0], samples: samples.len() }
}

/// Top-level harness handle; one per bench binary.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Apply command-line arguments (`--test` switches to smoke mode;
    /// everything else criterion accepts is ignored here).
    pub fn configure_from_args(mut self) -> Criterion {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(name.to_string(), f);
        group.finish();
        self
    }
}

/// How work per iteration is expressed in reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Identifies a parameterized benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Build from a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Allows plain strings and `BenchmarkId`s as benchmark names.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of measured batches (accepted for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time spent measuring each benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Time spent warming up before measuring.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Set the work-per-iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<N, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        N: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = if self.name.is_empty() {
            name.into_id()
        } else {
            format!("{}/{}", self.name, name.into_id())
        };
        let mut bencher = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            samples: Vec::new(),
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            test_mode: self.criterion.test_mode,
        };
        f(&mut bencher);
        report(&label, &bencher, self.throughput);
        self
    }

    /// Benchmark a closure over one input value.
    pub fn bench_with_input<N, I, F>(&mut self, name: N, input: &I, mut f: F) -> &mut Self
    where
        N: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(name, |b| f(b, input))
    }

    /// End the group (reports are already printed per benchmark).
    pub fn finish(self) {}
}

/// Runs and times the benchmarked closure.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    /// ns/iter of each timed batch.
    samples: Vec<f64>,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Measure `routine` until the measurement time is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            self.iters_done = 1;
            self.elapsed = Duration::from_nanos(1);
            self.samples.push(1.0);
            return;
        }
        // Warm-up: also sizes the timed batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters as u32).unwrap_or_default();
        let batch =
            (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;

        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measurement_time {
            let batch_start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let batch_elapsed = batch_start.elapsed();
            self.elapsed += batch_elapsed;
            self.iters_done += batch;
            self.samples.push(batch_elapsed.as_nanos() as f64 / batch as f64);
        }
    }
}

fn report(label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.iters_done == 0 {
        println!("{label:<40} (no iterations)");
        return;
    }
    let stats = summarize(&bencher.samples);
    let mut line = format!(
        "{label:<40} mean {:>11.1}  median {:>11.1}  min {:>11.1} ns/iter",
        stats.mean, stats.median, stats.min
    );
    // Throughput from the median: robust to the stragglers the trim
    // already discounts.
    match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / (stats.median.max(f64::MIN_POSITIVE) / 1e9);
            line.push_str(&format!("  ({:.2} Melem/s)", per_sec / 1e6));
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / (stats.median.max(f64::MIN_POSITIVE) / 1e9);
            line.push_str(&format!("  ({:.2} MiB/s)", per_sec / (1024.0 * 1024.0)));
        }
        None => {}
    }
    println!("{line}");
}

/// Bundle benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_trims_top_decile() {
        // 19 fast samples and one 100x outlier: the outlier must not
        // move the mean (trimmed) or median, but min stays the floor.
        let mut samples: Vec<f64> = (0..19).map(|i| 100.0 + i as f64).collect();
        samples.push(10_000.0);
        let stats = summarize(&samples);
        assert_eq!(stats.samples, 20);
        assert_eq!(stats.min, 100.0);
        assert!(stats.mean < 120.0, "outlier leaked into trimmed mean: {}", stats.mean);
        assert!(stats.median < 120.0, "outlier leaked into median: {}", stats.median);
    }

    #[test]
    fn summarize_median_of_even_and_odd() {
        let odd = summarize(&[3.0, 1.0, 2.0]);
        assert_eq!(odd.median, 2.0);
        // Four samples: top decile trims 0 (4/10 == 0), median averages.
        let even = summarize(&[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(even.median, 2.5);
        assert_eq!(even.mean, 2.5);
    }

    #[test]
    fn summarize_empty_and_single() {
        assert_eq!(summarize(&[]).samples, 0);
        let one = summarize(&[7.0]);
        assert_eq!((one.mean, one.median, one.min), (7.0, 7.0, 7.0));
    }

    #[test]
    fn smoke_bench_runs() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(5).measurement_time(Duration::from_millis(10));
        group.throughput(Throughput::Elements(4));
        let mut calls = 0u32;
        group.bench_function("f", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("with-input", 3), &3u32, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(calls >= 1);
    }
}

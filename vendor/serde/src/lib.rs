//! Offline stand-in for `serde`.
//!
//! The registry is unreachable from this container, so the workspace
//! ships a minimal self-consistent serialization framework under the
//! `serde` name: a JSON-like [`Value`] tree, [`Serialize`] /
//! [`Deserialize`] traits over it, and `#[derive(Serialize,
//! Deserialize)]` macros (re-exported from our `serde_derive`). The
//! wire format (via our `serde_json`) follows real serde conventions —
//! structs as objects, unit enum variants as strings, data variants
//! externally tagged — so persisted files stay readable if the real
//! crates are restored.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// A JSON-shaped value tree: the data model everything serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (used when negative).
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, preserving insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Total order over value trees for deterministic serialization:
    /// variants rank `Null < Bool < numbers < Str < Array < Object`,
    /// numbers compare numerically across `I64`/`U64`/`F64` (NaN sorts
    /// last among numbers), sequences lexicographically.
    pub fn canonical_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::I64(_) | Value::U64(_) | Value::F64(_) => 2,
                Value::Str(_) => 3,
                Value::Array(_) => 4,
                Value::Object(_) => 5,
            }
        }
        fn as_f64(v: &Value) -> Option<f64> {
            match v {
                Value::I64(n) => Some(*n as f64),
                Value::U64(n) => Some(*n as f64),
                Value::F64(n) => Some(*n),
                _ => None,
            }
        }
        match rank(self).cmp(&rank(other)) {
            Ordering::Equal => {}
            unequal => return unequal,
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b) {
                    match x.canonical_cmp(y) {
                        Ordering::Equal => {}
                        unequal => return unequal,
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Object(a), Value::Object(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b) {
                    match ka.cmp(kb).then_with(|| va.canonical_cmp(vb)) {
                        Ordering::Equal => {}
                        unequal => return unequal,
                    }
                }
                a.len().cmp(&b.len())
            }
            // Integers compare exactly (f64 would collapse distinct
            // values above 2^53 and re-introduce nondeterminism).
            (Value::I64(x), Value::I64(y)) => x.cmp(y),
            (Value::U64(x), Value::U64(y)) => x.cmp(y),
            (Value::I64(x), Value::U64(y)) => {
                if *x < 0 {
                    Ordering::Less
                } else {
                    (*x as u64).cmp(y)
                }
            }
            (Value::U64(x), Value::I64(y)) => {
                if *y < 0 {
                    Ordering::Greater
                } else {
                    x.cmp(&(*y as u64))
                }
            }
            (a, b) => {
                let (x, y) = (as_f64(a), as_f64(b));
                debug_assert!(x.is_some() && y.is_some(), "rank matched non-numbers");
                x.partial_cmp(&y).unwrap_or_else(|| {
                    // NaN: sort after every real number, equal to itself.
                    match (x.is_some_and(f64::is_nan), y.is_some_and(f64::is_nan)) {
                        (true, true) => Ordering::Equal,
                        (true, false) => Ordering::Greater,
                        _ => Ordering::Less,
                    }
                })
            }
        }
    }

    /// The fields if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The text if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field of an object; `Null` when absent.
    pub fn field<'a>(fields: &'a [(String, Value)], name: &str) -> &'a Value {
        fields.iter().find(|(k, _)| k == name).map(|(_, v)| v).unwrap_or(&Value::Null)
    }
}

/// Deserialization error: a message describing the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom(message: impl Into<String>) -> Error {
        Error { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the data model.
    fn to_json_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from the data model.
    fn from_json_value(value: &Value) -> Result<Self, Error>;
}

/// Owned-deserialization alias, mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

fn unexpected(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, got {got:?}"))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    other => Err(unexpected("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::I64(v) } else { Value::U64(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    other => Err(unexpected("signed integer", other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(unexpected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(unexpected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(unexpected("single-char string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T> Serialize for std::borrow::Cow<'_, T>
where
    T: Serialize + ToOwned + ?Sized,
{
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T> Deserialize for std::borrow::Cow<'_, T>
where
    T: ToOwned + ?Sized,
    T::Owned: Deserialize,
{
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        Ok(std::borrow::Cow::Owned(T::Owned::from_json_value(value)?))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        T::from_json_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(unexpected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_json_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|v| Error::custom(format!("expected {N} elements, got {}", v.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| unexpected("array", value))?;
                let mut it = items.iter();
                Ok(($(
                    $name::from_json_value(
                        it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                    )?,
                )+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// Hash containers serialize via a canonical sort so the output is
// byte-deterministic across runs (std's `RandomState` randomizes
// iteration order per process). This intentionally diverges from real
// serde, which emits hash-iteration order; round-trips are unaffected.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json_value(&self) -> Value {
        let mut pairs: Vec<Value> = self
            .iter()
            .map(|(k, v)| Value::Array(vec![k.to_json_value(), v.to_json_value()]))
            .collect();
        pairs.sort_by(|a, b| a.canonical_cmp(b));
        Value::Array(pairs)
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
{
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let pairs: Vec<(K, V)> = Deserialize::from_json_value(value)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_json_value(), v.to_json_value()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let pairs: Vec<(K, V)> = Deserialize::from_json_value(value)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_json_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_json_value).collect();
        items.sort_by(|a, b| a.canonical_cmp(b));
        Value::Array(items)
    }
}

impl<T> Deserialize for HashSet<T>
where
    T: Deserialize + Eq + std::hash::Hash,
{
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_json_value(value)?;
        Ok(items.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T> Deserialize for BTreeSet<T>
where
    T: Deserialize + Ord,
{
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_json_value(value)?;
        Ok(items.into_iter().collect())
    }
}

macro_rules! impl_display_parse {
    ($($t:ty => $name:literal),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Str(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Str(s) => s.parse().map_err(|_| {
                        Error::custom(format!("invalid {}: {s:?}", $name))
                    }),
                    other => Err(unexpected($name, other)),
                }
            }
        }
    )*};
}

impl_display_parse! {
    IpAddr => "IP address",
    Ipv4Addr => "IPv4 address",
    Ipv6Addr => "IPv6 address"
}

impl Serialize for std::time::Duration {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let fields = value.as_object().ok_or_else(|| unexpected("duration object", value))?;
        let secs = u64::from_json_value(Value::field(fields, "secs"))?;
        let nanos = u32::from_json_value(Value::field(fields, "nanos"))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_map_serializes_sorted_by_key() {
        let mut map = HashMap::new();
        for k in [9u32, 3, 7, 1, 5] {
            map.insert(k, k * 10);
        }
        let value = map.to_json_value();
        let pairs = value.as_array().expect("array of pairs");
        let keys: Vec<u64> = pairs
            .iter()
            .map(|p| match p.as_array().expect("pair")[0] {
                Value::U64(k) => k,
                ref other => panic!("unexpected key {other:?}"),
            })
            .collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn hash_set_serializes_sorted() {
        let set: HashSet<String> =
            ["pear", "apple", "mango"].iter().map(|s| s.to_string()).collect();
        assert_eq!(
            set.to_json_value(),
            Value::Array(vec![
                Value::Str("apple".into()),
                Value::Str("mango".into()),
                Value::Str("pear".into()),
            ])
        );
    }

    #[test]
    fn hash_containers_are_byte_deterministic_across_instances() {
        // Two maps built in different insertion orders (thus different
        // internal layouts) must serialize identically.
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for k in 0u32..64 {
            a.insert(k, k);
        }
        for k in (0u32..64).rev() {
            b.insert(k, k);
        }
        assert_eq!(a.to_json_value(), b.to_json_value());
    }

    #[test]
    fn canonical_cmp_orders_variants_then_contents() {
        use std::cmp::Ordering;
        assert_eq!(Value::Null.canonical_cmp(&Value::Bool(false)), Ordering::Less);
        assert_eq!(Value::U64(2).canonical_cmp(&Value::I64(3)), Ordering::Less);
        assert_eq!(Value::F64(2.5).canonical_cmp(&Value::U64(2)), Ordering::Greater);
        // Exact above 2^53: adjacent u64s that collide as f64 still order.
        assert_eq!(
            Value::U64((1 << 53) + 1).canonical_cmp(&Value::U64((1 << 53) + 2)),
            Ordering::Less
        );
        assert_eq!(Value::I64(-1).canonical_cmp(&Value::U64(u64::MAX)), Ordering::Less);
        assert_eq!(Value::U64(u64::MAX).canonical_cmp(&Value::I64(-1)), Ordering::Greater);
        assert_eq!(Value::Str("a".into()).canonical_cmp(&Value::Str("b".into())), Ordering::Less);
        let short = Value::Array(vec![Value::U64(1)]);
        let long = Value::Array(vec![Value::U64(1), Value::U64(2)]);
        assert_eq!(short.canonical_cmp(&long), Ordering::Less);
    }
}

//! Offline, API-compatible subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives with the non-poisoning `parking_lot`
//! API (guards returned directly, no `Result`). A poisoned std lock —
//! only possible after a panic while holding it — is recovered via
//! `into_inner`, matching `parking_lot`'s behavior of not poisoning.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Exclusive access through a unique reference, lock-free.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutex that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Exclusive access through a unique reference, lock-free.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}

//! Offline stand-in for `serde_json`.
//!
//! Renders the serde stand-in's [`serde::Value`] tree to JSON text and
//! parses it back. Covers the workspace's needs: `to_string`,
//! `to_string_pretty`, `from_str`, and a `Value`/`Error` re-export.
//! Number handling: integers stay exact within `i64`/`u64`; floats
//! round-trip through Rust's shortest-representation `Display`.

pub use serde::Value;

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Serialize `value` to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0)?;
    Ok(out)
}

/// Serialize `value` to human-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0)?;
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = Parser { bytes: text.as_bytes(), pos: 0 }.parse_document()?;
    Ok(T::from_json_value(&value)?)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if !n.is_finite() {
                return Err(Error::new("non-finite float is not representable in JSON"));
            }
            let text = n.to_string();
            out.push_str(&text);
            // Keep the float/integer distinction through a round-trip.
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn parse_document(mut self) -> Result<Value, Error> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::new(format!("trailing input at byte {}", self.pos)));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected {:?} at byte {}", byte as char, self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(_) => self.parse_number(),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|n| Value::I64(-n))
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::Str("a \"b\"\n".to_string())),
            ("n".to_string(), Value::U64(7)),
            ("neg".to_string(), Value::I64(-3)),
            ("pi".to_string(), Value::F64(3.25)),
            (
                "list".to_string(),
                Value::Array(vec![Value::Null, Value::Bool(true), Value::Array(vec![])]),
            ),
        ]);
        for text in [to_string(&value).unwrap(), to_string_pretty(&value).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, value);
        }
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string(&Value::F64(2.0)).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(from_str::<Value>(&text).unwrap(), Value::F64(2.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}

//! Offline, API-compatible subset of `crossbeam`.
//!
//! Provides `crossbeam::scope` scoped threads, implemented over
//! `std::thread::scope` (stable since 1.63), and [`channel`] MPMC
//! channels: bounded with blocking backpressure — a lock-free
//! Vyukov-style ring with condvar parking only at the empty/full edges
//! — and unbounded over `Mutex<VecDeque>`. Differences from real
//! crossbeam: a panic in a thread that is never joined propagates as a
//! panic out of [`scope`] instead of an `Err` — callers here join every
//! handle, so the distinction never bites — `channel::bounded(0)` is a
//! capacity-1 queue rather than a rendezvous channel, and the stand-in
//! adds batched `send_many`/`recv_many` beyond the real crate's API
//! (shim them if the registry crate ever returns; see `ROADMAP.md`).

pub mod channel;
mod sync;

use std::any::Any;

/// Result of joining a scoped thread (panic payload on the error side).
pub type ThreadResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// A handle to the scope, passed to the closure and to every spawned
/// thread (crossbeam-style: `scope.spawn(|inner_scope| ...)`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl Clone for Scope<'_, '_> {
    fn clone(&self) -> Self {
        *self
    }
}

impl Copy for Scope<'_, '_> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. The closure receives the scope
    /// again so workers can themselves spawn.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
    }
}

/// Owns a spawned thread; joining yields its return value.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread; `Err` carries the panic payload.
    pub fn join(self) -> ThreadResult<T> {
        self.inner.join()
    }
}

/// Run `f` with a scope in which borrowing threads can be spawned; all
/// threads are joined before this returns.
pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_sum() {
        let data = [1u64, 2, 3, 4];
        let total = super::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}

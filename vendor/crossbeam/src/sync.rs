//! Synchronization facade for the channel: `std::sync` in normal
//! builds (zero overhead — every item is a re-export or an `#[inline]`
//! newtype the optimizer erases), the `modelcheck` shims when the
//! `model` feature sets `cfg(anomex_model)`.
//!
//! The channel code is written against this module only, so the exact
//! same source is exercised by the tier-1 model tests (instrumented
//! atomics under a controlled scheduler) and shipped in production
//! builds (real atomics).

#[cfg(not(anomex_model))]
mod imp {
    pub use std::sync::atomic::{fence, AtomicUsize, Ordering};
    pub use std::sync::{Condvar, Mutex};

    #[inline]
    pub fn thread_yield() {
        std::thread::yield_now();
    }

    /// Production twin of `modelcheck::cell::UnsafeCell`: the same
    /// closure-based API (`with`/`with_mut`/`init`/`take`) compiled to
    /// a bare pointer handout. The distinct entry points exist so the
    /// model build can check the `MaybeUninit` slot protocol; here they
    /// are all the same `get()`.
    #[derive(Debug)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        #[inline]
        pub fn new(data: T) -> UnsafeCell<T> {
            UnsafeCell(std::cell::UnsafeCell::new(data))
        }

        /// Write access that initializes an empty slot.
        #[inline]
        pub fn init<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }

        /// Write access that moves the value out of an occupied slot.
        #[inline]
        pub fn take<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}

#[cfg(anomex_model)]
mod imp {
    pub use modelcheck::cell::UnsafeCell;
    pub use modelcheck::sync::{fence, thread_yield, AtomicUsize, Condvar, Mutex, Ordering};
}

pub(crate) use imp::*;

//! Multi-producer multi-consumer channels, the `crossbeam-channel`
//! subset the workspace uses.
//!
//! [`bounded`] channels block the sender when full — the backpressure
//! primitive of the streaming ingest layer — and [`unbounded`] channels
//! never block on send. Both sides are cloneable; a channel disconnects
//! when every handle on the other side is dropped. The implementation
//! is a `Mutex<VecDeque>` with two `Condvar`s, which is slower than real
//! crossbeam's lock-free queues but semantically identical for the
//! operations offered here.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Create a channel holding at most `cap` in-flight messages.
///
/// `send` blocks while the queue is full (backpressure). A capacity of
/// zero is rounded up to one: real crossbeam's rendezvous semantics are
/// not reproduced by this stand-in.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

/// Create a channel with no capacity limit; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State { queue: VecDeque::new(), cap, senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

struct State<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

impl<T> State<T> {
    fn is_full(&self) -> bool {
        self.cap.is_some_and(|c| self.queue.len() >= c)
    }
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Error returned by [`Sender::send`] when every receiver is gone;
/// carries the unsent message back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Sender::try_send`].
#[derive(PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity; the message comes back.
    Full(T),
    /// Every receiver is gone; the message comes back.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrySendError::Full(_) => "Full(..)",
            TrySendError::Disconnected(_) => "Disconnected(..)",
        })
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrySendError::Full(_) => "sending on a full channel",
            TrySendError::Disconnected(_) => "sending on a disconnected channel",
        })
    }
}

impl<T> std::error::Error for TrySendError<T> {}

/// Error returned by [`Receiver::recv`]: the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now; senders still exist.
    Empty,
    /// Nothing queued and every sender is gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => f.write_str("receiving on a disconnected channel"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// The sending half; cloneable for multiple producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueue `msg`, blocking while the channel is at capacity.
    ///
    /// # Errors
    /// Returns the message if every [`Receiver`] has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            if !state.is_full() {
                state.queue.push_back(msg);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).expect("channel poisoned");
        }
    }

    /// Enqueue `msg` without blocking.
    ///
    /// # Errors
    /// [`TrySendError::Full`] when the channel is at capacity,
    /// [`TrySendError::Disconnected`] when every [`Receiver`] is gone;
    /// both return the message.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if state.is_full() {
            return Err(TrySendError::Full(msg));
        }
        state.queue.push_back(msg);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("channel poisoned").queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.state.lock().expect("channel poisoned").senders += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.senders -= 1;
            state.senders
        };
        if remaining == 0 {
            // Wake receivers blocked on an empty queue so they observe
            // the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

/// The receiving half; cloneable for multiple consumers (each message
/// goes to exactly one receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Dequeue the next message, blocking while the channel is empty.
    ///
    /// # Errors
    /// Errors once the queue is drained and every [`Sender`] is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).expect("channel poisoned");
        }
    }

    /// Dequeue up to `max` messages under **one** lock acquisition,
    /// appending them to `buf`; blocks while the channel is empty.
    ///
    /// Returns how many messages were appended — `0` only when the
    /// queue is drained and every [`Sender`] is gone. This is the
    /// batched counterpart of [`recv`](Receiver::recv): a consumer
    /// draining a hot channel pays one `Mutex`+`Condvar` round-trip
    /// per batch instead of one per message (the streaming shard
    /// ingest loop's fast path).
    pub fn recv_many(&self, buf: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if !state.queue.is_empty() {
                let take = max.min(state.queue.len());
                buf.extend(state.queue.drain(..take));
                let bounded = state.cap.is_some();
                drop(state);
                if bounded {
                    // Up to `take` senders may be parked on a full
                    // queue; wake them all rather than chaining
                    // notify_one handoffs through each sender.
                    if take > 1 {
                        self.shared.not_full.notify_all();
                    } else {
                        self.shared.not_full.notify_one();
                    }
                }
                return take;
            }
            if state.senders == 0 {
                return 0;
            }
            state = self.shared.not_empty.wait(state).expect("channel poisoned");
        }
    }

    /// Dequeue without blocking.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] when additionally no sender remains.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        match state.queue.pop_front() {
            Some(msg) => {
                drop(state);
                self.shared.not_full.notify_one();
                Ok(msg)
            }
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocking iterator over messages until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("channel poisoned").queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.state.lock().expect("channel poisoned").receivers += 1;
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.receivers -= 1;
            state.receivers
        };
        if remaining == 0 {
            // Wake senders blocked on a full queue so they observe the
            // disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

/// Blocking iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Owning blocking iterator: drains until disconnect, then ends.
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order_within_one_producer() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let handle = std::thread::spawn(move || {
            tx.send(3).unwrap(); // must block until a slot frees
            tx.send(4).unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.len(), 2, "third send should be parked");
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.recv(), Ok(4));
        handle.join().unwrap();
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_many_drains_in_batches_and_preserves_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let mut buf = Vec::new();
        assert_eq!(rx.recv_many(&mut buf, 4), 4);
        assert_eq!(rx.recv_many(&mut buf, 100), 6, "second batch takes the rest");
        assert_eq!(buf, (0..10).collect::<Vec<i32>>());
        drop(tx);
        assert_eq!(rx.recv_many(&mut buf, 4), 0, "disconnected + empty returns 0");
        assert_eq!(rx.recv_many(&mut buf, 0), 0, "zero max is a no-op");
    }

    #[test]
    fn recv_many_blocks_until_a_message_arrives() {
        let (tx, rx) = bounded::<u32>(4);
        let consumer = std::thread::spawn(move || {
            let mut buf = Vec::new();
            let n = rx.recv_many(&mut buf, 8);
            (n, buf)
        });
        std::thread::sleep(Duration::from_millis(20));
        tx.send(42).unwrap();
        let (n, buf) = consumer.join().unwrap();
        assert_eq!(n, 1);
        assert_eq!(buf, vec![42]);
    }

    #[test]
    fn recv_many_unblocks_senders_parked_on_a_full_queue() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let producers: Vec<_> = (0..2)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(10 + i).unwrap())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        let mut buf = Vec::new();
        assert_eq!(rx.recv_many(&mut buf, 2), 2, "both parked producers must wake");
        for p in producers {
            p.join().unwrap();
        }
        let mut rest = Vec::new();
        rx.recv_many(&mut rest, 4);
        rest.extend(buf);
        rest.sort_unstable();
        assert_eq!(rest, vec![1, 2, 10, 11]);
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn try_send_distinguishes_full_from_disconnected() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn multi_producer_multi_consumer_delivers_everything_once() {
        let (tx, rx) = bounded(8);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        tx.send(p * 1_000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().collect::<Vec<i32>>())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let mut expected: Vec<i32> =
            (0..4).flat_map(|p| (0..250).map(move |i| p * 1_000 + i)).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn sender_blocked_on_full_queue_unblocks_when_receiver_drops() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert_eq!(handle.join().unwrap(), Err(SendError(2)));
    }
}

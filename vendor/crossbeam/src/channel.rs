//! Multi-producer multi-consumer channels, the `crossbeam-channel`
//! subset the workspace uses.
//!
//! [`bounded`] channels block the sender when full — the backpressure
//! primitive of the streaming ingest layer — and [`unbounded`] channels
//! never block on send. Both sides are cloneable; a channel disconnects
//! when every handle on the other side is dropped.
//!
//! The bounded flavor is an array-backed **lock-free MPMC ring**
//! (Vyukov-style: one sequence stamp per slot, head/tail claimed by
//! CAS), so the hot path — `send`, [`Sender::send_many`], `try_send`,
//! `try_recv`, [`Receiver::recv_many`] — never takes a mutex. A
//! `Mutex` + `Condvar` pair survives only at the *blocking edges*: a
//! sender parks when the ring is full, a receiver parks when it is
//! empty, and the waker pays for the lock only when the waiter counter
//! says somebody is actually parked. The unbounded flavor stays a
//! `Mutex<VecDeque>` — it is off the record hot path.
//!
//! Beyond the real crate's API this stand-in adds two batched calls
//! that amortize whatever synchronization remains: [`Sender::send_many`]
//! and [`Receiver::recv_many`] (see `ROADMAP.md` for the shim list to
//! revisit if the registry crates ever return). Both are
//! **range-claim batched** on the bounded flavor: a single CAS on the
//! position counter reserves a whole contiguous run of slots (clipped
//! at the array end), after which each slot's sequence stamp is
//! published individually — so a batch of k messages costs one atomic
//! RMW plus k plain stores instead of k RMWs. The pre-range-claim
//! one-CAS-per-slot loops remain callable
//! ([`Sender::send_many_per_slot`], [`Receiver::recv_many_per_slot`])
//! as the measured baseline for the `perf_stream` microbench and the
//! behavioral reference for the equivalence proptests.

use std::collections::VecDeque;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::Arc;

// All synchronization goes through the facade: `std::sync` in normal
// builds, the modelcheck shims under `cfg(anomex_model)` — which is how
// the model tests drive this exact file through a controlled scheduler.
use crate::sync::{fence, AtomicUsize, Condvar, Mutex, Ordering, UnsafeCell};

/// Create a channel holding at most `cap` in-flight messages.
///
/// `send` blocks while the queue is full (backpressure). A capacity of
/// zero is rounded up to one: real crossbeam's rendezvous semantics are
/// not reproduced by this stand-in.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Flavor::Ring(Ring::new(cap.max(1))))
}

/// Create a channel with no capacity limit; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(Flavor::List(Mutex::new(VecDeque::new())))
}

fn channel<T>(flavor: Flavor<T>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        flavor,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        not_empty: Parking::new(),
        not_full: Parking::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

// ---------------------------------------------------------------------------
// The lock-free ring (bounded flavor).
// ---------------------------------------------------------------------------

/// Pads an atomic counter to its own cache line so the producers'
/// `tail` and the consumers' `head` don't false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

/// One ring slot: a sequence stamp plus the (possibly uninitialized)
/// message payload. The stamp encodes which "lap" last touched the
/// slot, which is what makes the queue safe for concurrent producers
/// *and* consumers without locks.
struct Slot<T> {
    stamp: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Vyukov-style bounded MPMC queue. `head`/`tail` are position
/// counters whose low bits index the slot array and whose high bits
/// count laps (`one_lap` is the smallest power of two above `cap`, so
/// index extraction is a mask even for non-power-of-two capacities).
///
/// Invariant per slot: `stamp == pos` means "free for the push that
/// will claim position `pos`"; `stamp == pos + 1` means "holds the
/// message pushed at `pos`, free for the pop that claims it".
struct Ring<T> {
    slots: Box<[Slot<T>]>,
    cap: usize,
    one_lap: usize,
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the ring hands each message from exactly one producer to
// exactly one consumer (the per-slot stamp protocol gives the claiming
// thread exclusive access to `value`), so moving the ring across
// threads only ever moves `T`s; `T: Send` is all that transfer needs.
unsafe impl<T: Send> Send for Ring<T> {}
// SAFETY: shared access is mediated entirely by atomics plus the stamp
// protocol above — no `&Ring` method touches a slot payload without
// having claimed its position by CAS first.
unsafe impl<T: Send> Sync for Ring<T> {}

/// Bounded exponential backoff for CAS retry loops: spin briefly, then
/// yield the timeslice (essential on single-CPU hosts, where spinning
/// against a preempted peer burns the whole quantum).
struct Backoff {
    step: u32,
}

impl Backoff {
    const SPIN_LIMIT: u32 = 6;

    fn new() -> Backoff {
        Backoff { step: 0 }
    }

    fn spin(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..1u32 << self.step {
                std::hint::spin_loop();
            }
            self.step += 1;
        } else {
            crate::sync::thread_yield();
        }
    }
}

impl<T> Ring<T> {
    fn new(cap: usize) -> Ring<T> {
        assert!(cap > 0, "ring capacity must be positive");
        let slots: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                stamp: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Ring {
            slots,
            cap,
            one_lap: (cap + 1).next_power_of_two(),
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Position after `pos`: next index in the same lap, or index 0 of
    /// the next lap at the array end.
    fn next_pos(&self, pos: usize) -> usize {
        let index = pos & (self.one_lap - 1);
        let lap = pos & !(self.one_lap - 1);
        if index + 1 < self.cap {
            pos + 1
        } else {
            lap.wrapping_add(self.one_lap)
        }
    }

    /// Lock-free push; `Err(value)` when the ring is full.
    fn try_push(&self, value: T) -> Result<(), T> {
        let mut backoff = Backoff::new();
        let mut tail = self.tail.0.load(Ordering::Relaxed);
        loop {
            let index = tail & (self.one_lap - 1);
            let slot = &self.slots[index];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == tail {
                // Slot free for this lap: claim the position.
                match self.tail.0.compare_exchange_weak(
                    tail,
                    self.next_pos(tail),
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        slot.value.init(|p| {
                            // SAFETY: the CAS above moved `tail` past
                            // this position, so this thread owns the
                            // slot exclusively until the stamp store
                            // below publishes it; the stamp said "free
                            // for this lap", so the MaybeUninit is
                            // empty and `write` cannot leak.
                            unsafe { (*p).write(value) };
                        });
                        slot.stamp.store(tail.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => {
                        tail = current;
                        backoff.spin();
                    }
                }
            } else if stamp.wrapping_add(self.one_lap) == tail.wrapping_add(1) {
                // The slot still holds last lap's message. If head
                // hasn't moved either, the ring is genuinely full;
                // otherwise a consumer is mid-pop — retry.
                fence(Ordering::SeqCst);
                let head = self.head.0.load(Ordering::Relaxed);
                if head.wrapping_add(self.one_lap) == tail {
                    return Err(value);
                }
                backoff.spin();
                tail = self.tail.0.load(Ordering::Relaxed);
            } else {
                // A producer claimed this position but hasn't finished
                // writing; wait for the stamp to settle.
                backoff.spin();
                tail = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Lock-free pop; `None` when the ring is empty.
    fn try_pop(&self) -> Option<T> {
        let mut backoff = Backoff::new();
        let mut head = self.head.0.load(Ordering::Relaxed);
        loop {
            let index = head & (self.one_lap - 1);
            let slot = &self.slots[index];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == head.wrapping_add(1) {
                // Slot holds this lap's message: claim the position.
                match self.head.0.compare_exchange_weak(
                    head,
                    self.next_pos(head),
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = slot.value.take(|p| {
                            // SAFETY: the CAS above moved `head` past
                            // this position, so this thread owns the
                            // slot exclusively until the stamp store
                            // below recycles it; the stamp said "holds
                            // this lap's message" — published by the
                            // producer's Release stamp store, acquired
                            // by our stamp load — so the MaybeUninit is
                            // initialized and read exactly once.
                            unsafe { (*p).assume_init_read() }
                        });
                        slot.stamp.store(head.wrapping_add(self.one_lap), Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => {
                        head = current;
                        backoff.spin();
                    }
                }
            } else if stamp == head {
                // Nothing written here this lap. If tail hasn't moved
                // past us the ring is empty; otherwise a producer is
                // mid-push — retry.
                fence(Ordering::SeqCst);
                let tail = self.tail.0.load(Ordering::Relaxed);
                if tail == head {
                    return None;
                }
                backoff.spin();
                head = self.head.0.load(Ordering::Relaxed);
            } else {
                backoff.spin();
                head = self.head.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Linearized message count for a position: laps completed times
    /// capacity plus the in-lap index. Differences of `lin` values
    /// count messages exactly even though positions skip indices
    /// `cap..one_lap` at each lap boundary.
    fn lin(&self, pos: usize) -> usize {
        (pos / self.one_lap).wrapping_mul(self.cap).wrapping_add(pos & (self.one_lap - 1))
    }

    /// Range-claim: reserve up to `want` contiguous positions at the
    /// tail with a **single CAS**, instead of one CAS per slot. Returns
    /// `(start_pos, count)`, or `None` when the ring is full.
    ///
    /// The claim is bounded by two clips:
    /// - the free-slot count computed from a head/tail snapshot —
    ///   `head` may be stale (it only advances), so this under-counts
    ///   free slots: the claim is conservative, never overlapping, and
    ///   every claimed position's previous-lap occupant has already
    ///   been *claimed* by a consumer (head passed it), so the per-slot
    ///   recycle wait in [`write_range`](Self::write_range) is bounded
    ///   by an in-flight pop, never by a pop that might not happen;
    /// - the array end, so the positions inside one claim are always
    ///   `start, start+1, …` in the same lap (no wrap mid-range).
    fn try_claim(&self, want: usize) -> Option<(usize, usize)> {
        debug_assert!(want > 0);
        let mut backoff = Backoff::new();
        loop {
            let tail = self.tail.0.load(Ordering::Relaxed);
            let head = self.head.0.load(Ordering::Relaxed);
            let free = self.cap - self.lin(tail).wrapping_sub(self.lin(head));
            if free == 0 {
                // Full at snapshot time. A consumer mid-pop has already
                // CAS'd `head` forward and would show `free > 0`, so
                // unlike `try_push` no fence/re-check is needed to
                // distinguish "full" from "pop in progress".
                return None;
            }
            let index = tail & (self.one_lap - 1);
            let count = want.min(free).min(self.cap - index);
            let new_tail = if index + count == self.cap {
                // The claim ends exactly at the array end: the next
                // producer starts index 0 of the next lap.
                (tail & !(self.one_lap - 1)).wrapping_add(self.one_lap)
            } else {
                tail.wrapping_add(count)
            };
            match self.tail.0.compare_exchange(tail, new_tail, Ordering::SeqCst, Ordering::Relaxed)
            {
                Ok(_) => return Some((tail, count)),
                Err(_) => backoff.spin(),
            }
        }
    }

    /// Fill a range claimed by [`try_claim`](Self::try_claim): write
    /// each payload and publish it with a Release stamp store. The tail
    /// CAS gave this thread the whole range exclusively; per slot we
    /// may still briefly wait for last lap's consumer to finish
    /// recycling (its head CAS has already passed the slot — that is
    /// what `try_claim`'s free-slot bound guarantees — but its stamp
    /// store can lag the CAS).
    fn write_range(&self, start: usize, count: usize, mut next: impl FnMut() -> T) {
        let index = start & (self.one_lap - 1);
        for d in 0..count {
            let pos = start.wrapping_add(d);
            let slot = &self.slots[index + d];
            let mut backoff = Backoff::new();
            while slot.stamp.load(Ordering::Acquire) != pos {
                backoff.spin();
            }
            slot.value.init(|p| {
                // SAFETY: the tail CAS in `try_claim` moved `tail` past
                // this position, so this thread owns the slot
                // exclusively until the stamp store below publishes it;
                // the Acquire stamp loop above observed the consumer's
                // recycle stamp ("free for this lap"), so the
                // MaybeUninit is empty and `write` cannot leak.
                unsafe { (*p).write(next()) };
            });
            slot.stamp.store(pos.wrapping_add(1), Ordering::Release);
        }
    }

    /// Range-claim pop: count the contiguous run of *published* slots
    /// at the head (clipped to `max` and the array end), claim the
    /// whole run with a **single CAS**, then take each payload. Returns
    /// how many messages were appended to `buf` — `0` only when the
    /// ring is genuinely empty.
    ///
    /// Only published slots are claimed (the scan stops at the first
    /// missing stamp), so a consumer never waits on a producer that is
    /// mid-`write_range`. The pre-CAS Acquire stamp loads stay valid at
    /// claim time: a slot observed published can only be unpublished by
    /// a pop, which needs the head CAS we are about to win — if another
    /// consumer got there first, our CAS fails and we rescan.
    fn pop_range(&self, buf: &mut Vec<T>, max: usize) -> usize {
        let mut backoff = Backoff::new();
        loop {
            let head = self.head.0.load(Ordering::Relaxed);
            let index = head & (self.one_lap - 1);
            let limit = max.min(self.cap - index);
            let mut count = 0;
            while count < limit {
                let pos = head.wrapping_add(count);
                if self.slots[index + count].stamp.load(Ordering::Acquire) != pos.wrapping_add(1) {
                    break;
                }
                count += 1;
            }
            if count == 0 {
                // Nothing published at the head. If tail hasn't moved
                // past us the ring is empty; otherwise a producer
                // claimed a range and hasn't stamped it yet — retry.
                fence(Ordering::SeqCst);
                let tail = self.tail.0.load(Ordering::Relaxed);
                if tail == head {
                    return 0;
                }
                backoff.spin();
                continue;
            }
            let new_head = if index + count == self.cap {
                (head & !(self.one_lap - 1)).wrapping_add(self.one_lap)
            } else {
                head.wrapping_add(count)
            };
            if self
                .head
                .0
                .compare_exchange(head, new_head, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                backoff.spin();
                continue;
            }
            for d in 0..count {
                let pos = head.wrapping_add(d);
                let slot = &self.slots[index + d];
                let value = slot.value.take(|p| {
                    // SAFETY: the head CAS above moved `head` past this
                    // position, so this thread owns the slot
                    // exclusively until the stamp store below recycles
                    // it; the pre-CAS Acquire stamp load saw the
                    // producer's Release publish for this lap, so the
                    // MaybeUninit is initialized and read exactly once.
                    unsafe { (*p).assume_init_read() }
                });
                slot.stamp.store(pos.wrapping_add(self.one_lap), Ordering::Release);
                buf.push(value);
            }
            return count;
        }
    }

    /// Consistent queue length from a stable head/tail snapshot.
    fn len(&self) -> usize {
        loop {
            let tail = self.tail.0.load(Ordering::SeqCst);
            let head = self.head.0.load(Ordering::SeqCst);
            // Only trust the pair if tail didn't move in between.
            if self.tail.0.load(Ordering::SeqCst) == tail {
                let hix = head & (self.one_lap - 1);
                let tix = tail & (self.one_lap - 1);
                return if hix < tix {
                    tix - hix
                } else if hix > tix {
                    self.cap - hix + tix
                } else if tail == head {
                    0
                } else {
                    self.cap
                };
            }
        }
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Exclusive access: pop and drop whatever is still in flight.
        while self.try_pop().is_some() {}
    }
}

// ---------------------------------------------------------------------------
// Parking: the blocking edges.
// ---------------------------------------------------------------------------

/// A condvar wait-point with a fast, lock-free "is anyone parked?"
/// check. The waiter registers (SeqCst) *before* re-checking queue
/// state; the waker changes queue state *before* loading the counter —
/// so at least one side always sees the other and wakeups are never
/// lost, yet the uncontended notify costs one atomic load.
///
/// `waiters` must stay `SeqCst` on both sides: this is a Dekker-style
/// store-then-load handshake (waiter: store counter, load queue state;
/// waker: store queue state, load counter), and anything weaker than a
/// total store order lets both sides read the other's *old* value —
/// the lost wakeup the model's `park/notify` tests pin down. The same
/// argument keeps the `senders`/`receivers` disconnect counters at
/// `SeqCst`.
struct Parking {
    waiters: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
}

impl Parking {
    fn new() -> Parking {
        Parking { waiters: AtomicUsize::new(0), lock: Mutex::new(()), cond: Condvar::new() }
    }

    /// Park the calling thread until `ready()` holds. `ready` is
    /// evaluated under the parking lock, so it must be cheap.
    fn park_until(&self, mut ready: impl FnMut() -> bool) {
        let mut guard = self.lock.lock().expect("channel parking poisoned");
        self.waiters.fetch_add(1, Ordering::SeqCst);
        while !ready() {
            guard = self.cond.wait(guard).expect("channel parking poisoned");
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        drop(guard);
    }

    /// Wake every parked thread — a no-op (one atomic load) when none
    /// is parked, which is the common case on the hot path.
    fn notify(&self) {
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _guard = self.lock.lock().expect("channel parking poisoned");
            self.cond.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Shared channel state.
// ---------------------------------------------------------------------------

enum Flavor<T> {
    /// Bounded: the lock-free ring.
    Ring(Ring<T>),
    /// Unbounded: a mutex-guarded list (cold path only).
    List(Mutex<VecDeque<T>>),
}

struct Shared<T> {
    flavor: Flavor<T>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    not_empty: Parking,
    not_full: Parking,
}

impl<T> Shared<T> {
    fn len(&self) -> usize {
        match &self.flavor {
            Flavor::Ring(ring) => ring.len(),
            Flavor::List(list) => list.lock().expect("channel poisoned").len(),
        }
    }

    fn is_full(&self) -> bool {
        match &self.flavor {
            Flavor::Ring(ring) => ring.len() >= ring.cap,
            Flavor::List(_) => false,
        }
    }

    fn capacity(&self) -> Option<usize> {
        match &self.flavor {
            Flavor::Ring(ring) => Some(ring.cap),
            Flavor::List(_) => None,
        }
    }

    /// One non-blocking push attempt; `Err(value)` when full.
    fn try_push(&self, value: T) -> Result<(), T> {
        match &self.flavor {
            Flavor::Ring(ring) => ring.try_push(value),
            Flavor::List(list) => {
                list.lock().expect("channel poisoned").push_back(value);
                Ok(())
            }
        }
    }

    /// One non-blocking pop attempt.
    fn try_pop(&self) -> Option<T> {
        match &self.flavor {
            Flavor::Ring(ring) => ring.try_pop(),
            Flavor::List(list) => list.lock().expect("channel poisoned").pop_front(),
        }
    }
}

/// Error returned by [`Sender::send`] when every receiver is gone;
/// carries the unsent message back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Sender::try_send`].
#[derive(PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity; the message comes back.
    Full(T),
    /// Every receiver is gone; the message comes back.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrySendError::Full(_) => "Full(..)",
            TrySendError::Disconnected(_) => "Disconnected(..)",
        })
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrySendError::Full(_) => "sending on a full channel",
            TrySendError::Disconnected(_) => "sending on a disconnected channel",
        })
    }
}

impl<T> std::error::Error for TrySendError<T> {}

/// Error returned by [`Receiver::recv`]: the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now; senders still exist.
    Empty,
    /// Nothing queued and every sender is gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => f.write_str("receiving on a disconnected channel"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// The sending half; cloneable for multiple producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueue `msg`, blocking while the channel is at capacity.
    ///
    /// # Errors
    /// Returns the message if every [`Receiver`] has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut msg = msg;
        loop {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            match self.shared.try_push(msg) {
                Ok(()) => {
                    self.shared.not_empty.notify();
                    return Ok(());
                }
                Err(returned) => {
                    msg = returned;
                    let shared = &*self.shared;
                    shared.not_full.park_until(|| {
                        !shared.is_full() || shared.receivers.load(Ordering::SeqCst) == 0
                    });
                }
            }
        }
    }

    /// Enqueue every message in `batch` in order, blocking whenever the
    /// channel is at capacity; on success the batch is left empty and
    /// its length returned. The batched counterpart of
    /// [`Receiver::recv_many`]: producers on the streaming ingest hot
    /// path hand a whole flush buffer over in one call, and the
    /// receiver-side wakeup check runs **once per batch** instead of
    /// once per message — the difference is large on a loaded host,
    /// where a runnable-but-unscheduled consumer keeps its waiter flag
    /// up and a per-message notify degrades into a syscall per record.
    ///
    /// # Errors
    /// When every [`Receiver`] is gone the unsent tail (in order) is
    /// left in `batch`; the error carries how many messages this call
    /// had already enqueued — those are lost with the channel, and the
    /// count lets callers account for every record they handed over.
    ///
    /// On the bounded flavor this is **range-claim batched**: one tail
    /// CAS reserves a contiguous run of slots for the whole remaining
    /// batch (clipped at the array end and the free-slot count), then
    /// each slot is stamped published individually — one atomic RMW
    /// per *range* instead of per message. The pre-range-claim loop
    /// survives as [`send_many_per_slot`](Self::send_many_per_slot).
    pub fn send_many(&self, batch: &mut Vec<T>) -> Result<usize, SendError<usize>> {
        let ring = match &self.shared.flavor {
            Flavor::Ring(ring) => ring,
            // The unbounded flavor has no slots to claim; the
            // per-message loop already takes its list lock just once
            // per push, which is all the batching it can use.
            Flavor::List(_) => return self.send_many_per_slot(batch),
        };
        let total = batch.len();
        let mut unsent: Vec<T> = Vec::new();
        let mut sent = 0usize;
        let mut disconnected = false;
        {
            // Draining (rather than taking) the Vec keeps the caller's
            // allocation: a reused flush buffer never re-grows.
            let mut iter = batch.drain(..);
            while sent < total {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    unsent.extend(iter);
                    disconnected = true;
                    break;
                }
                match ring.try_claim(total - sent) {
                    Some((start, count)) => {
                        ring.write_range(start, count, || {
                            iter.next().expect("claim never exceeds the remaining batch")
                        });
                        sent += count;
                    }
                    None => {
                        // The ring is full: before parking, wake a
                        // consumer that may still be asleep from before
                        // this batch filled the ring (park-vs-park
                        // deadlock otherwise).
                        self.shared.not_empty.notify();
                        let shared = &*self.shared;
                        shared.not_full.park_until(|| {
                            !shared.is_full() || shared.receivers.load(Ordering::SeqCst) == 0
                        });
                    }
                }
            }
        }
        if sent > 0 {
            self.shared.not_empty.notify();
        }
        if disconnected {
            batch.extend(unsent);
            return Err(SendError(sent));
        }
        debug_assert_eq!(sent, total);
        Ok(total)
    }

    /// The one-CAS-per-slot batched send this crate shipped before
    /// range-claim batching: the same blocking semantics and error
    /// contract as [`send_many`](Self::send_many), but every message
    /// pays its own tail CAS. Kept callable on purpose — it is the
    /// baseline the `perf_stream` microbench holds the range-claim
    /// path against (asserted ≥ 2×), and the equivalence proptests use
    /// it as the behavioral reference. The unbounded flavor routes
    /// here unconditionally.
    pub fn send_many_per_slot(&self, batch: &mut Vec<T>) -> Result<usize, SendError<usize>> {
        let total = batch.len();
        let mut unsent: Vec<T> = Vec::new();
        let mut sent = 0usize;
        let mut disconnected = false;
        {
            // Draining (rather than taking) the Vec keeps the caller's
            // allocation: a reused flush buffer never re-grows.
            let mut iter = batch.drain(..);
            let mut pending: Option<T> = None;
            loop {
                let Some(msg) = pending.take().or_else(|| iter.next()) else {
                    break;
                };
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    unsent.push(msg);
                    unsent.extend(iter);
                    disconnected = true;
                    break;
                }
                match self.shared.try_push(msg) {
                    Ok(()) => sent += 1,
                    Err(returned) => {
                        pending = Some(returned);
                        // Same park-vs-park guard as `send_many`.
                        self.shared.not_empty.notify();
                        let shared = &*self.shared;
                        shared.not_full.park_until(|| {
                            !shared.is_full() || shared.receivers.load(Ordering::SeqCst) == 0
                        });
                    }
                }
            }
        }
        if sent > 0 {
            self.shared.not_empty.notify();
        }
        if disconnected {
            batch.extend(unsent);
            return Err(SendError(sent));
        }
        debug_assert_eq!(sent, total);
        Ok(total)
    }

    /// Enqueue `msg` without blocking.
    ///
    /// # Errors
    /// [`TrySendError::Full`] when the channel is at capacity,
    /// [`TrySendError::Disconnected`] when every [`Receiver`] is gone;
    /// both return the message.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        if self.shared.receivers.load(Ordering::SeqCst) == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        match &self.shared.flavor {
            Flavor::Ring(ring) => match ring.try_push(msg) {
                Ok(()) => {
                    self.shared.not_empty.notify();
                    Ok(())
                }
                Err(returned) => Err(TrySendError::Full(returned)),
            },
            Flavor::List(list) => {
                list.lock().expect("channel poisoned").push_back(msg);
                self.shared.not_empty.notify();
                Ok(())
            }
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum in-flight messages for a bounded channel, `None` for an
    /// unbounded one. Telemetry hook: `len() as f64 / capacity()` is
    /// the ring occupancy.
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Wake receivers blocked on an empty queue so they observe
            // the disconnect.
            self.shared.not_empty.notify();
        }
    }
}

/// The receiving half; cloneable for multiple consumers (each message
/// goes to exactly one receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Outcome of one non-blocking receive attempt (shared by the blocking
/// and non-blocking entry points so the disconnect race is handled in
/// exactly one place).
enum PopAttempt<T> {
    Got(T),
    Empty,
    Disconnected,
}

impl<T> Receiver<T> {
    /// One non-blocking attempt, with the final-sweep rule: after the
    /// last sender detaches, anything it pushed beforehand is still
    /// visible, so "disconnected" is only reported when a *re-check*
    /// after observing zero senders finds the queue empty.
    fn pop_attempt(&self) -> PopAttempt<T> {
        if let Some(msg) = self.shared.try_pop() {
            self.shared.not_full.notify();
            return PopAttempt::Got(msg);
        }
        if self.shared.senders.load(Ordering::SeqCst) == 0 {
            return match self.shared.try_pop() {
                Some(msg) => PopAttempt::Got(msg),
                None => PopAttempt::Disconnected,
            };
        }
        PopAttempt::Empty
    }

    /// Dequeue the next message, blocking while the channel is empty.
    ///
    /// # Errors
    /// Errors once the queue is drained and every [`Sender`] is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        loop {
            match self.pop_attempt() {
                PopAttempt::Got(msg) => return Ok(msg),
                PopAttempt::Disconnected => return Err(RecvError),
                PopAttempt::Empty => {
                    let shared = &*self.shared;
                    shared.not_empty.park_until(|| {
                        shared.len() > 0 || shared.senders.load(Ordering::SeqCst) == 0
                    });
                }
            }
        }
    }

    /// Dequeue up to `max` messages, appending them to `buf`; blocks
    /// while the channel is empty.
    ///
    /// Returns how many messages were appended — `0` only when the
    /// queue is drained and every [`Sender`] is gone. This is the
    /// batched counterpart of [`send_many`](Sender::send_many): a
    /// consumer draining a hot channel pays for synchronization once
    /// per batch instead of once per message (the streaming shard
    /// ingest loop's fast path).
    ///
    /// On the bounded flavor this is **range-claim batched**: one head
    /// CAS claims the whole contiguous run of published slots (so a
    /// call may return fewer than `max` even while more messages sit
    /// past the array-end wrap — callers loop anyway). The
    /// pre-range-claim loop survives as
    /// [`recv_many_per_slot`](Self::recv_many_per_slot).
    pub fn recv_many(&self, buf: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let ring = match &self.shared.flavor {
            Flavor::Ring(ring) => ring,
            Flavor::List(_) => return self.recv_many_per_slot(buf, max),
        };
        loop {
            let taken = ring.pop_range(buf, max);
            if taken > 0 {
                self.shared.not_full.notify();
                return taken;
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                // Final sweep: a push that completed before the last
                // sender detached is visible now.
                let taken = ring.pop_range(buf, max);
                if taken > 0 {
                    self.shared.not_full.notify();
                }
                return taken;
            }
            let shared = &*self.shared;
            shared
                .not_empty
                .park_until(|| shared.len() > 0 || shared.senders.load(Ordering::SeqCst) == 0);
        }
    }

    /// The one-pop-per-slot batched receive this crate shipped before
    /// range-claim batching: same blocking semantics and return
    /// contract as [`recv_many`](Self::recv_many), but every message
    /// pays its own head CAS. Kept callable as the `perf_stream`
    /// microbench baseline and the equivalence-proptest reference; the
    /// unbounded flavor routes here unconditionally.
    pub fn recv_many_per_slot(&self, buf: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        loop {
            let mut taken = 0;
            while taken < max {
                match self.shared.try_pop() {
                    Some(msg) => {
                        buf.push(msg);
                        taken += 1;
                    }
                    None => break,
                }
            }
            if taken > 0 {
                self.shared.not_full.notify();
                return taken;
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                // Final sweep: a push that completed before the last
                // sender detached is visible now.
                match self.shared.try_pop() {
                    Some(msg) => {
                        buf.push(msg);
                        self.shared.not_full.notify();
                        return 1;
                    }
                    None => return 0,
                }
            }
            let shared = &*self.shared;
            shared
                .not_empty
                .park_until(|| shared.len() > 0 || shared.senders.load(Ordering::SeqCst) == 0);
        }
    }

    /// Dequeue without blocking.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] when additionally no sender remains.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        match self.pop_attempt() {
            PopAttempt::Got(msg) => Ok(msg),
            PopAttempt::Empty => Err(TryRecvError::Empty),
            PopAttempt::Disconnected => Err(TryRecvError::Disconnected),
        }
    }

    /// Blocking iterator over messages until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum in-flight messages for a bounded channel, `None` for an
    /// unbounded one.
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Wake senders blocked on a full queue so they observe the
            // disconnect.
            self.shared.not_full.notify();
        }
    }
}

/// Blocking iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Owning blocking iterator: drains until disconnect, then ends.
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

// Not under `anomex_model`: these tests use free-running OS threads and
// sleeps, which have no meaning under the model scheduler (the model
// test suites in vendor/modelcheck/tests/ and vendor/crossbeam/tests/
// cover the same protocols exhaustively instead).
#[cfg(all(test, not(anomex_model)))]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order_within_one_producer() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let handle = std::thread::spawn(move || {
            tx.send(3).unwrap(); // must block until a slot frees
            tx.send(4).unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.len(), 2, "third send should be parked");
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.recv(), Ok(4));
        handle.join().unwrap();
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn ring_wraps_laps_at_non_power_of_two_capacity() {
        // cap 3 with one_lap 4: index 3 of each lap is skipped, which is
        // exactly the arithmetic `next_pos` must get right.
        let (tx, rx) = bounded(3);
        for round in 0..5u32 {
            for i in 0..3u32 {
                tx.send(round * 10 + i).unwrap();
            }
            assert_eq!(tx.len(), 3, "ring full at its exact capacity");
            assert_eq!(tx.try_send(99).unwrap_err(), TrySendError::Full(99));
            for i in 0..3u32 {
                assert_eq!(rx.recv(), Ok(round * 10 + i));
            }
            assert_eq!(rx.len(), 0);
        }
    }

    #[test]
    fn send_many_delivers_in_order_and_empties_the_batch() {
        let (tx, rx) = bounded(4);
        let mut batch: Vec<i32> = (0..32).collect();
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while rx.recv_many(&mut got, 5) > 0 {}
            got
        });
        assert_eq!(tx.send_many(&mut batch), Ok(32));
        assert!(batch.is_empty(), "successful send_many drains the batch");
        assert_eq!(tx.send_many(&mut batch), Ok(0), "empty batch is a no-op");
        drop(tx);
        assert_eq!(consumer.join().unwrap(), (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn send_many_keeps_the_unsent_tail_on_disconnect() {
        let (tx, rx) = bounded(2);
        drop(rx);
        let mut batch = vec![1, 2, 3];
        assert_eq!(tx.send_many(&mut batch), Err(SendError(0)), "error reports 0 enqueued");
        assert_eq!(batch, vec![1, 2, 3], "nothing sent, whole tail preserved");
    }

    #[test]
    fn send_many_preserves_the_callers_buffer_capacity() {
        let (tx, rx) = bounded(128);
        let mut batch: Vec<u64> = Vec::with_capacity(64);
        batch.extend(0..64);
        let cap_before = batch.capacity();
        tx.send_many(&mut batch).unwrap();
        assert!(batch.is_empty());
        assert_eq!(
            batch.capacity(),
            cap_before,
            "a reused flush buffer must keep its allocation across send_many"
        );
        drop(rx);
    }

    #[test]
    fn recv_many_drains_in_batches_and_preserves_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let mut buf = Vec::new();
        assert_eq!(rx.recv_many(&mut buf, 4), 4);
        assert_eq!(rx.recv_many(&mut buf, 100), 6, "second batch takes the rest");
        assert_eq!(buf, (0..10).collect::<Vec<i32>>());
        drop(tx);
        assert_eq!(rx.recv_many(&mut buf, 4), 0, "disconnected + empty returns 0");
        assert_eq!(rx.recv_many(&mut buf, 0), 0, "zero max is a no-op");
    }

    #[test]
    fn recv_many_blocks_until_a_message_arrives() {
        let (tx, rx) = bounded::<u32>(4);
        let consumer = std::thread::spawn(move || {
            let mut buf = Vec::new();
            let n = rx.recv_many(&mut buf, 8);
            (n, buf)
        });
        std::thread::sleep(Duration::from_millis(20));
        tx.send(42).unwrap();
        let (n, buf) = consumer.join().unwrap();
        assert_eq!(n, 1);
        assert_eq!(buf, vec![42]);
    }

    #[test]
    fn recv_many_unblocks_senders_parked_on_a_full_queue() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let producers: Vec<_> = (0..2)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(10 + i).unwrap())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        let mut buf = Vec::new();
        assert_eq!(rx.recv_many(&mut buf, 2), 2, "both parked producers must wake");
        for p in producers {
            p.join().unwrap();
        }
        let mut rest = Vec::new();
        rx.recv_many(&mut rest, 4);
        rest.extend(buf);
        rest.sort_unstable();
        assert_eq!(rest, vec![1, 2, 10, 11]);
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn try_send_distinguishes_full_from_disconnected() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn multi_producer_multi_consumer_delivers_everything_once() {
        let (tx, rx) = bounded(8);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        tx.send(p * 1_000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().collect::<Vec<i32>>())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let mut expected: Vec<i32> =
            (0..4).flat_map(|p| (0..250).map(move |i| p * 1_000 + i)).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn sender_blocked_on_full_queue_unblocks_when_receiver_drops() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert_eq!(handle.join().unwrap(), Err(SendError(2)));
    }

    #[test]
    fn in_flight_messages_are_dropped_with_the_channel() {
        // The ring owns live `T`s in its slots; dropping the channel
        // must run their destructors exactly once.
        let counter = Arc::new(AtomicUsize::new(0));
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (tx, rx) = bounded(8);
        for _ in 0..5 {
            tx.send(Probe(Arc::clone(&counter))).unwrap();
        }
        drop(rx.recv().unwrap()); // one popped and dropped by us
        drop(tx);
        drop(rx);
        assert_eq!(counter.load(Ordering::SeqCst), 5, "4 in-flight + 1 received");
    }
}

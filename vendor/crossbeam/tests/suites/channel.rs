//! Model-checked channel protocol suite. Compiled twice:
//!
//! - by `vendor/modelcheck/tests/channel_model.rs` (tier-1, always on):
//!   the crate root `#[path]`-includes `channel.rs` against a local
//!   `mod sync` that re-exports the shims, so `crate::channel` is an
//!   instrumented copy of the exact production source;
//! - by `vendor/crossbeam/tests/channel_model.rs` under
//!   `--features model`: `crate::channel` is the real `crossbeam`
//!   library compiled with `cfg(anomex_model)`.
//!
//! Every test runs the closure under the model scheduler: bounded
//! exhaustive DFS over interleavings, with race/deadlock/slot-protocol
//! detection. Budgets are deliberately small to keep tier-1 wall-clock
//! flat — `ANOMEX_MODEL_EXECUTIONS` scales them up in the nightly lane.

use std::sync::Arc;

use modelcheck::sync::{AtomicUsize, Ordering};
use modelcheck::{thread, Model};

use crate::channel::{bounded, RecvError, SendError, TryRecvError};

fn model(max_executions: usize) -> Model {
    // The env override (if any) still wins so CI can deepen the search.
    let default = Model::default();
    Model { max_executions: default.max_executions.min(max_executions), ..default }
}

/// Single producer, single consumer, capacity 1: the minimal end-to-end
/// claim/publish/claim cycle, exhaustively.
#[test]
fn spsc_cap1_delivers_the_message() {
    model(2_000).check(|| {
        let (tx, rx) = bounded::<u64>(1);
        let t = thread::spawn(move || tx.send(7).unwrap());
        assert_eq!(rx.recv(), Ok(7));
        t.join().unwrap();
    });
}

/// Two producers, two consumers, capacity 1: producers park on the full
/// ring, consumers park on the empty ring, and every schedule must
/// deliver both messages exactly once with no deadlock.
#[test]
fn mpmc_2x2_cap1_delivers_each_message_once() {
    model(1_500).check(|| {
        let (tx, rx) = bounded::<u64>(1);
        let p1 = {
            let tx = tx.clone();
            thread::spawn(move || tx.send(1).unwrap())
        };
        let p2 = thread::spawn(move || tx.send(2).unwrap());
        let c1 = {
            let rx = rx.clone();
            thread::spawn(move || rx.recv().unwrap())
        };
        let a = rx.recv().unwrap();
        let b = c1.join().unwrap();
        assert_eq!(a + b, 3, "both messages delivered exactly once, got {a} and {b}");
        assert_ne!(a, b);
        p1.join().unwrap();
        p2.join().unwrap();
    });
}

/// Same shape at capacity 2 — the stamp lap arithmetic differs (the
/// ring wraps within one test) and fewer parks happen.
#[test]
fn mpmc_2x2_cap2_delivers_each_message_once() {
    model(1_500).check(|| {
        let (tx, rx) = bounded::<u64>(2);
        let p1 = {
            let tx = tx.clone();
            thread::spawn(move || tx.send(10).unwrap())
        };
        let p2 = thread::spawn(move || tx.send(20).unwrap());
        let c1 = {
            let rx = rx.clone();
            thread::spawn(move || rx.recv().unwrap())
        };
        let a = rx.recv().unwrap();
        let b = c1.join().unwrap();
        assert_eq!(a + b, 30);
        p1.join().unwrap();
        p2.join().unwrap();
    });
}

/// Batched producer against batched consumer through a ring smaller
/// than the batch: send_many must park mid-batch and hand the rest over
/// once the consumer drains.
#[test]
fn send_many_recv_many_through_a_tiny_ring() {
    model(1_500).check(|| {
        let (tx, rx) = bounded::<u64>(2);
        let producer = thread::spawn(move || {
            let mut batch = vec![1, 2, 3, 4];
            let sent = tx.send_many(&mut batch).unwrap();
            assert_eq!(sent, 4);
            assert!(batch.is_empty());
        });
        let mut got = Vec::new();
        while got.len() < 4 {
            let n = rx.recv_many(&mut got, 4);
            assert!(n > 0, "senders alive — recv_many must not report disconnect");
        }
        assert_eq!(got, vec![1, 2, 3, 4], "batched FIFO order preserved");
        producer.join().unwrap();
    });
}

/// A receiver parked on an empty ring must observe the last sender
/// dropping (disconnect wakeup, not a lost-wakeup hang).
#[test]
fn sender_drop_wakes_parked_receiver() {
    model(2_000).check(|| {
        let (tx, rx) = bounded::<u64>(1);
        let t = thread::spawn(move || drop(tx));
        assert_eq!(rx.recv(), Err(RecvError));
        t.join().unwrap();
    });
}

/// A sender parked on a full ring must observe the last receiver
/// dropping and error out instead of hanging.
#[test]
fn receiver_drop_wakes_parked_sender() {
    model(2_000).check(|| {
        let (tx, rx) = bounded::<u64>(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || drop(rx));
        // Either the park sees the disconnect, or the send raced ahead
        // of the receiver drop — it must never hang. (The message may
        // be reported sent if the CAS lands before the drop.)
        let _ = tx.send(2);
        t.join().unwrap();
    });
}

/// Messages still in flight when the channel dies must be dropped
/// exactly once — the `MaybeUninit` destructor path in `Ring::drop`,
/// double-checked two ways: a drop-counting guard, and the shim slot
/// protocol itself (a double-take fails the model).
#[test]
fn in_flight_messages_drop_exactly_once() {
    struct Probe(Arc<AtomicUsize>);
    impl Drop for Probe {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }
    model(1_500).check(|| {
        let drops = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = bounded::<Probe>(2);
        tx.send(Probe(Arc::clone(&drops))).unwrap();
        let t = {
            let drops = Arc::clone(&drops);
            thread::spawn(move || {
                // May race with the receiver drop below: a failed send
                // returns the Probe inside the error, which is dropped
                // here — either way the message dies exactly once.
                let _ = tx.send(Probe(Arc::clone(&drops)));
                drop(tx);
            })
        };
        let received = rx.try_recv();
        drop(received);
        drop(rx);
        t.join().unwrap();
        assert_eq!(
            drops.load(Ordering::Relaxed),
            2,
            "every message dropped exactly once (received or in-flight)"
        );
    });
}

/// The destructor sweep, model edition: at every fill level of a
/// cap-2 ring (including after a wrap), dropping both ends must run
/// every in-flight destructor exactly once — counted by the guard and
/// independently checked by the shim slot protocol, which fails the
/// model on any double-take or leaked init. The plain-std twin (more
/// capacities, std atomics) is `tests/channel_destructors.rs`.
#[test]
fn ring_drop_at_every_fill_level() {
    struct Probe(Arc<AtomicUsize>);
    impl Drop for Probe {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }
    for fill in 0..=2usize {
        model(500).check(move || {
            let drops = Arc::new(AtomicUsize::new(0));
            let (tx, rx) = bounded::<Probe>(2);
            // One lap first, so the stamp walk starts at an offset.
            tx.send(Probe(Arc::clone(&drops))).unwrap();
            drop(rx.recv().unwrap());
            for _ in 0..fill {
                tx.send(Probe(Arc::clone(&drops))).unwrap();
            }
            drop(tx);
            drop(rx);
            assert_eq!(
                drops.load(Ordering::Relaxed),
                1 + fill,
                "fill {fill}: in-flight messages must drop exactly once"
            );
        });
    }
}

/// Disconnect-vs-data race on the receive side: after the last sender
/// is gone, a message pushed before the drop must still be delivered
/// (the final-sweep re-check), never falsely reported as Disconnected.
#[test]
fn no_message_lost_at_disconnect() {
    model(2_000).check(|| {
        let (tx, rx) = bounded::<u64>(1);
        let t = thread::spawn(move || {
            tx.send(5).unwrap();
        });
        loop {
            match rx.try_recv() {
                Ok(v) => {
                    assert_eq!(v, 5);
                    break;
                }
                Err(TryRecvError::Empty) => thread::yield_now(),
                Err(TryRecvError::Disconnected) => {
                    panic!("message pushed before disconnect was lost")
                }
            }
        }
        t.join().unwrap();
    });
}

/// Range-claim exclusivity: two producers batch through the same tiny
/// ring, so their single-CAS range claims contend on `tail` in every
/// schedule. Claims must never overlap — each message arrives exactly
/// once and each producer's batch stays in order.
#[test]
fn racing_range_claims_never_overlap() {
    model(1_200).check(|| {
        let (tx, rx) = bounded::<u64>(2);
        let p1 = {
            let tx = tx.clone();
            thread::spawn(move || {
                let mut batch = vec![1, 2];
                tx.send_many(&mut batch).unwrap();
            })
        };
        let p2 = thread::spawn(move || {
            let mut batch = vec![10, 20];
            tx.send_many(&mut batch).unwrap();
        });
        let mut got = Vec::new();
        while got.len() < 4 {
            let n = rx.recv_many(&mut got, 4);
            assert!(n > 0, "senders alive — recv_many must not report disconnect");
        }
        let a: Vec<u64> = got.iter().copied().filter(|v| *v < 10).collect();
        let b: Vec<u64> = got.iter().copied().filter(|v| *v >= 10).collect();
        assert_eq!(a, vec![1, 2], "producer 1's claim order survives the race");
        assert_eq!(b, vec![10, 20], "producer 2's claim order survives the race");
        p1.join().unwrap();
        p2.join().unwrap();
    });
}

/// Per-slot publication of a claimed range: a single `send` (one-slot
/// claim/publish) racing a range claim must interleave cleanly — the
/// range's slots publish individually, so the lone message lands
/// before, between, or after the batch, never inside a torn slot.
#[test]
fn single_sends_interleave_safely_with_a_range_claim() {
    model(1_200).check(|| {
        let (tx, rx) = bounded::<u64>(2);
        let batcher = {
            let tx = tx.clone();
            thread::spawn(move || {
                let mut batch = vec![1, 2];
                tx.send_many(&mut batch).unwrap();
            })
        };
        let single = thread::spawn(move || tx.send(9).unwrap());
        let mut got = Vec::new();
        while got.len() < 3 {
            let n = rx.recv_many(&mut got, 3);
            assert!(n > 0, "senders alive — recv_many must not report disconnect");
        }
        let batch: Vec<u64> = got.iter().copied().filter(|v| *v < 9).collect();
        assert_eq!(batch, vec![1, 2], "range-claimed batch stays in order");
        assert!(got.contains(&9), "the single send must not be lost");
        batcher.join().unwrap();
        single.join().unwrap();
    });
}

/// The range-claim paths and the retained one-CAS-per-slot baseline
/// paths drain the same ring: claims made by either protocol respect
/// slots claimed by the other.
#[test]
fn range_claim_interoperates_with_the_per_slot_baseline() {
    model(1_200).check(|| {
        let (tx, rx) = bounded::<u64>(2);
        let producer = thread::spawn(move || {
            let mut batch = vec![1, 2];
            tx.send_many(&mut batch).unwrap();
            let mut batch = vec![3];
            tx.send_many_per_slot(&mut batch).unwrap();
        });
        let mut got = Vec::new();
        while got.len() < 2 {
            let n = rx.recv_many_per_slot(&mut got, 2);
            assert!(n > 0, "senders alive — recv must not report disconnect");
        }
        while got.len() < 3 {
            let n = rx.recv_many(&mut got, 3);
            assert!(n > 0, "senders alive — recv must not report disconnect");
        }
        assert_eq!(got, vec![1, 2, 3], "mixed protocols preserve FIFO order");
        producer.join().unwrap();
    });
}

/// `send` into a ring whose receiver died with the ring full returns
/// the message (`SendError`), exercising the park predicate's
/// disconnect arm.
#[test]
fn send_on_full_disconnected_ring_errors() {
    model(2_000).check(|| {
        let (tx, rx) = bounded::<u64>(1);
        tx.send(1).unwrap();
        drop(rx);
        assert_eq!(tx.send(2), Err(SendError(2)));
    });
}

//! Model-checked channel tests against the linked library, active only
//! under `cargo test -p crossbeam --features model` (which routes the
//! crate's `sync` facade onto the modelcheck shims). The same suite
//! runs in tier-1 via vendor/modelcheck/tests/channel_model.rs.
#![cfg(anomex_model)]

pub use crossbeam::channel;

#[path = "suites/channel.rs"]
mod suite;

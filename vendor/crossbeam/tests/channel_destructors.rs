//! Destructor accounting for the ring at every fill level: whatever
//! mix of sent, received, and still-in-flight messages a channel dies
//! with, every message's destructor must run exactly once (`Ring::drop`
//! walks the stamps to find live slots — an off-by-one there would leak
//! or double-drop). The model twin of this sweep lives in
//! `tests/suites/channel.rs` (`ring_drop_at_every_fill_level`), where
//! the shim slot protocol independently verifies each drop.

// With `--features model` the channel is compiled against the
// modelcheck shims and only runs under the model scheduler; this plain
// std sweep is the not(model) half.
#![cfg(not(anomex_model))]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::bounded;

/// Increments its counter exactly once, on drop.
struct Probe(Arc<AtomicUsize>);

impl Drop for Probe {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn every_fill_level_drops_every_message_exactly_once() {
    for cap in [1usize, 2, 3, 7] {
        for fill in 0..=cap {
            for consumed in 0..=fill {
                let drops = Arc::new(AtomicUsize::new(0));
                let (tx, rx) = bounded::<Probe>(cap);
                for _ in 0..fill {
                    tx.send(Probe(Arc::clone(&drops))).unwrap();
                }
                for _ in 0..consumed {
                    drop(rx.recv().unwrap());
                }
                assert_eq!(
                    drops.load(Ordering::Relaxed),
                    consumed,
                    "cap {cap} fill {fill}: only the {consumed} received probes dropped so far"
                );
                drop(tx);
                drop(rx);
                assert_eq!(
                    drops.load(Ordering::Relaxed),
                    fill,
                    "cap {cap} fill {fill} consumed {consumed}: \
                     in-flight probes must drop exactly once with the ring"
                );
            }
        }
    }
}

/// Same sweep after the ring has wrapped (head/tail past the first
/// lap), so `Ring::drop`'s stamp walk is exercised at non-zero lap
/// offsets too.
#[test]
fn wrapped_ring_still_drops_in_flight_messages_exactly_once() {
    for cap in [1usize, 2, 5] {
        for fill in 0..=cap {
            let drops = Arc::new(AtomicUsize::new(0));
            let (tx, rx) = bounded::<Probe>(cap);
            // Cycle a few laps first.
            for _ in 0..3 * cap {
                tx.send(Probe(Arc::clone(&drops))).unwrap();
                drop(rx.recv().unwrap());
            }
            let cycled = drops.load(Ordering::Relaxed);
            assert_eq!(cycled, 3 * cap);
            for _ in 0..fill {
                tx.send(Probe(Arc::clone(&drops))).unwrap();
            }
            drop(tx);
            drop(rx);
            assert_eq!(
                drops.load(Ordering::Relaxed),
                cycled + fill,
                "cap {cap} fill {fill}: wrapped ring leaked or double-dropped"
            );
        }
    }
}

//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — `proptest!`, `prop_assert*!`, `prop_oneof!`, `Just`,
//! `any`, integer/float range strategies, tuple strategies,
//! `prop::collection::vec`, `prop_map`, `prop_recursive`, and
//! `BoxedStrategy` — over a deterministic splitmix64 generator.
//! Failing cases are reported with their inputs but are NOT shrunk;
//! set `PROPTEST_CASES` to override the per-test case count.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic RNG (splitmix64) driving every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator.
    pub fn seeded(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n` (n must be nonzero).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Stable per-test seed derived from the test's module path and name.
pub fn seed_for(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Error carried by `prop_assert*` failures.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure from its message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running exactly `cases` iterations.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// Profile-scaled case count: `release_cases` in optimized builds,
    /// a quarter of it (floor 8) under `debug_assertions`, where each
    /// case runs an order of magnitude slower. When `PROPTEST_CASES`
    /// is set it acts as a **cap** — CI pins it to bound the whole
    /// suite without inflating tests that asked for fewer cases.
    pub fn profile_cases(release_cases: u32) -> ProptestConfig {
        let profiled = if cfg!(debug_assertions) {
            (release_cases / 4).clamp(8.min(release_cases), release_cases)
        } else {
            release_cases
        };
        let cases = match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()) {
            Some(cap) => profiled.min(cap),
            None => profiled,
        };
        ProptestConfig { cases: cases.max(1) }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Erase the concrete strategy type (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Rc::new(self) }
    }

    /// Build recursive values: `recurse` wraps an inner strategy one
    /// level; nesting depth is uniform in `0..=depth`. The size hints
    /// of the real API are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }
}

/// Object-safe strategy facade backing [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: Rc::clone(&self.inner) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_new_value(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.new_value(rng))
    }
}

/// Uniform choice between boxed alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len());
        self.arms[pick].new_value(rng)
    }
}

/// The [`Strategy::prop_recursive`] combinator.
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    #[allow(clippy::type_complexity)]
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive { base: self.base.clone(), recurse: Rc::clone(&self.recurse), depth: self.depth }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(self.depth as usize + 1);
        let mut strat = self.base.clone();
        for _ in 0..levels {
            strat = (self.recurse)(strat);
        }
        strat.new_value(rng)
    }
}

/// Values with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full domain of `T` ([`any`]).
#[derive(Debug)]
pub struct Any<T> {
    marker: std::marker::PhantomData<T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any { marker: std::marker::PhantomData }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { marker: std::marker::PhantomData }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (*self.start() as i128 + offset) as $t
            }
        }

        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.f64_unit() as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11)
}

impl Strategy for () {
    type Value = ();

    fn new_value(&self, _rng: &mut TestRng) {}
}

/// Bounds on generated collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange { min: exact, max_inclusive: exact }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> SizeRange {
        assert!(range.start < range.end, "empty size range");
        SizeRange { min: range.start, max_inclusive: range.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> SizeRange {
        SizeRange { min: *range.start(), max_inclusive: *range.end() }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length inside `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_inclusive - self.size.min + 1;
            let len = self.size.min + rng.below(span.max(1));
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespaced strategy modules, proptest-style (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests. Each function runs `cases` times with fresh
/// random inputs; failures report the inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$attr:meta])*
       fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::TestRng::seeded($crate::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                )));
                let strategies = ($($strategy,)*);
                for case in 0..config.cases {
                    let values = $crate::Strategy::new_value(&strategies, &mut rng);
                    let repr = format!("{:?}", values);
                    let ($($pat,)*) = values;
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(failure) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}:\n{}\ninput: {}",
                            stringify!($name), case + 1, config.cases, failure, repr,
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failures abort only the case,
/// reporting the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` flavor of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), left, right, format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` flavor of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}\n  both: {:?}\n {}",
            stringify!($left), stringify!($right), left, format!($($fmt)+)
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in 0u8..=4, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u32>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![Just(1u32), (10u32..20).prop_map(|v| v * 2)],
        ) {
            prop_assert!(x == 1 || (20..40).contains(&x));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::seeded(42);
        let mut b = crate::TestRng::seeded(42);
        let strat = crate::collection::vec(0u64..100, 3);
        assert_eq!(
            crate::Strategy::new_value(&strat, &mut a),
            crate::Strategy::new_value(&strat, &mut b)
        );
    }
}

//! Negative tests: prove the model checker actually catches the bugs
//! the channel's orderings exist to prevent. Each test replicates the
//! ring's per-slot claim/publish protocol (`Ring::try_push` /
//! `Ring::try_pop` in vendor/crossbeam/src/channel.rs) on a one-slot
//! ring, seeds a specific ordering bug, and asserts the model reports
//! it. If a future refactor weakened the real channel the same way,
//! the tier-1 suite in channel_model.rs would fail with the same
//! diagnostics.

use std::mem::MaybeUninit;
use std::sync::Arc;

use modelcheck::cell::UnsafeCell;
use modelcheck::sync::{AtomicUsize, Ordering};
use modelcheck::{check, thread};

/// One ring slot plus its claim counters, exactly as in the channel:
/// `stamp == pos` means free-for-push, `stamp == pos + 1` means
/// holds-a-message.
struct MiniRing {
    stamp: AtomicUsize,
    value: UnsafeCell<MaybeUninit<u64>>,
    tail: AtomicUsize,
    head: AtomicUsize,
}

impl MiniRing {
    fn new() -> MiniRing {
        MiniRing {
            stamp: AtomicUsize::new(0),
            value: UnsafeCell::new(MaybeUninit::uninit()),
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// `Ring::try_push` for position 0, with the publishing stamp store
    /// ordering injected by the caller.
    fn push(&self, v: u64, stamp_order: Ordering) -> bool {
        if self.stamp.load(Ordering::Acquire) != 0 {
            return false;
        }
        if self.tail.compare_exchange(0, 1, Ordering::SeqCst, Ordering::Relaxed).is_err() {
            return false;
        }
        self.value.init(|p| {
            // SAFETY: the tail CAS claimed position 0 exclusively; the
            // stamp store below is what publishes the write.
            unsafe { (*p).write(v) };
        });
        self.stamp.store(1, stamp_order);
        true
    }

    /// `Ring::try_pop` for position 0.
    fn pop(&self) -> Option<u64> {
        if self.stamp.load(Ordering::Acquire) != 1 {
            return None;
        }
        if self.head.compare_exchange(0, 1, Ordering::SeqCst, Ordering::Relaxed).is_err() {
            return None;
        }
        let v = self.value.take(|p| {
            // SAFETY: observing stamp == 1 via Acquire (paired with the
            // producer's Release store) means the payload write
            // happens-before this read; the head CAS made the claim
            // exclusive.
            unsafe { (*p).assume_init_read() }
        });
        Some(v)
    }
}

/// Control: with the production ordering (Release publish) the
/// protocol is race-free in every interleaving.
#[test]
fn release_stamp_publish_is_clean() {
    let report = check(|| {
        let ring = Arc::new(MiniRing::new());
        let producer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || ring.push(42, Ordering::Release))
        };
        if let Some(v) = ring.pop() {
            assert_eq!(v, 42);
        }
        producer.join().unwrap();
    });
    assert!(report.complete, "one-slot protocol must exhaust its schedule space");
}

/// The seeded bug: stamp published with `Relaxed` instead of `Release`
/// (the exact weakening a careless "optimization" of
/// `slot.stamp.store(tail + 1, Ordering::Release)` would make). The
/// synchronizes-with edge from payload write to payload read is
/// severed, and the model must report the consumer's slot read as a
/// data race.
#[test]
#[should_panic(expected = "data race")]
fn relaxed_stamp_publish_is_caught() {
    check(|| {
        let ring = Arc::new(MiniRing::new());
        let producer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || ring.push(42, Ordering::Relaxed)) // planted bug
        };
        if let Some(v) = ring.pop() {
            assert_eq!(v, 42);
        }
        producer.join().unwrap();
    });
}

/// Second seeded bug: the consumer recycles the slot for the next lap
/// *before* moving the payload out — the order `try_pop` must never
/// swap. A producer can then overwrite the slot while the consumer is
/// still reading it. Depending on the interleaving this shows up as a
/// data race on the producer's `init` (unordered against the late
/// `take`) or as a double-init; the DFS reaches the race first.
#[test]
#[should_panic(expected = "data race: UnsafeCell::init")]
fn recycling_the_slot_before_reading_is_caught() {
    check(|| {
        let slot = Arc::new(MiniRing::new());
        slot.push(1, Ordering::Release);
        let producer = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                // Next-lap producer: waits for the recycled stamp.
                if slot.stamp.load(Ordering::Acquire) == 0 {
                    slot.value.init(|p| {
                        // SAFETY: stamp 0 says the slot is free — but
                        // the buggy consumer below lies about that.
                        unsafe { (*p).write(2) };
                    });
                }
            })
        };
        if slot.stamp.load(Ordering::Acquire) == 1 {
            // Planted bug: recycle first, read second.
            slot.stamp.store(0, Ordering::Release);
            let _ = slot.value.take(|p| {
                // SAFETY: intentionally unsound — the slot was already
                // handed back to producers; the model must object.
                unsafe { (*p).assume_init_read() }
            });
        }
        producer.join().unwrap();
    });
}

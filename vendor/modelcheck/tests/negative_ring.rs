//! Negative tests: prove the model checker actually catches the bugs
//! the channel's orderings exist to prevent. Each test replicates the
//! ring's per-slot claim/publish protocol (`Ring::try_push` /
//! `Ring::try_pop` in vendor/crossbeam/src/channel.rs) on a one-slot
//! ring, seeds a specific ordering bug, and asserts the model reports
//! it. If a future refactor weakened the real channel the same way,
//! the tier-1 suite in channel_model.rs would fail with the same
//! diagnostics.

use std::mem::MaybeUninit;
use std::sync::Arc;

use modelcheck::cell::UnsafeCell;
use modelcheck::sync::{AtomicUsize, Ordering};
use modelcheck::{check, thread};

/// One ring slot plus its claim counters, exactly as in the channel:
/// `stamp == pos` means free-for-push, `stamp == pos + 1` means
/// holds-a-message.
struct MiniRing {
    stamp: AtomicUsize,
    value: UnsafeCell<MaybeUninit<u64>>,
    tail: AtomicUsize,
    head: AtomicUsize,
}

impl MiniRing {
    fn new() -> MiniRing {
        MiniRing {
            stamp: AtomicUsize::new(0),
            value: UnsafeCell::new(MaybeUninit::uninit()),
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// `Ring::try_push` for position 0, with the publishing stamp store
    /// ordering injected by the caller.
    fn push(&self, v: u64, stamp_order: Ordering) -> bool {
        if self.stamp.load(Ordering::Acquire) != 0 {
            return false;
        }
        if self.tail.compare_exchange(0, 1, Ordering::SeqCst, Ordering::Relaxed).is_err() {
            return false;
        }
        self.value.init(|p| {
            // SAFETY: the tail CAS claimed position 0 exclusively; the
            // stamp store below is what publishes the write.
            unsafe { (*p).write(v) };
        });
        self.stamp.store(1, stamp_order);
        true
    }

    /// `Ring::try_pop` for position 0.
    fn pop(&self) -> Option<u64> {
        if self.stamp.load(Ordering::Acquire) != 1 {
            return None;
        }
        if self.head.compare_exchange(0, 1, Ordering::SeqCst, Ordering::Relaxed).is_err() {
            return None;
        }
        let v = self.value.take(|p| {
            // SAFETY: observing stamp == 1 via Acquire (paired with the
            // producer's Release store) means the payload write
            // happens-before this read; the head CAS made the claim
            // exclusive.
            unsafe { (*p).assume_init_read() }
        });
        Some(v)
    }
}

/// Control: with the production ordering (Release publish) the
/// protocol is race-free in every interleaving.
#[test]
fn release_stamp_publish_is_clean() {
    let report = check(|| {
        let ring = Arc::new(MiniRing::new());
        let producer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || ring.push(42, Ordering::Release))
        };
        if let Some(v) = ring.pop() {
            assert_eq!(v, 42);
        }
        producer.join().unwrap();
    });
    assert!(report.complete, "one-slot protocol must exhaust its schedule space");
}

/// The seeded bug: stamp published with `Relaxed` instead of `Release`
/// (the exact weakening a careless "optimization" of
/// `slot.stamp.store(tail + 1, Ordering::Release)` would make). The
/// synchronizes-with edge from payload write to payload read is
/// severed, and the model must report the consumer's slot read as a
/// data race.
#[test]
#[should_panic(expected = "data race")]
fn relaxed_stamp_publish_is_caught() {
    check(|| {
        let ring = Arc::new(MiniRing::new());
        let producer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || ring.push(42, Ordering::Relaxed)) // planted bug
        };
        if let Some(v) = ring.pop() {
            assert_eq!(v, 42);
        }
        producer.join().unwrap();
    });
}

/// Two-slot ring with **range-claim** batching, exactly as
/// `Ring::try_claim`/`write_range` in vendor/crossbeam/src/channel.rs:
/// one tail CAS reserves a contiguous run of slots, then each slot's
/// stamp publishes individually. `one_lap` is 4 (cap 2 rounded up to a
/// power of two), so lap-0 positions are {0, 1} and lap-1 positions
/// are {4, 5}.
struct MiniRangeRing {
    stamps: [AtomicUsize; 2],
    values: [UnsafeCell<MaybeUninit<u64>>; 2],
    tail: AtomicUsize,
    head: AtomicUsize,
}

impl MiniRangeRing {
    const ONE_LAP: usize = 4;

    fn new() -> MiniRangeRing {
        MiniRangeRing {
            stamps: [AtomicUsize::new(0), AtomicUsize::new(1)],
            values: [
                UnsafeCell::new(MaybeUninit::uninit()),
                UnsafeCell::new(MaybeUninit::uninit()),
            ],
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// Linearized message count for a position (laps × cap + index) —
    /// the free-slot arithmetic `try_claim` clips against.
    fn lin(pos: usize) -> usize {
        (pos / Self::ONE_LAP) * 2 + (pos & (Self::ONE_LAP - 1))
    }

    /// Lap-0 fill: one range claim of both slots (tail 0 → lap base 4),
    /// then per-slot publication. The lap-0 stamps already read "free",
    /// so no recycle wait is needed here.
    fn fill_lap0(&self, v0: u64, v1: u64) {
        assert!(self.tail.compare_exchange(0, 4, Ordering::SeqCst, Ordering::Relaxed).is_ok());
        for (i, v) in [(0usize, v0), (1usize, v1)] {
            self.values[i].init(|p| {
                // SAFETY: the tail CAS claimed positions 0..2
                // exclusively and both slots are in their initial
                // (empty) lap-0 state.
                unsafe { (*p).write(v) };
            });
            self.stamps[i].store(i + 1, Ordering::Release);
        }
    }

    /// Lap-0 consumer: pop slot 0 (position 0) with the production
    /// protocol — Acquire stamp check, head CAS, take, recycle stamp.
    fn pop_front(&self) -> Option<u64> {
        if self.stamps[0].load(Ordering::Acquire) != 1 {
            return None;
        }
        if self.head.compare_exchange(0, 1, Ordering::SeqCst, Ordering::Relaxed).is_err() {
            return None;
        }
        let v = self.values[0].take(|p| {
            // SAFETY: Acquire stamp == 1 pairs with the producer's
            // Release publish, and the head CAS made this claim
            // exclusive.
            unsafe { (*p).assume_init_read() }
        });
        self.stamps[0].store(Self::ONE_LAP, Ordering::Release);
        Some(v)
    }

    /// Lap-1 producer: range-claim position 4 (slot 0 again) and write
    /// one message. `clipped` selects the production protocol — claim
    /// bounded by the free-slot count, publication waiting for the
    /// consumer's recycle stamp — or the seeded overlapping-range bug
    /// (both guards dropped), in which the claimed range overlaps a
    /// slot the lap-0 consumer may still own.
    fn claim_next_lap_and_write(&self, v: u64, clipped: bool) -> bool {
        if clipped {
            let head = self.head.load(Ordering::Relaxed);
            let free = 2 - (Self::lin(4) - Self::lin(head));
            if free == 0 {
                // Full: the real `send_many` would park and retry; the
                // model scenario just gives up.
                return false;
            }
        }
        if self.tail.compare_exchange(4, 5, Ordering::SeqCst, Ordering::Relaxed).is_err() {
            return false;
        }
        if clipped {
            // Per-slot recycle wait: head has already passed position
            // 0 (that is what the free clip proved), so this wait is
            // bounded by the in-flight pop.
            while self.stamps[0].load(Ordering::Acquire) != Self::ONE_LAP {
                modelcheck::thread::yield_now();
            }
        }
        self.values[0].init(|p| {
            // SAFETY: sound only on the clipped path — the free clip
            // plus the recycle wait prove the consumer is done with
            // the slot. The unclipped path is the seeded bug the model
            // must object to.
            unsafe { (*p).write(v) };
        });
        self.stamps[0].store(5, Ordering::Release);
        true
    }
}

/// Control: the production range-claim protocol (free-slot clip on the
/// claim, per-slot recycle wait before the write) is race-free in
/// every interleaving of a lap-1 claim against a lap-0 pop.
#[test]
fn clipped_range_claim_is_clean() {
    let report = check(|| {
        let ring = Arc::new(MiniRangeRing::new());
        ring.fill_lap0(1, 2);
        let consumer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || ring.pop_front())
        };
        let _ = ring.claim_next_lap_and_write(3, true);
        let popped = consumer.join().unwrap();
        if let Some(v) = popped {
            assert_eq!(v, 1);
        }
    });
    assert!(report.complete, "range-claim protocol must exhaust its schedule space");
}

/// The seeded bug: a range claim that ignores the free-slot clip and
/// the per-slot recycle wait — the exact overreach a careless
/// "optimization" of `try_claim`/`write_range` would make. The claimed
/// range then overlaps slot 0 while the lap-0 consumer still owns it,
/// and the model must object to the producer's overlapping write —
/// the DFS reaches the schedule where the consumer has not popped yet
/// first, so the report is a double-init (a write into a slot still
/// holding an untaken message); later schedules would surface the same
/// overreach as an init/take data race.
#[test]
#[should_panic(expected = "double-init")]
fn overlapping_range_claim_is_caught() {
    check(|| {
        let ring = Arc::new(MiniRangeRing::new());
        ring.fill_lap0(1, 2);
        let consumer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || ring.pop_front())
        };
        let _ = ring.claim_next_lap_and_write(3, false); // planted bug
        consumer.join().unwrap();
    });
}

/// Second seeded bug: the consumer recycles the slot for the next lap
/// *before* moving the payload out — the order `try_pop` must never
/// swap. A producer can then overwrite the slot while the consumer is
/// still reading it. Depending on the interleaving this shows up as a
/// data race on the producer's `init` (unordered against the late
/// `take`) or as a double-init; the DFS reaches the race first.
#[test]
#[should_panic(expected = "data race: UnsafeCell::init")]
fn recycling_the_slot_before_reading_is_caught() {
    check(|| {
        let slot = Arc::new(MiniRing::new());
        slot.push(1, Ordering::Release);
        let producer = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                // Next-lap producer: waits for the recycled stamp.
                if slot.stamp.load(Ordering::Acquire) == 0 {
                    slot.value.init(|p| {
                        // SAFETY: stamp 0 says the slot is free — but
                        // the buggy consumer below lies about that.
                        unsafe { (*p).write(2) };
                    });
                }
            })
        };
        if slot.stamp.load(Ordering::Acquire) == 1 {
            // Planted bug: recycle first, read second.
            slot.stamp.store(0, Ordering::Release);
            let _ = slot.value.take(|p| {
                // SAFETY: intentionally unsound — the slot was already
                // handed back to producers; the model must object.
                unsafe { (*p).assume_init_read() }
            });
        }
        producer.join().unwrap();
    });
}

//! Tier-1 model checking of the production channel source.
//!
//! `channel.rs` is `#[path]`-included verbatim, so `crate::sync` below
//! — always the shims here — is what it compiles against: the exact
//! code that ships (same file, same lines) runs under the controlled
//! scheduler with race/deadlock/slot-protocol detection, with no
//! feature flag needed. `cargo test` at the workspace root runs this.
//!
//! The same suite also runs against the *linked* crossbeam library via
//! `cargo test -p crossbeam --features model` (the CI verify job), so
//! both compilation routes stay honest.

#[path = "../../crossbeam/src/channel.rs"]
pub mod channel;

/// The `crate::sync` facade the included channel source resolves to:
/// instrumented atomics, parking and cells.
pub mod sync {
    pub use modelcheck::cell::UnsafeCell;
    pub use modelcheck::sync::{fence, thread_yield, AtomicUsize, Condvar, Mutex, Ordering};
}

#[path = "../../crossbeam/tests/suites/channel.rs"]
mod suite;

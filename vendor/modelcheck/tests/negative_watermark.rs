//! Negative tests for the watermark-table protocol: replicate the
//! table's slot lifecycle (`WatermarkTable` in
//! crates/stream/src/watermark.rs) on a two-slot table, seed the
//! protocol bugs the production code's structure rules out, and assert
//! the model reports them. If a future refactor broke the real table
//! the same way, the tier-1 suite in watermark_model.rs would fail with
//! the same diagnostics.
//!
//! (Bugs that are *pure ordering-strength* weakenings on atomics —
//! e.g. a Relaxed bit-clear — don't change any sequentially-consistent
//! execution and are therefore invisible to an SC-exploring checker;
//! the nightly TSan/Miri lane covers that class. The seeded bugs here
//! are interleaving bugs, which the DFS does catch; the
//! strength-weakening class is exercised on the channel's non-atomic
//! slot payloads in negative_ring.rs, where the race detector sees it.)

use std::sync::Arc;

use modelcheck::sync::{AtomicU64, Ordering};
use modelcheck::{check, thread};

/// The table's slot-handoff protocol on two slots, with the bugs
/// injectable by the caller.
struct MiniTable {
    active: AtomicU64,
    marks: [AtomicU64; 2],
}

impl MiniTable {
    fn new() -> MiniTable {
        MiniTable { active: AtomicU64::new(0), marks: [AtomicU64::new(0), AtomicU64::new(0)] }
    }

    /// `WatermarkTable::acquire`, production shape (CAS claim).
    fn acquire(&self, seed_ms: u64) -> usize {
        loop {
            let mask = self.active.load(Ordering::SeqCst);
            let free = (!mask).trailing_zeros() as usize;
            assert!(free < 2, "both slots live");
            if self
                .active
                .compare_exchange(mask, mask | (1 << free), Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.marks[free].fetch_max(seed_ms, Ordering::Relaxed);
                return free;
            }
        }
    }

    /// Planted bug: claim with a load-then-store instead of the CAS —
    /// the classic lost update. Two racing claimants can both observe
    /// the same free slot and both "own" it.
    fn acquire_racy(&self, seed_ms: u64) -> usize {
        let mask = self.active.load(Ordering::SeqCst);
        let free = (!mask).trailing_zeros() as usize;
        assert!(free < 2, "both slots live");
        self.active.store(mask | (1 << free), Ordering::SeqCst);
        self.marks[free].fetch_max(seed_ms, Ordering::Relaxed);
        free
    }

    /// `WatermarkTable::release`, but the caller picks the order of the
    /// two halves (zero the mark / clear the bit).
    fn release(&self, slot: usize, zero_first: bool) {
        if zero_first {
            self.marks[slot].store(0, Ordering::Relaxed);
            self.active.fetch_and(!(1u64 << slot), Ordering::Release);
        } else {
            // Planted bug: hand the slot back to claimants while the
            // stale mark is still readable.
            self.active.fetch_and(!(1u64 << slot), Ordering::Release);
            self.marks[slot].store(0, Ordering::Relaxed);
        }
    }

    /// `WatermarkTable::min_frontier`, production orderings.
    fn min_frontier(&self) -> u64 {
        let mut mask = self.active.load(Ordering::Acquire);
        let mut min = u64::MAX;
        while mask != 0 {
            let slot = mask.trailing_zeros() as usize;
            min = min.min(self.marks[slot].load(Ordering::Relaxed));
            mask &= mask - 1;
        }
        if min == u64::MAX {
            0
        } else {
            min
        }
    }
}

/// One releasing handle at a high mark, one claimant asserting the
/// frontier invariant its seed guarantees.
fn churn(zero_first: bool) {
    check(move || {
        let table = Arc::new(MiniTable::new());
        let t = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                let slot = table.acquire(7);
                let frontier = table.min_frontier();
                assert!(frontier <= 7, "stale high mark leaked into the frontier: {frontier}");
                table.release(slot, zero_first);
            })
        };
        let slot = table.acquire(0);
        table.marks[slot].fetch_max(900, Ordering::Relaxed);
        table.release(slot, zero_first);
        t.join().unwrap();
    });
}

/// Control: the production order (zero the mark, then clear the bit)
/// keeps the frontier invariant in every interleaving.
#[test]
fn zero_before_release_is_clean() {
    churn(true);
}

/// First seeded bug: clearing the bit *before* zeroing the mark lets a
/// re-acquirer claim the slot, seed it, scan, and still read the
/// previous occupant's 900 — the exact stale-frontier overshoot
/// `release`'s doc comment rules out.
#[test]
#[should_panic(expected = "stale high mark leaked")]
fn clearing_the_bit_before_zeroing_is_caught() {
    churn(false);
}

/// Second seeded bug: replacing the claim CAS with load-then-store
/// loses one of two racing claims — both handles end up publishing
/// into the same slot, and slot exclusivity is the invariant every
/// handle's `publish` relies on.
#[test]
#[should_panic(expected = "claimed the same slot")]
fn load_then_store_claim_is_caught() {
    check(|| {
        let table = Arc::new(MiniTable::new());
        let t = {
            let table = Arc::clone(&table);
            thread::spawn(move || table.acquire_racy(1))
        };
        let mine = table.acquire_racy(2);
        let theirs = t.join().unwrap();
        assert_ne!(mine, theirs, "two handles claimed the same slot: {mine}");
    });
}

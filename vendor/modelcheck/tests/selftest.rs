//! Self-tests for the model checker: the scheduler must explore enough
//! interleavings to catch planted bugs, and must not report phantom
//! failures on correct code. Every detector the channel/watermark model
//! tests rely on is exercised here with a minimal planted bug.

use std::sync::Arc;

use modelcheck::cell::UnsafeCell;
use modelcheck::sync::{fence, AtomicUsize, Condvar, Mutex, Ordering};
use modelcheck::{check, check_random, thread, Model};

// ---------------------------------------------------------------------------
// Scheduler basics.
// ---------------------------------------------------------------------------

#[test]
fn single_thread_runs_once() {
    let report = check(|| {
        let a = AtomicUsize::new(0);
        a.store(7, Ordering::Relaxed);
        assert_eq!(a.load(Ordering::Relaxed), 7);
    });
    assert!(report.complete, "trivial model must exhaust its schedule space");
}

#[test]
fn dfs_explores_both_orders_of_two_writers() {
    // Two threads race one Relaxed counter with an RMW each; dependent
    // on schedule, the observer sees 1 or 2 after joining only one of
    // them. Both outcomes must occur across the DFS.
    use std::sync::atomic::AtomicBool as RealBool;
    let saw_one = Arc::new(RealBool::new(false));
    let saw_two = Arc::new(RealBool::new(false));
    let (s1, s2) = (Arc::clone(&saw_one), Arc::clone(&saw_two));
    let report = check(move || {
        let n = Arc::new(AtomicUsize::new(0));
        let a = {
            let n = Arc::clone(&n);
            thread::spawn(move || n.fetch_add(1, Ordering::Relaxed))
        };
        let b = {
            let n = Arc::clone(&n);
            thread::spawn(move || n.fetch_add(1, Ordering::Relaxed))
        };
        a.join().unwrap();
        match n.load(Ordering::Relaxed) {
            1 => s1.store(true, std::sync::atomic::Ordering::Relaxed),
            2 => s2.store(true, std::sync::atomic::Ordering::Relaxed),
            v => panic!("counter can only be 1 or 2 after one join, saw {v}"),
        }
        b.join().unwrap();
    });
    assert!(report.complete);
    assert!(report.executions >= 2, "expected several schedules, got {}", report.executions);
    assert!(saw_one.load(std::sync::atomic::Ordering::Relaxed), "never saw the a-only schedule");
    assert!(saw_two.load(std::sync::atomic::Ordering::Relaxed), "never saw the a+b schedule");
}

#[test]
fn random_walk_smoke() {
    let report = check_random(0xC0FFEE, 50, || {
        let n = Arc::new(AtomicUsize::new(0));
        let t = {
            let n = Arc::clone(&n);
            thread::spawn(move || n.fetch_add(1, Ordering::SeqCst))
        };
        n.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    assert_eq!(report.executions, 50);
}

#[test]
#[should_panic(expected = "counter can only be")]
fn assertion_failures_propagate_with_schedule() {
    check(|| {
        let n = AtomicUsize::new(0);
        n.fetch_add(3, Ordering::Relaxed);
        assert_eq!(n.load(Ordering::Relaxed), 1, "counter can only be 1 here");
    });
}

// ---------------------------------------------------------------------------
// Race detection through declared orderings.
// ---------------------------------------------------------------------------

/// Message-passing with a Release store + Acquire load: correct, and
/// the model must not report a phantom race.
#[test]
fn release_acquire_publish_is_race_free() {
    let report = check(|| {
        let data = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicUsize::new(0));
        let t = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            thread::spawn(move || {
                data.with_mut(|p| {
                    // SAFETY: flag is still 0, so the reader has not
                    // touched data yet; the Release store below orders
                    // this write before any Acquire observer.
                    unsafe { *p = 42 }
                });
                flag.store(1, Ordering::Release);
            })
        };
        if flag.load(Ordering::Acquire) == 1 {
            // SAFETY: Acquire observed the Release store, so the write
            // to data happens-before this read.
            let v = data.with(|p| unsafe { *p });
            assert_eq!(v, 42);
        }
        t.join().unwrap();
    });
    assert!(report.complete);
}

/// The same pattern with the Release store weakened to Relaxed: the
/// synchronizes-with edge is severed and the reader's access must be
/// reported as a data race in some interleaving. This is the in-vitro
/// version of the weakened-stamp channel negative test.
#[test]
#[should_panic(expected = "data race")]
fn relaxed_publish_is_reported_as_a_race() {
    check(|| {
        let data = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicUsize::new(0));
        let t = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            thread::spawn(move || {
                data.with_mut(|p| {
                    // SAFETY: single writer; the bug under test is the
                    // missing Release on the flag, not this access.
                    unsafe { *p = 42 }
                });
                flag.store(1, Ordering::Relaxed); // planted bug
            })
        };
        if flag.load(Ordering::Acquire) == 1 {
            // SAFETY: intentionally unsound — the Relaxed flag store
            // above provides no ordering; the model must flag this.
            let _ = data.with(|p| unsafe { *p });
        }
        t.join().unwrap();
    });
}

/// SeqCst fences restore ordering between Relaxed accesses
/// (store-fence / fence-load), and SeqCst *operations* do not leak
/// fence-like ordering to unrelated locations.
#[test]
fn seqcst_fences_order_relaxed_accesses() {
    let report = check(|| {
        let data = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicUsize::new(0));
        let t = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            thread::spawn(move || {
                data.with_mut(|p| {
                    // SAFETY: flag is still 0 — reader has not started.
                    unsafe { *p = 7 }
                });
                fence(Ordering::SeqCst);
                flag.store(1, Ordering::Relaxed);
            })
        };
        if flag.load(Ordering::Relaxed) == 1 {
            fence(Ordering::SeqCst);
            // SAFETY: fence/fence pairing orders the write before this
            // read once the flag value 1 is observed.
            let v = data.with(|p| unsafe { *p });
            assert_eq!(v, 7);
        }
        t.join().unwrap();
    });
    assert!(report.complete);
}

// ---------------------------------------------------------------------------
// Slot protocol (MaybeUninit init/take).
// ---------------------------------------------------------------------------

#[test]
#[should_panic(expected = "double-init")]
fn double_init_is_caught() {
    check(|| {
        let slot: UnsafeCell<u64> = UnsafeCell::new(0);
        slot.init(|p| {
            // SAFETY: exclusive single-threaded access in this model.
            unsafe { *p = 1 }
        });
        slot.init(|p| {
            // SAFETY: as above — the protocol violation is the point.
            unsafe { *p = 2 }
        });
    });
}

#[test]
#[should_panic(expected = "uninitialized read")]
fn take_of_empty_slot_is_caught() {
    check(|| {
        let slot: UnsafeCell<u64> = UnsafeCell::new(0);
        slot.take(|p| {
            // SAFETY: intentionally broken take-before-init.
            unsafe { *p }
        });
    });
}

#[test]
fn init_take_roundtrip_is_clean() {
    let report = check(|| {
        let slot: UnsafeCell<u64> = UnsafeCell::new(0);
        slot.init(|p| {
            // SAFETY: slot is empty (fresh cell), single thread.
            unsafe { *p = 9 }
        });
        let v = slot.take(|p| {
            // SAFETY: slot was initialized just above.
            unsafe { *p }
        });
        assert_eq!(v, 9);
    });
    assert!(report.complete);
}

// ---------------------------------------------------------------------------
// Mutex + Condvar: deadlocks and lost wakeups.
// ---------------------------------------------------------------------------

#[test]
fn mutex_serializes_critical_sections() {
    let report = check(|| {
        let m = Arc::new(Mutex::new(0u64));
        let t = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                let mut g = m.lock().unwrap();
                *g += 1;
            })
        };
        {
            let mut g = m.lock().unwrap();
            *g += 1;
        }
        t.join().unwrap();
        assert_eq!(*m.lock().unwrap(), 2);
    });
    assert!(report.complete);
}

#[test]
#[should_panic(expected = "deadlock")]
fn ab_ba_lock_cycle_is_caught() {
    // Classic lock-order inversion: some interleaving has each thread
    // holding one lock and waiting for the other.
    check(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let t = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn(move || {
                let _ga = a.lock().unwrap();
                let _gb = b.lock().unwrap();
            })
        };
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop(_ga);
        drop(_gb);
        t.join().unwrap();
    });
}

/// Check-then-wait without re-checking under the lock: the notify can
/// land between the check and the park, and the waiter sleeps forever.
/// The no-spurious-wakeup condvar turns that lost wakeup into a
/// detected deadlock.
#[test]
#[should_panic(expected = "deadlock")]
fn lost_wakeup_is_caught_as_deadlock() {
    check(|| {
        let ready = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let t = {
            let (ready, cv) = (Arc::clone(&ready), Arc::clone(&cv));
            thread::spawn(move || {
                *ready.lock().unwrap() = true;
                cv.notify_one();
            })
        };
        // Planted bug: the predicate is checked once, *before* parking,
        // instead of in a wait loop holding the lock across the check.
        let ready_now = *ready.lock().unwrap();
        if !ready_now {
            let g = ready.lock().unwrap();
            let _g = cv.wait(g).unwrap();
        }
        t.join().unwrap();
    });
}

/// The correct wait-loop protocol must pass: condition re-checked under
/// the same lock the notifier holds while flipping it.
#[test]
fn wait_loop_protocol_is_clean() {
    let report = check(|| {
        let ready = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let t = {
            let (ready, cv) = (Arc::clone(&ready), Arc::clone(&cv));
            thread::spawn(move || {
                *ready.lock().unwrap() = true;
                cv.notify_all();
            })
        };
        let mut g = ready.lock().unwrap();
        while !*g {
            g = cv.wait(g).unwrap();
        }
        drop(g);
        t.join().unwrap();
    });
    assert!(report.complete);
}

// ---------------------------------------------------------------------------
// Bounds and budget controls.
// ---------------------------------------------------------------------------

#[test]
fn execution_budget_truncates_dfs() {
    let model = Model { max_executions: 3, ..Model::default() };
    let report = model.check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in ts {
            t.join().unwrap();
        }
    });
    assert!(!report.complete, "budget of 3 cannot exhaust this space");
    assert_eq!(report.executions, 3);
}

#[test]
#[should_panic(expected = "step bound exceeded")]
fn step_bound_catches_livelock() {
    let model = Model { max_steps: 200, ..Model::default() };
    model.check(|| {
        let stop = Arc::new(AtomicUsize::new(0));
        // Single-threaded spin that no other thread can break: the
        // step bound is the only way out.
        while stop.load(Ordering::Relaxed) == 0 {
            thread::yield_now();
        }
    });
}

//! Tier-1 model-checked run of the stream watermark table.
//!
//! Same trick as `channel_model.rs`: this crate root `#[path]`-includes
//! the production `watermark.rs` source next to a local `mod sync` that
//! resolves to the modelcheck shims, so `crate::watermark` below is an
//! instrumented copy of the exact code `anomex-stream` ships — and the
//! suite runs in the default `cargo test` tier with no feature flags.

// The included module's `use crate::sync::...` resolves here.
pub mod sync {
    pub use modelcheck::sync::{AtomicU64, Ordering};
}

#[path = "../../../crates/stream/src/watermark.rs"]
pub mod watermark;

#[path = "../../../crates/stream/tests/suites/watermark.rs"]
mod suite;

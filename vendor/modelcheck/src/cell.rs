//! The instrumented `UnsafeCell`: every access is checked against the
//! happens-before relation (data-race detection), and the
//! init/take protocol used for `MaybeUninit` slots is tracked so
//! double-init (leak) and take-of-empty (uninitialized read /
//! double-free) are caught as model failures.

use std::sync::Mutex as StdMutex;

use crate::clock::VClock;
use crate::rt;

#[derive(Debug, Default)]
struct CellState {
    /// Clock of the last write access.
    write: VClock,
    /// Join of the clocks of all read accesses since the start.
    reads: VClock,
    /// Whether any write has happened yet.
    written: bool,
    /// Slot-protocol state: value present (set by `init`, cleared by
    /// `take`).
    occupied: bool,
}

/// Instrumented `UnsafeCell`. The std twin of this type (in the `sync`
/// facades of vendor/crossbeam and crates/stream) compiles to direct
/// pointer access with zero overhead; this one records every access
/// for race and slot-protocol checking.
#[derive(Debug)]
pub struct UnsafeCell<T> {
    data: std::cell::UnsafeCell<T>,
    state: StdMutex<CellState>,
}

// SAFETY: the model run serializes all access (one thread holds the
// scheduler floor at a time), and every access goes through the
// race-checked entry points below, which report any pair of accesses
// not ordered by happens-before instead of letting them race.
unsafe impl<T: Send> Send for UnsafeCell<T> {}
// SAFETY: as above.
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    pub fn new(data: T) -> UnsafeCell<T> {
        UnsafeCell {
            data: std::cell::UnsafeCell::new(data),
            state: StdMutex::new(CellState::default()),
        }
    }

    /// Immutable access; a data race with any unordered write is a
    /// model failure.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        self.record_read("UnsafeCell::with");
        f(self.data.get())
    }

    /// Mutable access; a data race with any unordered access is a
    /// model failure.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        self.record_write("UnsafeCell::with_mut", None);
        f(self.data.get())
    }

    /// Mutable access that *initializes* a slot (e.g. `MaybeUninit::
    /// write`): fails on double-init — writing a slot whose previous
    /// value was never taken is a leak at best and a protocol bug
    /// always.
    pub fn init<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        self.record_write("UnsafeCell::init", Some(true));
        f(self.data.get())
    }

    /// Mutable access that *moves the value out* of a slot (e.g.
    /// `MaybeUninit::assume_init_read`): fails on reading an empty or
    /// never-initialized slot (an uninitialized read, and a double-free
    /// once the caller drops both copies).
    pub fn take<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        self.record_write("UnsafeCell::take", Some(false));
        f(self.data.get())
    }

    // Cell accesses are *scheduled* operations (interleaving points),
    // not just bookkeeping: a non-atomic access that executes between
    // two atomic operations must be preemptible there, or an access
    // slotted right after a release store would share the store's
    // clock tick and look ordered to every acquirer — hiding genuine
    // protocol bugs (e.g. recycling a slot before reading it out).

    fn record_read(&self, label: &'static str) {
        rt::atomic_op(label, |ctx| {
            let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if !st.written {
                ctx.fail(format!("{label}: read of never-written UnsafeCell"));
            }
            if !st.write.le(ctx.clock_ref()) {
                ctx.fail(format!(
                    "data race: {label} not ordered after the last write \
                     (missing release/acquire edge)"
                ));
            }
            let clock = *ctx.clock_ref();
            st.reads.join(&clock);
        });
    }

    fn record_write(&self, label: &'static str, becomes_occupied: Option<bool>) {
        rt::atomic_op(label, |ctx| {
            let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if !st.write.le(ctx.clock_ref()) {
                ctx.fail(format!(
                    "data race: {label} not ordered after the last write \
                     (missing release/acquire edge)"
                ));
            }
            if !st.reads.le(ctx.clock_ref()) {
                ctx.fail(format!(
                    "data race: {label} not ordered after a previous read \
                     (missing release/acquire edge)"
                ));
            }
            match becomes_occupied {
                Some(true) => {
                    if st.occupied {
                        ctx.fail(
                            "double-init: slot initialized while still holding an \
                             untaken value (leak / lost message)"
                                .to_string(),
                        );
                    }
                    st.occupied = true;
                }
                Some(false) => {
                    if !st.occupied {
                        ctx.fail(
                            "uninitialized read: slot taken while empty \
                             (reads uninitialized memory; double-drop once both copies die)"
                                .to_string(),
                        );
                    }
                    st.occupied = false;
                }
                None => {}
            }
            st.written = true;
            st.write = *ctx.clock_ref();
        });
    }
}

//! The controlled scheduler: one model thread runs at a time, every
//! shim operation is a schedule point, and a strategy (exhaustive DFS
//! with a preemption bound, or seeded random walk) decides who runs
//! next. Model threads are real OS threads gated by a single
//! mutex/condvar pair; handoff is direct thread-to-thread, so steps
//! that stay on the current thread cost no context switch.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

use crate::clock::VClock;

/// Hard cap on threads per execution (vector clocks are fixed-width).
pub const MAX_THREADS: usize = 8;

/// How a blocked thread is waiting; the token is the address of the
/// shim primitive it is parked on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BlockedOn {
    /// Waiting to acquire a model mutex.
    Mutex(usize),
    /// Parked in a model condvar wait.
    Condvar(usize),
    /// Joining another model thread.
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(BlockedOn),
    Finished,
}

struct ThreadState {
    status: Status,
    /// The scheduler granted this thread the right to run.
    granted: bool,
    clock: VClock,
}

/// One recorded schedule decision: which runnable thread ran, out of
/// which alternatives (the DFS backtracks over `alts`).
#[derive(Clone)]
struct Choice {
    alts: Vec<usize>,
    taken: usize,
}

/// Exploration strategy shared by all schedule points of one run.
enum Mode {
    /// Exhaustive depth-first search over schedules (bounded).
    Dfs,
    /// Seeded pseudo-random walk (shuttle-style), one seed per
    /// execution for reproducibility.
    Random(XorShift),
}

pub(crate) struct Strategy {
    mode: Mode,
    path: Vec<Choice>,
    cursor: usize,
}

impl Strategy {
    fn decide(&mut self, alts: &[usize]) -> usize {
        debug_assert!(!alts.is_empty());
        match &mut self.mode {
            Mode::Dfs => {
                let taken = if self.cursor < self.path.len() {
                    let choice = &self.path[self.cursor];
                    assert_eq!(
                        choice.alts, alts,
                        "model closure is non-deterministic: schedule replay diverged \
                         (model code must not read wall-clock time or OS randomness)"
                    );
                    choice.taken
                } else {
                    self.path.push(Choice { alts: alts.to_vec(), taken: 0 });
                    0
                };
                self.cursor += 1;
                self.path[self.cursor - 1].alts[taken]
            }
            Mode::Random(rng) => alts[(rng.next() % alts.len() as u64) as usize],
        }
    }

    /// Advance the DFS to the next unexplored schedule; `false` when
    /// the space is exhausted.
    fn backtrack(&mut self) -> bool {
        self.cursor = 0;
        while let Some(mut last) = self.path.pop() {
            if last.taken + 1 < last.alts.len() {
                last.taken += 1;
                self.path.push(last);
                return true;
            }
        }
        false
    }
}

/// Tiny deterministic PRNG for the random-walk strategy.
pub(crate) struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        // Avoid the all-zero fixed point.
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// What went wrong in a failing execution, plus the schedule that got
/// there.
struct Failure {
    message: String,
    trace: String,
}

struct ExecInner {
    threads: Vec<ThreadState>,
    strategy: Strategy,
    /// Clock accumulated by SeqCst fences (all fence flavors are
    /// modeled at SeqCst strength; see the crate docs for limits).
    fence_clock: VClock,
    steps: usize,
    preemptions: usize,
    consecutive: usize,
    trace: Vec<(usize, &'static str)>,
    failure: Option<Failure>,
}

pub(crate) struct Execution {
    inner: Mutex<ExecInner>,
    cv: Condvar,
    cfg: Config,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

#[derive(Clone, Copy)]
pub(crate) struct Config {
    pub(crate) preemption_bound: usize,
    pub(crate) max_steps: usize,
    /// Livelock guard: a thread that takes this many steps in a row
    /// while others are runnable is forced to yield (the forced switch
    /// does not count against the preemption bound).
    pub(crate) run_cap: usize,
}

/// Panic payload used to unwind model threads when an execution is torn
/// down (failure elsewhere); swallowed by the thread wrapper.
struct Teardown;

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> (Arc<Execution>, usize) {
    CTX.with(|c| {
        c.borrow().clone().expect(
            "modelcheck shim used outside a model run: wrap the test body in \
             modelcheck::check / check_random",
        )
    })
}

/// Context handed to shim operations while the execution lock is held.
pub(crate) struct OpCtx<'a> {
    pub(crate) tid: usize,
    /// Set when the calling thread is already unwinding (teardown or
    /// assertion failure): record outcomes, never panic again.
    quiet: bool,
    inner: &'a mut ExecInner,
}

impl OpCtx<'_> {
    pub(crate) fn clock(&mut self) -> &mut VClock {
        &mut self.inner.threads[self.tid].clock
    }

    pub(crate) fn clock_ref(&self) -> &VClock {
        &self.inner.threads[self.tid].clock
    }

    pub(crate) fn fence_acquire(&mut self) {
        let fence = self.inner.fence_clock;
        self.inner.threads[self.tid].clock.join(&fence);
    }

    pub(crate) fn fence_release(&mut self) {
        let clock = self.inner.threads[self.tid].clock;
        self.inner.fence_clock.join(&clock);
    }

    pub(crate) fn wake_all(&mut self, reason: BlockedOn) {
        Execution::wake(self.inner, reason);
    }

    pub(crate) fn wake_one(&mut self, reason: BlockedOn) {
        Execution::wake_one(self.inner, reason);
    }

    /// Report a model failure (data race, uninitialized read, …) at the
    /// current operation; unwinds the calling thread. In quiet mode
    /// (drops running while the thread is already unwinding) nothing is
    /// recorded and nothing unwinds: the execution already failed for
    /// its original reason, and unwind-path accesses happen outside the
    /// schedule, so checking them would only produce noise that masks
    /// the real message.
    pub(crate) fn fail(&mut self, message: String) {
        if self.quiet {
            return;
        }
        fail_locked(self.inner, message);
        resume_unwind(Box::new(Teardown));
    }
}

/// Lock the execution state, shrugging off poison: a panicking model
/// thread is an *expected* event (that is how failures and teardowns
/// propagate), and all state mutation is scheduler-serialized anyway.
fn lock_inner(exec: &Execution) -> std::sync::MutexGuard<'_, ExecInner> {
    exec.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn fail_locked(inner: &mut ExecInner, message: String) {
    if inner.failure.is_none() {
        inner.failure = Some(Failure { message, trace: render_trace(inner) });
    }
}

fn render_trace(inner: &ExecInner) -> String {
    let mut out = String::new();
    let skip = inner.trace.len().saturating_sub(60);
    if skip > 0 {
        out.push_str(&format!("  … {skip} earlier steps elided\n"));
    }
    for (tid, label) in &inner.trace[skip..] {
        out.push_str(&format!("  t{tid}: {label}\n"));
    }
    for (tid, t) in inner.threads.iter().enumerate() {
        out.push_str(&format!("  t{tid} status: {:?}\n", t.status));
    }
    out
}

impl Execution {
    /// The scheduling core. Runs on the *current* thread at every shim
    /// operation: record the step, pick who runs next, hand off if it
    /// is somebody else, and (once re-granted) tick the clock.
    ///
    /// `block` parks the current thread on the given reason before
    /// choosing; the thread resumes only after a wake + grant.
    fn schedule(self: &Arc<Self>, tid: usize, label: &'static str, block: Option<BlockedOn>) {
        let mut inner = lock_inner(self);
        if inner.failure.is_some() {
            drop(inner);
            resume_unwind(Box::new(Teardown));
        }
        inner.trace.push((tid, label));
        inner.steps += 1;
        if inner.steps > self.cfg.max_steps {
            fail_locked(
                &mut inner,
                format!(
                    "step bound exceeded ({} steps): livelock, or raise Model::max_steps",
                    self.cfg.max_steps
                ),
            );
            self.cv.notify_all();
            drop(inner);
            resume_unwind(Box::new(Teardown));
        }
        if let Some(reason) = block {
            inner.threads[tid].status = Status::Blocked(reason);
            inner.threads[tid].granted = false;
        }
        let can_continue = block.is_none();
        self.handoff(&mut inner, tid, can_continue);
        if block.is_some() {
            // Parked: wait for a wake (status back to Runnable) plus a
            // scheduling grant.
            loop {
                let me = &inner.threads[tid];
                if inner.failure.is_some() {
                    drop(inner);
                    resume_unwind(Box::new(Teardown));
                }
                if me.status == Status::Runnable && me.granted {
                    break;
                }
                inner = self.cv.wait(inner).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        } else if !inner.threads[tid].granted {
            // Preempted: wait until granted again.
            loop {
                if inner.failure.is_some() {
                    drop(inner);
                    resume_unwind(Box::new(Teardown));
                }
                if inner.threads[tid].granted {
                    break;
                }
                inner = self.cv.wait(inner).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        inner.threads[tid].clock.tick(tid);
    }

    /// Choose the next thread to run and grant it. Called with the
    /// lock held, from the thread that currently holds the floor.
    fn handoff(self: &Arc<Self>, inner: &mut ExecInner, tid: usize, can_continue: bool) {
        let runnable: Vec<usize> = inner
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(id, _)| id)
            .collect();
        if runnable.is_empty() {
            let unfinished = inner.threads.iter().any(|t| t.status != Status::Finished);
            if unfinished {
                fail_locked(
                    inner,
                    "deadlock: every unfinished thread is blocked \
                     (lost wakeup, lock cycle, or a join cycle)"
                        .to_string(),
                );
            }
            // All finished (or failure recorded): wake the driver.
            self.cv.notify_all();
            return;
        }

        let self_runnable = can_continue && runnable.contains(&tid);
        let forced_yield =
            self_runnable && runnable.len() > 1 && inner.consecutive >= self.cfg.run_cap;
        let mut alts: Vec<usize>;
        if self_runnable && !forced_yield && inner.preemptions >= self.cfg.preemption_bound {
            // Preemption budget spent: keep running the current thread.
            alts = vec![tid];
        } else {
            // Deterministic order: current thread first (depth-first
            // explores the no-switch schedule before any preemption),
            // then ascending thread id.
            alts = runnable.clone();
            alts.sort_unstable();
            if self_runnable {
                alts.retain(|&t| t != tid);
                if forced_yield {
                    // Livelock guard: current thread may not continue.
                } else {
                    alts.insert(0, tid);
                }
            }
        }
        let chosen = inner.strategy.decide(&alts);
        if chosen != tid {
            if self_runnable && !forced_yield {
                inner.preemptions += 1;
            }
            inner.consecutive = 0;
            inner.threads[tid].granted = false;
            inner.threads[chosen].granted = true;
            self.cv.notify_all();
        } else {
            inner.consecutive += 1;
        }
    }

    /// Wake every thread blocked on `reason` (they become runnable but
    /// still need a grant to run).
    fn wake(inner: &mut ExecInner, reason: BlockedOn) {
        for t in &mut inner.threads {
            if t.status == Status::Blocked(reason) {
                t.status = Status::Runnable;
            }
        }
    }

    /// Wake the lowest-id thread blocked on `reason`; returns whether
    /// one was waiting.
    fn wake_one(inner: &mut ExecInner, reason: BlockedOn) -> bool {
        for t in &mut inner.threads {
            if t.status == Status::Blocked(reason) {
                t.status = Status::Runnable;
                return true;
            }
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Shim entry points (free functions so the sync/cell/thread modules
// stay thin).
// ---------------------------------------------------------------------------

/// A scheduled operation: yields to the scheduler, then runs `op` with
/// the execution lock held (clock access + failure reporting).
///
/// When the calling thread is already unwinding (destructors running
/// during a failure teardown), the operation is applied *quietly*: no
/// schedule point, no new failure reports — panicking again there would
/// abort the whole process.
pub(crate) fn atomic_op<R>(label: &'static str, op: impl FnOnce(&mut OpCtx<'_>) -> R) -> R {
    let (exec, tid) = ctx();
    if std::thread::panicking() {
        let mut inner = lock_inner(&exec);
        return op(&mut OpCtx { tid, quiet: true, inner: &mut inner });
    }
    exec.schedule(tid, label, None);
    let mut inner = lock_inner(&exec);
    let result = op(&mut OpCtx { tid, quiet: false, inner: &mut inner });
    drop(inner);
    result
}

/// A blocking operation: repeatedly runs `attempt` at schedule points;
/// whenever it returns `Err(reason)` the thread parks on `reason` and
/// retries after being woken.
pub(crate) fn blocking_op<R>(
    label: &'static str,
    mut attempt: impl FnMut(&mut OpCtx<'_>) -> Result<R, BlockedOn>,
) -> R {
    let (exec, tid) = ctx();
    if std::thread::panicking() {
        // Unwind path: never park (the scheduler is tearing down).
        // Every shim drop in this workspace is non-blocking, so the
        // retry loop is a formality; notify so parked owners observe
        // the teardown and release whatever we are waiting on.
        loop {
            let mut inner = lock_inner(&exec);
            let outcome = attempt(&mut OpCtx { tid, quiet: true, inner: &mut inner });
            drop(inner);
            match outcome {
                Ok(result) => return result,
                Err(_) => {
                    exec.cv.notify_all();
                    std::thread::yield_now();
                }
            }
        }
    }
    exec.schedule(tid, label, None);
    loop {
        let mut inner = lock_inner(&exec);
        let outcome = attempt(&mut OpCtx { tid, quiet: false, inner: &mut inner });
        drop(inner);
        match outcome {
            Ok(result) => return result,
            Err(reason) => exec.schedule(tid, label, Some(reason)),
        }
    }
}

/// A plain yield (e.g. `thread::yield_now` under the model): a schedule
/// point with no memory effect.
pub(crate) fn yield_point() {
    if std::thread::panicking() {
        return;
    }
    let (exec, tid) = ctx();
    exec.schedule(tid, "yield", None);
}

/// Spawn a model thread running `f`; returns its thread id.
pub(crate) fn spawn_model(f: Box<dyn FnOnce() + Send + 'static>) -> usize {
    let (exec, tid) = ctx();
    exec.schedule(tid, "thread::spawn", None);
    let mut inner = lock_inner(&exec);
    let child = inner.threads.len();
    assert!(
        child < MAX_THREADS,
        "model exceeds MAX_THREADS ({MAX_THREADS}) concurrent threads per execution"
    );
    // Spawn edge: the child starts with (and therefore happens-after)
    // the parent's clock.
    let mut clock = inner.threads[tid].clock;
    clock.tick(child);
    inner.threads.push(ThreadState { status: Status::Runnable, granted: false, clock });
    drop(inner);
    let handle = spawn_wrapped(Arc::clone(&exec), child, f);
    exec.handles.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(handle);
    child
}

/// Block until model thread `target` finishes, then acquire its final
/// clock (join edge).
pub(crate) fn join_model(target: usize) {
    blocking_op("thread::join", |ctx| {
        if ctx.inner.threads[target].status == Status::Finished {
            let theirs = ctx.inner.threads[target].clock;
            ctx.clock().join(&theirs);
            Ok(())
        } else {
            Err(BlockedOn::Join(target))
        }
    })
}

fn spawn_wrapped(
    exec: Arc<Execution>,
    tid: usize,
    f: Box<dyn FnOnce() + Send + 'static>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("model-t{tid}"))
        .spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
            // Wait for the first grant before running a single user op;
            // if the execution already failed, never run the body.
            let failed_early = {
                let mut inner = lock_inner(&exec);
                loop {
                    if inner.failure.is_some() || inner.threads[tid].granted {
                        break inner.failure.is_some();
                    }
                    inner = exec.cv.wait(inner).unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let outcome = if failed_early { Ok(()) } else { catch_unwind(AssertUnwindSafe(f)) };
            let mut inner = lock_inner(&exec);
            if let Err(payload) = outcome {
                if !payload.is::<Teardown>() {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                        .unwrap_or_else(|| "model thread panicked".to_string());
                    fail_locked(&mut inner, format!("panic in model thread t{tid}: {msg}"));
                }
            }
            inner.threads[tid].status = Status::Finished;
            inner.threads[tid].granted = false;
            Execution::wake(&mut inner, BlockedOn::Join(tid));
            // Hand the floor to somebody (or detect deadlock / finish).
            exec.handoff(&mut inner, tid, false);
            exec.cv.notify_all();
            drop(inner);
            CTX.with(|c| *c.borrow_mut() = None);
        })
        .expect("failed to spawn model thread")
}

// ---------------------------------------------------------------------------
// The public driver.
// ---------------------------------------------------------------------------

/// Bounds for a model-checking run. `Default` reads
/// `ANOMEX_MODEL_EXECUTIONS` (an integer) to scale the execution budget
/// up or down without recompiling.
#[derive(Clone, Copy, Debug)]
pub struct Model {
    /// CHESS-style preemption bound per execution: schedules with more
    /// involuntary context switches than this are not explored.
    pub preemption_bound: usize,
    /// DFS stops (reporting `complete: false`) after this many
    /// executions; random mode runs exactly this many.
    pub max_executions: usize,
    /// Per-execution step bound (livelock backstop).
    pub max_steps: usize,
}

impl Default for Model {
    fn default() -> Model {
        let max_executions = std::env::var("ANOMEX_MODEL_EXECUTIONS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(4096);
        Model { preemption_bound: 2, max_executions, max_steps: 20_000 }
    }
}

/// Outcome of a (non-failing) model run.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Executions (distinct schedules) actually run.
    pub executions: usize,
    /// Whether the DFS exhausted the bounded schedule space (`true`),
    /// or stopped at `max_executions` (`false`). Random runs report
    /// `false` (sampling never proves exhaustion).
    pub complete: bool,
}

impl Model {
    /// Exhaustive bounded DFS over schedules of `f`.
    ///
    /// # Panics
    /// Panics with the failing schedule trace on data race, deadlock,
    /// uninitialized read, double-init, step-bound livelock, or a panic
    /// (e.g. failed assertion) inside `f`.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut strategy = Strategy { mode: Mode::Dfs, path: Vec::new(), cursor: 0 };
        let mut executions = 0;
        loop {
            executions += 1;
            let (next, failure) = self.run_once(Arc::clone(&f), strategy);
            strategy = next;
            if let Some(failure) = failure {
                panic!(
                    "modelcheck failure (execution {executions}, DFS): {}\nschedule:\n{}",
                    failure.message, failure.trace
                );
            }
            if !strategy.backtrack() {
                return Report { executions, complete: true };
            }
            if executions >= self.max_executions {
                return Report { executions, complete: false };
            }
        }
    }

    /// Seeded random-walk exploration (shuttle-style): `max_executions`
    /// schedules drawn from `seed`. Failures report the per-execution
    /// seed so a failing schedule can be replayed alone.
    ///
    /// # Panics
    /// Same failure modes as [`Model::check`].
    pub fn check_random<F>(&self, seed: u64, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        for i in 0..self.max_executions {
            let exec_seed = seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let strategy = Strategy {
                mode: Mode::Random(XorShift::new(exec_seed)),
                path: Vec::new(),
                cursor: 0,
            };
            let (_, failure) = self.run_once(Arc::clone(&f), strategy);
            if let Some(failure) = failure {
                panic!(
                    "modelcheck failure (random execution {i}, seed {exec_seed:#x}): {}\n\
                     schedule:\n{}",
                    failure.message, failure.trace
                );
            }
        }
        Report { executions: self.max_executions, complete: false }
    }

    fn run_once(
        &self,
        f: Arc<dyn Fn() + Send + Sync>,
        strategy: Strategy,
    ) -> (Strategy, Option<Failure>) {
        let cfg = Config {
            preemption_bound: self.preemption_bound,
            max_steps: self.max_steps,
            run_cap: 64,
        };
        let exec = Arc::new(Execution {
            inner: Mutex::new(ExecInner {
                threads: vec![ThreadState {
                    status: Status::Runnable,
                    granted: true,
                    clock: {
                        let mut c = VClock::new();
                        c.tick(0);
                        c
                    },
                }],
                strategy,
                fence_clock: VClock::new(),
                steps: 0,
                preemptions: 0,
                consecutive: 0,
                trace: Vec::new(),
                failure: None,
            }),
            cv: Condvar::new(),
            cfg,
            handles: Mutex::new(Vec::new()),
        });
        let root = spawn_wrapped(Arc::clone(&exec), 0, Box::new(move || f()));
        exec.handles.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(root);
        // Drive: wait until every registered thread finished. (On
        // failure the teardown unwind finishes them all.)
        {
            let mut inner = lock_inner(&exec);
            loop {
                let all_done = inner.threads.iter().all(|t| t.status == Status::Finished);
                if all_done {
                    break;
                }
                if inner.failure.is_some() {
                    // Wake everything so parked threads observe the
                    // failure and unwind.
                    exec.cv.notify_all();
                }
                inner = exec.cv.wait(inner).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        let handles = std::mem::take(
            &mut *exec.handles.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for h in handles {
            let _ = h.join();
        }
        let mut inner = lock_inner(&exec);
        let failure = inner.failure.take();
        let strategy = Strategy {
            mode: std::mem::replace(&mut inner.strategy.mode, Mode::Dfs),
            path: std::mem::take(&mut inner.strategy.path),
            cursor: 0,
        };
        (strategy, failure)
    }
}

/// [`Model::check`] with default bounds.
pub fn check<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Model::default().check(f)
}

/// [`Model::check_random`] with default bounds and `executions`
/// schedules.
pub fn check_random<F>(seed: u64, executions: usize, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Model { max_executions: executions, ..Model::default() }.check_random(seed, f)
}

//! Instrumented drop-ins for `std::sync` primitives. Every operation
//! is a schedule point; acquire/release orderings drive the
//! vector-clock happens-before relation used by the race detector.
//!
//! Execution itself is sequentially consistent (the scheduler
//! interleaves whole operations); *declared* orderings still matter
//! because they decide which operations synchronize-with which — a
//! too-weak ordering severs a happens-before edge and surfaces as a
//! reported data race on the non-atomic data it was protecting.

use std::sync::{LockResult, Mutex as StdMutex, PoisonError};

pub use std::sync::atomic::Ordering;

use crate::clock::VClock;
use crate::rt::{self, BlockedOn, OpCtx};

/// Lock a per-primitive state mutex, shrugging off poison: model
/// failures unwind while these are held, and all access is
/// scheduler-serialized anyway.
fn lock_state<T>(m: &StdMutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn acquires(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releases(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Shared implementation of the integer atomics.
#[derive(Debug)]
struct AtomicState {
    value: u64,
    /// Join of the release clocks of every store in the current
    /// release sequence (RMWs join; plain stores replace).
    sync: VClock,
}

#[derive(Debug)]
struct AtomicCell {
    state: StdMutex<AtomicState>,
}

impl AtomicCell {
    const fn new(value: u64) -> AtomicCell {
        AtomicCell { state: StdMutex::new(AtomicState { value, sync: VClock::new() }) }
    }

    fn load(&self, label: &'static str, ord: Ordering) -> u64 {
        rt::atomic_op(label, |ctx| self.load_locked(ctx, ord))
    }

    // NOTE on SeqCst: atomic *operations* at SeqCst are modeled with
    // acquire/release strength on their own location only — they do NOT
    // touch the global fence clock (only an explicit `fence()` does).
    // Coupling every SeqCst op to a global clock would fabricate
    // happens-before edges the C++ model does not promise (SeqCst gives
    // a total order, not release semantics toward unrelated locations),
    // and those spurious edges would mask exactly the severed-edge bugs
    // the negative tests must catch.

    fn load_locked(&self, ctx: &mut OpCtx<'_>, ord: Ordering) -> u64 {
        let st = lock_state(&self.state);
        if acquires(ord) {
            ctx.clock().join(&st.sync);
        }
        st.value
    }

    fn store(&self, label: &'static str, value: u64, ord: Ordering) {
        rt::atomic_op(label, |ctx| {
            let mut st = lock_state(&self.state);
            st.value = value;
            // A plain store starts a fresh release sequence: it carries
            // the writer's clock if releasing, nothing otherwise.
            st.sync = if releases(ord) { *ctx.clock_ref() } else { VClock::new() };
        });
    }

    fn rmw(&self, label: &'static str, ord: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
        rt::atomic_op(label, |ctx| {
            let mut st = lock_state(&self.state);
            let old = st.value;
            st.value = f(old);
            if acquires(ord) {
                ctx.clock().join(&st.sync);
            }
            if releases(ord) {
                // RMWs continue the release sequence: join, don't
                // replace.
                let clock = *ctx.clock_ref();
                st.sync.join(&clock);
            }
            old
        })
    }

    fn compare_exchange(
        &self,
        label: &'static str,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        rt::atomic_op(label, |ctx| {
            let mut st = lock_state(&self.state);
            if st.value == current {
                st.value = new;
                if acquires(success) {
                    ctx.clock().join(&st.sync);
                }
                if releases(success) {
                    let clock = *ctx.clock_ref();
                    st.sync.join(&clock);
                }
                Ok(current)
            } else {
                if acquires(failure) {
                    ctx.clock().join(&st.sync);
                }
                Err(st.value)
            }
        })
    }
}

macro_rules! int_atomic {
    ($name:ident, $int:ty) => {
        /// Instrumented drop-in for the matching `std::sync::atomic`
        /// type (subset: the operations this workspace uses).
        #[derive(Debug)]
        pub struct $name {
            cell: AtomicCell,
        }

        impl $name {
            pub const fn new(value: $int) -> $name {
                $name { cell: AtomicCell::new(value as u64) }
            }

            pub fn load(&self, ord: Ordering) -> $int {
                self.cell.load(concat!(stringify!($name), "::load"), ord) as $int
            }

            pub fn store(&self, value: $int, ord: Ordering) {
                self.cell.store(concat!(stringify!($name), "::store"), value as u64, ord);
            }

            pub fn fetch_add(&self, value: $int, ord: Ordering) -> $int {
                self.cell.rmw(concat!(stringify!($name), "::fetch_add"), ord, |v| {
                    (v as $int).wrapping_add(value) as u64
                }) as $int
            }

            pub fn fetch_sub(&self, value: $int, ord: Ordering) -> $int {
                self.cell.rmw(concat!(stringify!($name), "::fetch_sub"), ord, |v| {
                    (v as $int).wrapping_sub(value) as u64
                }) as $int
            }

            pub fn fetch_and(&self, value: $int, ord: Ordering) -> $int {
                self.cell.rmw(concat!(stringify!($name), "::fetch_and"), ord, |v| {
                    ((v as $int) & value) as u64
                }) as $int
            }

            pub fn fetch_or(&self, value: $int, ord: Ordering) -> $int {
                self.cell.rmw(concat!(stringify!($name), "::fetch_or"), ord, |v| {
                    ((v as $int) | value) as u64
                }) as $int
            }

            pub fn fetch_max(&self, value: $int, ord: Ordering) -> $int {
                self.cell.rmw(concat!(stringify!($name), "::fetch_max"), ord, |v| {
                    (v as $int).max(value) as u64
                }) as $int
            }

            pub fn compare_exchange(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                self.cell
                    .compare_exchange(
                        concat!(stringify!($name), "::compare_exchange"),
                        current as u64,
                        new as u64,
                        success,
                        failure,
                    )
                    .map(|v| v as $int)
                    .map_err(|v| v as $int)
            }

            /// Modeled as the strong variant: the model does not inject
            /// spurious failures (documented divergence from hardware;
            /// retry loops are exercised by genuine CAS contention).
            pub fn compare_exchange_weak(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                self.compare_exchange(current, new, success, failure)
            }
        }
    };
}

int_atomic!(AtomicU64, u64);
int_atomic!(AtomicUsize, usize);

/// Instrumented `std::sync::atomic::fence`. All flavors are modeled at
/// SeqCst strength (the workspace only issues SeqCst fences); the
/// global fence clock both publishes and acquires.
pub fn fence(ord: Ordering) {
    rt::atomic_op("fence", |ctx| {
        if acquires(ord) {
            ctx.fence_acquire();
        }
        if releases(ord) {
            ctx.fence_release();
        }
    });
}

/// Instrumented `std::thread::yield_now`: a pure schedule point.
pub fn thread_yield() {
    rt::yield_point();
}

// ---------------------------------------------------------------------------
// Mutex + Condvar.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct MutexState {
    held_by: Option<usize>,
    sync: VClock,
}

/// Instrumented `std::sync::Mutex`. Lock blocks under the scheduler
/// (contention explores both orders); unlock releases the holder's
/// clock to the next acquirer. Never poisons: a panic inside a model
/// run fails the whole execution instead.
#[derive(Debug)]
pub struct Mutex<T> {
    data: std::cell::UnsafeCell<T>,
    state: StdMutex<MutexState>,
}

// SAFETY: the model scheduler serializes access — `data` is only
// touched through `MutexGuard`, which is handed to exactly one thread
// at a time by the `held_by` protocol below.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above — shared references only yield `&T`/`&mut T` through
// the exclusive guard.
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub const fn new(data: T) -> Mutex<T> {
        Mutex {
            data: std::cell::UnsafeCell::new(data),
            state: StdMutex::new(MutexState { held_by: None, sync: VClock::new() }),
        }
    }

    fn id(&self) -> usize {
        self as *const Mutex<T> as *const () as usize
    }

    /// Acquire the lock, parking under the model scheduler while held
    /// elsewhere.
    ///
    /// # Errors
    /// Never errors (the model does not poison); the `LockResult`
    /// signature matches `std` so call sites stay identical.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let id = self.id();
        rt::blocking_op("Mutex::lock", |ctx| {
            let mut st = lock_state(&self.state);
            if st.held_by.is_none() {
                st.held_by = Some(ctx.tid);
                let sync = st.sync;
                ctx.clock().join(&sync);
                Ok(())
            } else {
                Err(BlockedOn::Mutex(id))
            }
        });
        Ok(MutexGuard { mutex: self })
    }
}

/// Exclusive access token returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: this guard is the exclusive holder (model mutex
        // protocol); no other thread can touch `data` until drop.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — exclusive holder until drop.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let id = self.mutex.id();
        rt::atomic_op("Mutex::unlock", |ctx| {
            let mut st = lock_state(&self.mutex.state);
            debug_assert_eq!(st.held_by, Some(ctx.tid), "unlock by non-holder");
            st.held_by = None;
            st.sync = *ctx.clock_ref();
            drop(st);
            ctx.wake_all(BlockedOn::Mutex(id));
        });
    }
}

/// Instrumented `std::sync::Condvar`. No spurious wakeups: a waiter
/// runs again only after a notify — which is exactly what makes lost
/// wakeups observable as modeled deadlocks.
#[derive(Debug, Default)]
pub struct Condvar {
    _private: (),
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar { _private: () }
    }

    fn id(&self) -> usize {
        self as *const Condvar as *const () as usize
    }

    /// Release the guard's mutex, park until notified, re-acquire.
    ///
    /// # Errors
    /// Never errors; `LockResult` keeps call sites `std`-identical.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let mutex = guard.mutex;
        let cv_id = self.id();
        let mutex_id = mutex.id();
        // Consume the guard without running its unlock-op Drop: the
        // unlock below must be fused with the park (atomic release+wait,
        // no missed-notify window).
        std::mem::forget(guard);
        let mut parked = false;
        rt::blocking_op("Condvar::wait", |ctx| {
            let mut st = lock_state(&mutex.state);
            if !parked {
                // First entry: release the mutex and park.
                debug_assert_eq!(st.held_by, Some(ctx.tid), "wait with non-held mutex");
                st.held_by = None;
                st.sync = *ctx.clock_ref();
                drop(st);
                ctx.wake_all(BlockedOn::Mutex(mutex_id));
                parked = true;
                Err(BlockedOn::Condvar(cv_id))
            } else if st.held_by.is_none() {
                // Notified: re-acquire the mutex.
                st.held_by = Some(ctx.tid);
                let sync = st.sync;
                ctx.clock().join(&sync);
                Ok(())
            } else {
                Err(BlockedOn::Mutex(mutex_id))
            }
        });
        Ok(MutexGuard { mutex })
    }

    /// Wake every thread parked in [`Condvar::wait`] on this condvar.
    pub fn notify_all(&self) {
        let id = self.id();
        rt::atomic_op("Condvar::notify_all", |ctx| {
            ctx.wake_all(BlockedOn::Condvar(id));
        });
    }

    /// Wake one parked thread (the lowest thread id — deterministic,
    /// documented divergence from the unspecified choice real condvars
    /// make).
    pub fn notify_one(&self) {
        let id = self.id();
        rt::atomic_op("Condvar::notify_one", |ctx| {
            ctx.wake_one(BlockedOn::Condvar(id));
        });
    }
}

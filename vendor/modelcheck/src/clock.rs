//! Vector clocks: the happens-before backbone of the race detector.

use crate::rt::MAX_THREADS;

/// A fixed-width vector clock, one logical-time component per model
/// thread. `a.le(b)` is the happens-before test: every event `a`
/// describes is also covered by `b`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    lamport: [u64; MAX_THREADS],
}

impl VClock {
    /// The zero clock (happens-before everything).
    pub const fn new() -> VClock {
        VClock { lamport: [0; MAX_THREADS] }
    }

    /// Advance this thread's own component by one (each scheduled
    /// operation gets a distinct timestamp).
    pub fn tick(&mut self, tid: usize) {
        self.lamport[tid] += 1;
    }

    /// This thread's own component.
    pub fn own(&self, tid: usize) -> u64 {
        self.lamport[tid]
    }

    /// Component-wise maximum: acquire the knowledge `other` carries.
    pub fn join(&mut self, other: &VClock) {
        for (mine, theirs) in self.lamport.iter_mut().zip(other.lamport.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Happens-before (or equal): every component of `self` is covered
    /// by `other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.lamport.iter().zip(other.lamport.iter()).all(|(mine, theirs)| mine <= theirs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_componentwise_max_and_le_is_coverage() {
        let mut a = VClock::new();
        let mut b = VClock::new();
        a.tick(0);
        a.tick(0);
        b.tick(1);
        assert!(!a.le(&b), "unordered clocks are not le");
        assert!(!b.le(&a));
        b.join(&a);
        assert!(a.le(&b), "after join, b covers a");
        assert_eq!(b.own(0), 2);
        assert_eq!(b.own(1), 1);
    }
}

//! # modelcheck — offline loom/shuttle stand-in
//!
//! Model checking for the workspace's lock-free core (the registry is
//! unreachable, so the real `loom`/`shuttle` crates cannot be added;
//! this is a purpose-built subset). A test body runs many times under a
//! **controlled scheduler**: every atomic operation, lock, park and
//! spawn is a schedule point, and a strategy decides which thread runs
//! next —
//!
//! - [`check`]: exhaustive depth-first search over interleavings with a
//!   CHESS-style **preemption bound** (small models exhaust; larger
//!   ones cover a documented bounded space and report
//!   [`Report::complete`] accordingly), and
//! - [`check_random`]: seeded random-walk exploration (shuttle-style)
//!   for models whose bounded DFS space is still too large.
//!
//! What it detects:
//!
//! - **Data races** — vector-clock happens-before tracking, driven by
//!   the *declared* `Ordering`s (ThreadSanitizer-style). Execution is
//!   sequentially consistent, but a store downgraded from `Release` to
//!   `Relaxed` severs the synchronizes-with edge and any dependent
//!   [`cell::UnsafeCell`] access is reported as a race — which is
//!   exactly how the stamp-ordering negative test catches a weakened
//!   Vyukov ring.
//! - **Deadlocks and lost wakeups** — the model [`sync::Condvar`] has
//!   no spurious wakeups, so a notify that can be missed in some
//!   interleaving leaves every thread blocked: reported with the full
//!   schedule trace.
//! - **Slot-protocol violations** — [`cell::UnsafeCell::init`] /
//!   [`cell::UnsafeCell::take`] track `MaybeUninit` slot occupancy:
//!   double-init (leaked value) and take-of-empty (uninitialized read /
//!   double-drop) fail the model.
//!
//! Known limits (documented, deliberate): execution is sequentially
//! consistent, so bugs that *require* a weakly-ordered execution to
//! manifest (rather than a severed happens-before edge) are out of
//! scope — the CI Miri/TSan lanes cover that angle on real code;
//! `compare_exchange_weak` never fails spuriously; `notify_one` wakes
//! the lowest thread id. Model closures must be deterministic (no
//! wall-clock, no OS randomness).

pub mod cell;
pub mod clock;
pub(crate) mod rt;
pub mod sync;
pub mod thread;

pub use rt::{check, check_random, Model, Report, MAX_THREADS};

//! Instrumented `std::thread` subset: spawn and join are scheduler
//! operations (spawn and join edges enter the happens-before relation).

use std::sync::{Arc, Mutex};

use crate::rt;

/// Handle to a spawned model thread; see [`spawn`].
pub struct JoinHandle<T> {
    tid: usize,
    slot: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Block (under the model scheduler) until the thread finishes.
    ///
    /// # Errors
    /// Never returns `Err`: a panic inside a model thread fails the
    /// whole execution before `join` can observe it. The `Result`
    /// signature matches `std` so call sites stay identical.
    pub fn join(self) -> std::thread::Result<T> {
        rt::join_model(self.tid);
        let value = self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            .expect("model thread finished without storing its result");
        Ok(value)
    }
}

/// Spawn a model thread. Panics if the execution already has
/// [`rt::MAX_THREADS`] threads.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let slot = Arc::new(Mutex::new(None));
    let result = Arc::clone(&slot);
    let tid = rt::spawn_model(Box::new(move || {
        let value = f();
        *result.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(value);
    }));
    JoinHandle { tid, slot }
}

/// Instrumented `std::thread::yield_now`: a pure schedule point.
pub fn yield_now() {
    crate::sync::thread_yield();
}

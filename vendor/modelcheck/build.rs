fn main() {
    // `anomex_model` marks "this code is compiled against the modelcheck
    // shims". The crates that swap their `sync` facade (vendor/crossbeam,
    // crates/stream) emit it from their own build scripts when the
    // `model` feature is on; modelcheck emits it unconditionally so the
    // `#[path]`-included copies of channel.rs / watermark.rs in its test
    // crates drop their std-only unit-test modules.
    println!("cargo::rustc-check-cfg=cfg(anomex_model)");
    println!("cargo:rustc-cfg=anomex_model");
}

//! Offline, API-compatible subset of the `bytes` crate.
//!
//! The container image has no route to a crates registry, so the
//! workspace vendors the small slice of `bytes` the flow codecs use:
//! [`Bytes`], [`BytesMut`], and big-endian [`Buf`] / [`BufMut`]
//! accessors. Semantics (panics on short reads, network byte order)
//! match the real crate so it can be swapped back in unchanged.
//!
//! Like the real crate, [`Bytes`] is a view `(start, end)` into a
//! reference-counted allocation: `clone`, `slice` and `advance` are
//! O(1) pointer arithmetic and never copy the payload — the property
//! the NetFlow decode hot path relies on when one ingest packet fans
//! out across shard channels. [`BytesMut::freeze`] is zero-copy too:
//! the written buffer is moved into the shared allocation, so encoding
//! a packet and freezing it never reallocates the payload.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Read access to a contiguous buffer, network byte order.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out, advancing. Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write access to a growable buffer, network byte order.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_slice(&[val]);
        }
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable, reference-counted byte buffer.
///
/// A `(start, end)` view into a shared, reference-counted allocation:
/// cloning, slicing and advancing adjust the view without touching the
/// payload. The backing store is an `Arc<Vec<u8>>` so that
/// [`BytesMut::freeze`] can *move* the written buffer in without
/// copying the payload — matching the real crate's zero-copy freeze.
/// Equality and hashing are over the viewed bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a new buffer (the one unavoidable copy).
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_shared(Arc::new(data.to_vec()))
    }

    fn from_shared(data: Arc<Vec<u8>>) -> Bytes {
        let end = data.len();
        Bytes { data, start: 0, end }
    }

    /// Number of bytes in view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view for `range` of this view; zero-copy, shares the
    /// backing allocation.
    ///
    /// # Panics
    /// Panics when `range` exceeds `len()` or is inverted.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end, "slice range inverted");
        assert!(range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// The viewed bytes as a freshly-allocated vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::from_shared(Arc::new(Vec::new()))
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes::from_shared(Arc::new(data))
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
    }
}

/// A mutable, growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserve space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freeze into an immutable [`Bytes`].
    ///
    /// Zero-copy: the uniquely-owned buffer is **moved** into the
    /// shared allocation (the heap payload keeps its address — no
    /// reallocation, matching the real crate), and every later
    /// clone/slice/advance of the result is zero-copy too.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// The bytes as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&Bytes::copy_from_slice(&self.data), f)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> BytesMut {
        BytesMut { data }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_bytes(0xFF, 3);
        let frozen = buf.freeze();
        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.get_u8(), 0xAB);
        assert_eq!(rd.get_u16(), 0x1234);
        assert_eq!(rd.get_u32(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(rd.remaining(), 3);
        rd.advance(3);
        assert!(!rd.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn short_read_panics() {
        let mut rd: &[u8] = &[1u8];
        let _ = rd.get_u16();
    }

    #[test]
    fn freeze_moves_the_buffer_without_reallocating() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(b"netflow v5 header and records");
        let payload_ptr = buf.as_ref().as_ptr();
        let frozen = buf.freeze();
        assert_eq!(
            frozen.as_ref().as_ptr(),
            payload_ptr,
            "freeze must move the heap payload, not copy it"
        );
        assert_eq!(frozen.as_ref(), b"netflow v5 header and records");
        // Views of the frozen buffer stay on the same allocation too.
        // SAFETY: `payload_ptr` points at the 29-byte payload captured
        // above, so offset 8 is within the same live allocation.
        assert_eq!(frozen.slice(8..10).as_ref().as_ptr(), unsafe { payload_ptr.add(8) });
    }

    #[test]
    fn clone_and_slice_share_the_allocation() {
        let original = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        let cloned = original.clone();
        let sliced = original.slice(1..4);
        assert!(Arc::ptr_eq(&original.data, &cloned.data), "clone must not copy");
        assert!(Arc::ptr_eq(&original.data, &sliced.data), "slice must not copy");
        assert_eq!(sliced.as_ref(), &[2, 3, 4]);
        assert_eq!(sliced.slice(1..2).as_ref(), &[3]);
    }

    #[test]
    fn advance_is_a_view_move() {
        let mut b = Bytes::copy_from_slice(&[9, 8, 7, 6]);
        let backing = Arc::clone(&b.data);
        b.advance(2);
        assert!(Arc::ptr_eq(&backing, &b.data), "advance must not reallocate");
        assert_eq!(b.as_ref(), &[7, 6]);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn equality_and_hash_are_content_based() {
        use std::collections::HashSet;
        let a = Bytes::copy_from_slice(&[1, 2, 3]);
        let b = Bytes::copy_from_slice(&[0, 1, 2, 3, 4]).slice(1..4);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_past_view_panics() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]).slice(1..3);
        let _ = b.slice(0..3);
    }
}

//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the offline
//! serde stand-in.
//!
//! No `syn`/`quote` (the registry is unreachable), so this parses the
//! item's `TokenStream` directly and emits generated impls by
//! formatting source text and re-parsing it. Supported shapes — all
//! the workspace uses: non-generic structs (named, tuple, unit) and
//! enums whose variants are unit, tuple, or struct-like. `#[serde]`
//! attributes are not supported and will be rejected loudly rather
//! than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;
use std::iter::Peekable;

/// Shape of one enum variant.
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Parsed item: its name plus field/variant structure.
enum Item {
    NamedStruct(String, Vec<String>),
    TupleStruct(String, usize),
    UnitStruct(String),
    Enum(String, Vec<(String, Shape)>),
}

type Tokens = Peekable<std::vec::IntoIter<TokenTree>>;

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Skip `#[...]` attribute sequences, rejecting `#[serde(...)]`.
fn skip_attrs(tokens: &mut Tokens) {
    while tokens.peek().map(|t| is_punct(t, '#')).unwrap_or(false) {
        tokens.next();
        if let Some(TokenTree::Group(group)) = tokens.next() {
            let mut inner = group.stream().into_iter();
            if let Some(TokenTree::Ident(head)) = inner.next() {
                if head.to_string() == "serde" {
                    panic!("offline serde_derive does not support #[serde(...)] attributes");
                }
            }
        }
    }
}

/// Skip `pub`, `pub(...)`, etc.
fn skip_visibility(tokens: &mut Tokens) {
    if tokens
        .peek()
        .map(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "pub"))
        .unwrap_or(false)
    {
        tokens.next();
        if tokens
            .peek()
            .map(|t| matches!(t, TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis))
            .unwrap_or(false)
        {
            tokens.next();
        }
    }
}

/// Consume tokens up to a top-level `,` (angle-bracket aware); returns
/// false when the stream ended first.
fn skip_to_comma(tokens: &mut Tokens) -> bool {
    let mut angle_depth = 0i32;
    for tt in tokens.by_ref() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return true,
            _ => {}
        }
    }
    false
}

/// Field names of a `{ ... }` struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut tokens: Tokens = stream.into_iter().collect::<Vec<_>>().into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(name)) => {
                fields.push(name.to_string());
                match tokens.next() {
                    Some(tt) if is_punct(&tt, ':') => {}
                    other => panic!("expected `:` after field name, got {other:?}"),
                }
                if !skip_to_comma(&mut tokens) {
                    break;
                }
            }
            None => break,
            other => panic!("unexpected token in struct body: {other:?}"),
        }
    }
    fields
}

/// Arity of a `( ... )` tuple body.
fn parse_tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth = 0i32;
    for (i, tt) in tokens.iter().enumerate() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p)
                if p.as_char() == ',' && angle_depth == 0 && i + 1 < tokens.len() =>
            {
                arity += 1;
            }
            _ => {}
        }
    }
    arity
}

/// Variants of an `enum { ... }` body.
fn parse_variants(stream: TokenStream) -> Vec<(String, Shape)> {
    let mut tokens: Tokens = stream.into_iter().collect::<Vec<_>>().into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(name)) => name.to_string(),
            None => break,
            other => panic!("unexpected token in enum body: {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = parse_tuple_arity(g.stream());
                tokens.next();
                Shape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        variants.push((name, shape));
        if !skip_to_comma(&mut tokens) {
            break;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens: Tokens = input.into_iter().collect::<Vec<_>>().into_iter().peekable();
    skip_attrs(&mut tokens);
    skip_visibility(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(kw)) => kw.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(name)) => name.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if tokens.peek().map(|t| is_punct(t, '<')).unwrap_or(false) {
        panic!("offline serde_derive does not support generic type `{name}`");
    }
    match (kind.as_str(), tokens.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::NamedStruct(name, parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Item::TupleStruct(name, parse_tuple_arity(g.stream()))
        }
        ("struct", Some(tt)) if is_punct(&tt, ';') => Item::UnitStruct(name),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::Enum(name, parse_variants(g.stream()))
        }
        (kind, other) => panic!("unsupported {kind} body: {other:?}"),
    }
}

/// Derive `Serialize` (value-tree flavor) for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = String::new();
    match &item {
        Item::NamedStruct(name, fields) => {
            let mut body = String::new();
            for field in fields {
                write!(
                    body,
                    "(::std::string::String::from({field:?}), \
                     ::serde::Serialize::to_json_value(&self.{field})),"
                )
                .unwrap();
            }
            write!(
                out,
                "impl ::serde::Serialize for {name} {{ \
                   fn to_json_value(&self) -> ::serde::Value {{ \
                     ::serde::Value::Object(::std::vec![{body}]) \
                   }} \
                 }}"
            )
            .unwrap();
        }
        Item::TupleStruct(name, arity) => {
            let body = match arity {
                0 => "::serde::Value::Null".to_string(),
                1 => "::serde::Serialize::to_json_value(&self.0)".to_string(),
                n => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(","))
                }
            };
            write!(
                out,
                "impl ::serde::Serialize for {name} {{ \
                   fn to_json_value(&self) -> ::serde::Value {{ {body} }} \
                 }}"
            )
            .unwrap();
        }
        Item::UnitStruct(name) => {
            write!(
                out,
                "impl ::serde::Serialize for {name} {{ \
                   fn to_json_value(&self) -> ::serde::Value {{ ::serde::Value::Null }} \
                 }}"
            )
            .unwrap();
        }
        Item::Enum(name, variants) => {
            let mut arms = String::new();
            for (variant, shape) in variants {
                match shape {
                    Shape::Unit => write!(
                        arms,
                        "{name}::{variant} => ::serde::Value::Str(\
                           ::std::string::String::from({variant:?})),"
                    )
                    .unwrap(),
                    Shape::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_json_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(","))
                        };
                        write!(
                            arms,
                            "{name}::{variant}({binds}) => ::serde::Value::Object(::std::vec![(\
                               ::std::string::String::from({variant:?}), {inner})]),",
                            binds = binders.join(",")
                        )
                        .unwrap();
                    }
                    Shape::Named(fields) => {
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_json_value({f}))"
                                )
                            })
                            .collect();
                        write!(
                            arms,
                            "{name}::{variant} {{ {binds} }} => \
                               ::serde::Value::Object(::std::vec![(\
                               ::std::string::String::from({variant:?}), \
                               ::serde::Value::Object(::std::vec![{pairs}]))]),",
                            binds = fields.join(","),
                            pairs = pairs.join(",")
                        )
                        .unwrap();
                    }
                }
            }
            write!(
                out,
                "impl ::serde::Serialize for {name} {{ \
                   fn to_json_value(&self) -> ::serde::Value {{ \
                     match self {{ {arms} }} \
                   }} \
                 }}"
            )
            .unwrap();
        }
    }
    out.parse().expect("serde_derive generated invalid Serialize impl")
}

/// Derive `Deserialize` (value-tree flavor) for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = String::new();
    match &item {
        Item::NamedStruct(name, fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_json_value(\
                         ::serde::Value::field(fields, {f:?}))?"
                    )
                })
                .collect();
            write!(
                out,
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_json_value(value: &::serde::Value) \
                       -> ::std::result::Result<Self, ::serde::Error> {{ \
                     let fields = value.as_object().ok_or_else(|| \
                       ::serde::Error::custom(concat!(\"expected object for \", {name:?})))?; \
                     ::std::result::Result::Ok({name} {{ {inits} }}) \
                   }} \
                 }}",
                inits = inits.join(",")
            )
            .unwrap();
        }
        Item::TupleStruct(name, arity) => {
            let body = match arity {
                0 => format!("::std::result::Result::Ok({name})"),
                1 => format!(
                    "::std::result::Result::Ok({name}(\
                     ::serde::Deserialize::from_json_value(value)?))"
                ),
                n => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_json_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "let items = value.as_array().ok_or_else(|| \
                           ::serde::Error::custom(concat!(\"expected array for \", {name:?})))?; \
                         if items.len() != {n} {{ \
                           return ::std::result::Result::Err(::serde::Error::custom(\
                             concat!(\"wrong arity for \", {name:?}))); \
                         }} \
                         ::std::result::Result::Ok({name}({elems}))",
                        elems = elems.join(",")
                    )
                }
            };
            write!(
                out,
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_json_value(value: &::serde::Value) \
                       -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
                 }}"
            )
            .unwrap();
        }
        Item::UnitStruct(name) => {
            write!(
                out,
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_json_value(_value: &::serde::Value) \
                       -> ::std::result::Result<Self, ::serde::Error> {{ \
                     ::std::result::Result::Ok({name}) \
                   }} \
                 }}"
            )
            .unwrap();
        }
        Item::Enum(name, variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (variant, shape) in variants {
                match shape {
                    Shape::Unit => write!(
                        unit_arms,
                        "{variant:?} => ::std::result::Result::Ok({name}::{variant}),"
                    )
                    .unwrap(),
                    Shape::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{variant}(\
                                 ::serde::Deserialize::from_json_value(inner)?))"
                            )
                        } else {
                            let elems: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_json_value(&items[{i}])?")
                                })
                                .collect();
                            format!(
                                "let items = inner.as_array().ok_or_else(|| \
                                   ::serde::Error::custom(concat!(\"expected array for \", \
                                   {name:?}, \"::\", {variant:?})))?; \
                                 if items.len() != {arity} {{ \
                                   return ::std::result::Result::Err(::serde::Error::custom(\
                                     concat!(\"wrong arity for \", {name:?}, \"::\", \
                                     {variant:?}))); \
                                 }} \
                                 ::std::result::Result::Ok({name}::{variant}({elems}))",
                                elems = elems.join(",")
                            )
                        };
                        write!(data_arms, "{variant:?} => {{ {body} }},").unwrap();
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_json_value(\
                                     ::serde::Value::field(vfields, {f:?}))?"
                                )
                            })
                            .collect();
                        write!(
                            data_arms,
                            "{variant:?} => {{ \
                               let vfields = inner.as_object().ok_or_else(|| \
                                 ::serde::Error::custom(concat!(\"expected object for \", \
                                 {name:?}, \"::\", {variant:?})))?; \
                               ::std::result::Result::Ok({name}::{variant} {{ {inits} }}) \
                             }},",
                            inits = inits.join(",")
                        )
                        .unwrap();
                    }
                }
            }
            write!(
                out,
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_json_value(value: &::serde::Value) \
                       -> ::std::result::Result<Self, ::serde::Error> {{ \
                     match value {{ \
                       ::serde::Value::Str(tag) => match tag.as_str() {{ \
                         {unit_arms} \
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                           format!(concat!(\"unknown variant {{}} for \", {name:?}), other))), \
                       }}, \
                       ::serde::Value::Object(tagged) if tagged.len() == 1 => {{ \
                         let (tag, inner) = &tagged[0]; \
                         let _ = inner; \
                         match tag.as_str() {{ \
                           {data_arms} \
                           other => ::std::result::Result::Err(::serde::Error::custom(\
                             format!(concat!(\"unknown variant {{}} for \", {name:?}), other))), \
                         }} \
                       }}, \
                       other => ::std::result::Result::Err(::serde::Error::custom(\
                         format!(concat!(\"cannot deserialize \", {name:?}, \" from {{:?}}\"), \
                         other))), \
                     }} \
                   }} \
                 }}"
            )
            .unwrap();
        }
    }
    out.parse().expect("serde_derive generated invalid Deserialize impl")
}

//! Property tests for the traffic generator: distribution sanity,
//! injector invariants and scenario determinism under arbitrary
//! parameters.

use anomex_flow::sampling::Xoshiro256;
use anomex_gen::prelude::*;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = AnomalyKind> {
    prop_oneof![
        Just(AnomalyKind::PortScan),
        Just(AnomalyKind::NetworkScan),
        Just(AnomalyKind::SynFlood),
        Just(AnomalyKind::UdpDdos),
        Just(AnomalyKind::UdpFlood),
        Just(AnomalyKind::IcmpFlood),
        Just(AnomalyKind::AlphaFlow),
        Just(AnomalyKind::StealthyScan),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::profile_cases(48))]

    /// Zipf samples always land in the domain, for any size/exponent.
    #[test]
    fn zipf_in_domain(n in 1usize..2_000, s in 0.0f64..3.0, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let mut rng = Xoshiro256::seeded(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Pareto never emits below its scale parameter.
    #[test]
    fn pareto_floor(xm in 0.1f64..100.0, alpha in 0.2f64..5.0, seed in any::<u64>()) {
        let p = Pareto::new(xm, alpha);
        let mut rng = Xoshiro256::seeded(seed);
        for _ in 0..200 {
            prop_assert!(p.sample(&mut rng) >= xm);
        }
    }

    /// Weighted choice never picks a zero-weight outcome.
    #[test]
    fn weighted_skips_zero(w0 in 0.1f64..10.0, w2 in 0.1f64..10.0, seed in any::<u64>()) {
        let w = WeightedIndex::new(&[w0, 0.0, w2]);
        let mut rng = Xoshiro256::seeded(seed);
        for _ in 0..200 {
            prop_assert_ne!(w.sample(&mut rng), 1);
        }
    }

    /// Every injector respects its window and volume invariants, and its
    /// signature matches every flow it emits.
    #[test]
    fn injectors_sound(
        kind in arb_kind(),
        flows in 2usize..300,
        packets in 10u64..50_000,
        start in 0u64..10_000_000,
        dur in 1_000u64..600_000,
        seed in any::<u64>(),
    ) {
        let mut spec = AnomalySpec::template(
            kind,
            "10.1.2.3".parse().unwrap(),
            "172.16.4.5".parse().unwrap(),
        );
        spec.flows = flows;
        spec.packets = packets;
        spec.start_ms = start;
        spec.duration_ms = dur;
        let out = spec.inject(&mut Xoshiro256::seeded(seed));
        prop_assert!(!out.is_empty());
        let sig = spec.signature();
        for f in &out {
            prop_assert!(f.start_ms >= start && f.start_ms < start + dur);
            prop_assert!(f.end_ms <= start + dur && f.end_ms >= f.start_ms);
            prop_assert!(f.packets >= 1);
            prop_assert!(f.bytes >= 1);
            // Alpha flows: the mirrored ACK flow is labeled but the
            // signature describes the forward direction only.
            if kind == AnomalyKind::AlphaFlow && f.src_ip != spec.attacker {
                continue;
            }
            for item in &sig {
                prop_assert!(item.matches(f), "{item} vs {f}");
            }
        }
    }

    /// Building the same scenario twice yields identical wire traffic;
    /// ground-truth labels always cover exactly the injected flows.
    #[test]
    fn scenario_deterministic_and_labeled(
        seed in any::<u64>(),
        bg in 100usize..800,
        anom in 50usize..400,
        sampling in prop_oneof![Just(1u32), Just(10u32), Just(100u32)],
    ) {
        let mut spec = AnomalySpec::template(
            AnomalyKind::SynFlood,
            "10.2.0.1".parse().unwrap(),
            "172.16.1.1".parse().unwrap(),
        );
        spec.flows = anom;
        let mut scenario = Scenario::new("p", seed, Backbone::Switch)
            .with_anomaly(spec)
            .with_sampling(sampling);
        scenario.background.flows = bg;

        let a = scenario.build();
        let b = scenario.build();
        prop_assert_eq!(&a.wire_flows, &b.wire_flows);
        prop_assert_eq!(a.store.len(), b.store.len());
        prop_assert_eq!(a.truth.anomalies[0].flows, anom);

        // Sampling can only shrink the store.
        prop_assert!(a.store.len() <= a.wire_flows.len());

        // Every observed flow marked anomalous must exist in wire truth.
        let label = &a.truth.anomalies[0];
        for f in a.store.snapshot() {
            if label.contains(&f) {
                prop_assert!(label.keys.contains(&f.key()));
            }
        }
    }

    /// Background generation respects its window and emits ≥ requested flows.
    #[test]
    fn background_sound(
        seed in any::<u64>(),
        flows in 50usize..1_500,
        start in 0u64..1_000_000,
        dur in 10_000u64..900_000,
    ) {
        let config = BackgroundConfig { start_ms: start, duration_ms: dur, flows, ..BackgroundConfig::default() };
        let mut rng = Xoshiro256::seeded(seed);
        let out = generate_background(&config, &Topology::switch(), &mut rng);
        prop_assert!(out.len() >= flows);
        for f in &out {
            prop_assert!(f.start_ms >= start && f.end_ms <= start + dur);
        }
    }
}

//! # anomex-gen
//!
//! Seeded synthetic backbone traffic with labeled anomaly injection — the
//! stand-in for the proprietary GEANT and SWITCH NetFlow traces of the
//! paper's evaluation (see DESIGN.md §2 for the substitution argument).
//!
//! - [`dist`] — hand-rolled Zipf / Pareto / log-normal / Poisson /
//!   exponential samplers on the workspace PRNG.
//! - [`topology`] — the 18-PoP GEANT-like and 4-PoP SWITCH-like backbones.
//! - [`background`] — benign traffic with realistic joint-frequency
//!   structure (skewed hosts, concentrated ports, heavy-tailed volumes).
//! - [`anomaly`] — injectors for every anomaly class in the paper's
//!   corpus, each with an exact itemset signature.
//! - [`truth`] — flow-exact ground truth (replaces manual NOC labeling).
//! - [`scenario`] — background + anomalies + optional 1/N sampling,
//!   built into a queryable store.
//! - [`corpus`] — the SWITCH-31 and GEANT-40 campaigns and the Table 1
//!   incident as pure functions of a seed.
//!
//! ## Example
//!
//! ```
//! use anomex_gen::prelude::*;
//!
//! let mut spec = AnomalySpec::template(
//!     AnomalyKind::PortScan,
//!     "10.0.0.99".parse().unwrap(),
//!     "172.16.1.7".parse().unwrap(),
//! );
//! spec.flows = 500;
//! let mut scenario = Scenario::new("demo", 7, Backbone::Switch).with_anomaly(spec);
//! scenario.background.flows = 1_000;
//! let built = scenario.build();
//! assert_eq!(built.truth.len(), 1);
//! assert!(built.observed_flows() >= 1_500);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anomaly;
pub mod background;
pub mod corpus;
pub mod dist;
pub mod scenario;
pub mod topology;
pub mod truth;

/// One-stop imports for downstream crates.
pub mod prelude {
    pub use crate::anomaly::{AnomalyKind, AnomalySpec};
    pub use crate::background::{generate_background, BackgroundConfig};
    pub use crate::corpus::{
        geant_corpus, switch_corpus, table1_scenario, CaseClass, CorpusConfig, GeantCase,
    };
    pub use crate::dist::{Exponential, LogNormal, Pareto, Poisson, WeightedIndex, Zipf};
    pub use crate::scenario::{Backbone, BuiltScenario, Scenario};
    pub use crate::topology::{Pop, PopSampler, Topology};
    pub use crate::truth::{GroundTruth, LabeledAnomaly};
}

pub use prelude::*;

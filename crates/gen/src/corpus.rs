//! The paper's two evaluation campaigns, rebuilt as seeded corpora.
//!
//! - [`switch_corpus`] — 31 labeled cases on the SWITCH-like backbone,
//!   unsampled (the IMC'09 evaluation re-run by the paper: "our approach
//!   effectively extracted the anomalous flows in all 31 analyzed cases").
//! - [`geant_corpus`] — 40 alarm cases on the GEANT-like backbone at
//!   1/100 sampling, including the case classes behind the paper's
//!   94% / 28% / 6% breakdown: clean single-anomaly alarms, alarms with
//!   co-occurring secondary anomalies the detector misses, stealthy
//!   events, and false-positive alarms.
//! - [`table1_scenario`] — the exact four-itemset incident of Table 1.
//!
//! Every corpus is a pure function of a base seed; `scale` shrinks flow
//! counts proportionally so unit tests stay fast while benches run the
//! full populations.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::anomaly::{AnomalyKind, AnomalySpec};
use crate::scenario::{Backbone, Scenario};
use crate::topology::Topology;

/// Sizing knob: multiplies every flow/packet count in a corpus.
/// `1.0` reproduces paper-scale volumes; tests use `0.05`–`0.1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Volume multiplier applied to flows and packets.
    pub scale: f64,
    /// Base RNG seed; case `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { scale: 1.0, seed: 0x5EED_2010 }
    }
}

impl CorpusConfig {
    fn flows(&self, n: usize) -> usize {
        ((n as f64 * self.scale) as usize).max(2)
    }

    fn packets(&self, n: u64) -> u64 {
        ((n as f64 * self.scale) as u64).max(4)
    }
}

/// What a GEANT campaign case is constructed to exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CaseClass {
    /// One anomaly; detector meta-data points straight at it.
    Clean,
    /// Primary anomaly plus co-occurring secondaries the detector does
    /// not report (Table 1's situation) — extraction should surface
    /// *additional* flows.
    Secondary,
    /// Anomaly too small to mine meaningfully (paper's 6% bucket).
    Stealthy,
    /// Alarm raised on benign traffic (alpha flow) — also 6% bucket.
    FalseAlarm,
}

/// One GEANT campaign case: a scenario plus its construction class and
/// the index of the anomaly the (simulated) detector flags.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeantCase {
    /// The labeled scenario.
    pub scenario: Scenario,
    /// Why this case exists in the corpus.
    pub class: CaseClass,
    /// Index (into ground truth) of the detector-flagged anomaly;
    /// `None` for [`CaseClass::FalseAlarm`] (alarm has no true anomaly).
    pub primary: Option<usize>,
}

/// Attacker address for case `i`: a client host on some PoP.
fn attacker(topology: &Topology, i: usize) -> Ipv4Addr {
    let pop = &topology.pops[i % topology.len()];
    pop.client_addr(7_000 + i as u32 * 13)
}

/// Victim address for case `i`: a server on another PoP.
fn victim(topology: &Topology, i: usize) -> Ipv4Addr {
    let pop = &topology.pops[(i + 5) % topology.len()];
    pop.server_addr(40 + i as u32 * 7)
}

/// The 31-case SWITCH-like corpus (unsampled).
///
/// Class mix follows the SWITCH labeled-trace composition of the IMC'09
/// evaluation: scans dominate, floods follow, a few ICMP events round it
/// out. Deliberately NO point-to-point UDP floods: those are the GEANT
/// phenomenon that motivated the packet-support extension *after* the
/// 31/31 SWITCH result — flow-support Apriori handled every SWITCH case
/// precisely because the corpus held flow-volume anomalies only.
pub fn switch_corpus(config: &CorpusConfig) -> Vec<Scenario> {
    const MIX: [AnomalyKind; 31] = [
        AnomalyKind::PortScan,
        AnomalyKind::PortScan,
        AnomalyKind::PortScan,
        AnomalyKind::PortScan,
        AnomalyKind::PortScan,
        AnomalyKind::PortScan,
        AnomalyKind::PortScan,
        AnomalyKind::PortScan,
        AnomalyKind::NetworkScan,
        AnomalyKind::NetworkScan,
        AnomalyKind::NetworkScan,
        AnomalyKind::NetworkScan,
        AnomalyKind::NetworkScan,
        AnomalyKind::NetworkScan,
        AnomalyKind::SynFlood,
        AnomalyKind::SynFlood,
        AnomalyKind::SynFlood,
        AnomalyKind::SynFlood,
        AnomalyKind::SynFlood,
        AnomalyKind::SynFlood,
        AnomalyKind::UdpDdos,
        AnomalyKind::UdpDdos,
        AnomalyKind::UdpDdos,
        AnomalyKind::UdpDdos,
        AnomalyKind::UdpDdos,
        AnomalyKind::IcmpFlood,
        AnomalyKind::IcmpFlood,
        AnomalyKind::IcmpFlood,
        AnomalyKind::IcmpFlood,
        AnomalyKind::PortScan,
        AnomalyKind::SynFlood,
    ];
    let topology = Topology::switch();
    MIX.iter()
        .enumerate()
        .map(|(i, &kind)| {
            let mut spec =
                AnomalySpec::template(kind, attacker(&topology, i), victim(&topology, i));
            spec.flows = config.flows(spec.flows);
            spec.packets = config.packets(spec.packets);
            // Stagger tool source ports so cases are not clones.
            if spec.src_port != 0 {
                spec.src_port = spec.src_port.wrapping_add((i as u16) * 101);
            }
            let mut s = Scenario::new(
                format!("switch-{:02}-{}", i + 1, kind.label().replace(' ', "-")),
                config.seed + i as u64,
                Backbone::Switch,
            )
            .with_anomaly(spec);
            s.background.flows = config.flows(20_000);
            s
        })
        .collect()
}

/// The 40-case GEANT-like corpus (1/100 sampled).
///
/// Composition: 27 clean, 11 with secondary anomalies, 1 stealthy,
/// 1 false alarm → expected useful rate 38/40 = 95% (paper: 94%),
/// additional-flow rate 11/38 = 29% (paper: 28%).
pub fn geant_corpus(config: &CorpusConfig) -> Vec<GeantCase> {
    let topology = Topology::geant();
    let primary_mix: [AnomalyKind; 5] = [
        AnomalyKind::PortScan,
        AnomalyKind::SynFlood,
        AnomalyKind::UdpDdos,
        AnomalyKind::NetworkScan,
        AnomalyKind::UdpFlood,
    ];
    let mut cases = Vec::with_capacity(40);
    for i in 0..40usize {
        let class = match i {
            38 => CaseClass::Stealthy,
            39 => CaseClass::FalseAlarm,
            _ if i % 4 == 3 || i == 36 || i == 37 => CaseClass::Secondary, // 9 + 2 = 11
            _ => CaseClass::Clean,
        };
        let atk = attacker(&topology, i);
        let vic = victim(&topology, i);
        let mut scenario = Scenario::new(
            format!("geant-{:02}", i + 1),
            config.seed ^ (0xB0B0 + i as u64),
            Backbone::Geant,
        )
        .with_sampling(100);
        scenario.background.flows = config.flows(40_000);

        let primary;
        match class {
            CaseClass::Clean | CaseClass::Secondary => {
                let kind = primary_mix[i % primary_mix.len()];
                let mut spec = AnomalySpec::template(kind, atk, vic);
                // Sampled regime needs volume — but a point-to-point UDP
                // flood is few-flows *by definition* (the paper: "a small
                // number of flows but a large number of packets"); scaling
                // its flow count would erase the phenomenon the
                // packet-support extension exists for.
                if kind != AnomalyKind::UdpFlood {
                    spec.flows = config.flows(spec.flows * 3);
                }
                spec.packets = config.packets(spec.packets * 3);
                scenario = scenario.with_anomaly(spec);
                primary = Some(0);
                if class == CaseClass::Secondary {
                    // A second actor against the same victim, invisible to
                    // the detector's meta-data: either another scanner or
                    // a simultaneous flood, as in Table 1.
                    let second_kind = if kind == AnomalyKind::SynFlood {
                        AnomalyKind::PortScan
                    } else {
                        AnomalyKind::SynFlood
                    };
                    let mut second =
                        AnomalySpec::template(second_kind, attacker(&topology, i + 19), vic);
                    second.flows = config.flows(second.flows * 2);
                    second.packets = config.packets(second.packets * 2);
                    scenario = scenario.with_anomaly(second);
                }
            }
            CaseClass::Stealthy => {
                let spec = AnomalySpec::template(AnomalyKind::StealthyScan, atk, vic);
                // Deliberately NOT scaled up: with 1/100 sampling almost
                // nothing of it survives — the paper's unextractable case.
                scenario = scenario.with_anomaly(spec);
                primary = Some(0);
            }
            CaseClass::FalseAlarm => {
                // A big benign transfer trips the volume detector; there
                // is no malicious structure to extract.
                let mut spec = AnomalySpec::template(AnomalyKind::AlphaFlow, atk, vic);
                spec.packets = config.packets(spec.packets * 4);
                scenario = scenario.with_anomaly(spec);
                primary = Some(0);
            }
        }
        cases.push(GeantCase { scenario, class, primary });
    }
    cases
}

/// The exact incident of the paper's Table 1, at configurable scale.
///
/// Four overlapping anomalies against one victim `V`:
///
/// | row | structure                         | wire flows (scale 1.0) |
/// |-----|-----------------------------------|------------------------|
/// | 1   | scanner A, srcPort 55548, dst *   | 312,590                |
/// | 2   | scanner B, srcPort 55548, dst *   | 270,740                |
/// | 3   | SYN DDoS, srcPort 3072, dst V:80  | 37,190                 |
/// | 4   | SYN DDoS, srcPort 1024, dst V:80  | 37,280                 |
///
/// The simulated detector flags only scanner A (anomaly id 0) — rows 2–4
/// are what the extractor must surface on its own.
pub fn table1_scenario(config: &CorpusConfig) -> Scenario {
    let topology = Topology::geant();
    let v = topology.pops[1].server_addr(137); // "Y.13.137.129"
    let scanner_a = topology.pops[4].client_addr(64_165); // "X.191.64.165"
    let scanner_b = topology.pops[7].client_addr(12_003);

    let mut a = AnomalySpec::template(AnomalyKind::PortScan, scanner_a, v);
    a.src_port = 55_548;
    a.flows = config.flows(312_590);

    let mut b = AnomalySpec::template(AnomalyKind::PortScan, scanner_b, v);
    b.src_port = 55_548;
    b.flows = config.flows(270_740);

    let mut ddos1 = AnomalySpec::template(AnomalyKind::SynFlood, attacker(&topology, 3), v);
    ddos1.src_port = 3_072;
    ddos1.dst_port = 80;
    ddos1.flows = config.flows(37_190);

    let mut ddos2 = AnomalySpec::template(AnomalyKind::SynFlood, attacker(&topology, 9), v);
    ddos2.src_port = 1_024;
    ddos2.dst_port = 80;
    ddos2.flows = config.flows(37_280);

    let mut s = Scenario::new("table1-port-scan", config.seed ^ 0x7AB1E, Backbone::Geant)
        .with_anomaly(a)
        .with_anomaly(b)
        .with_anomaly(ddos1)
        .with_anomaly(ddos2)
        .with_sampling(100);
    s.background.flows = config.flows(60_000);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CorpusConfig {
        CorpusConfig { scale: 0.01, seed: 42 }
    }

    #[test]
    fn switch_corpus_has_31_single_anomaly_cases() {
        let corpus = switch_corpus(&tiny());
        assert_eq!(corpus.len(), 31);
        for s in &corpus {
            assert_eq!(s.anomalies.len(), 1, "{}", s.name);
            assert_eq!(s.sampling, 1, "{} must be unsampled", s.name);
            assert!(matches!(s.backbone, Backbone::Switch));
        }
    }

    #[test]
    fn switch_corpus_names_are_unique() {
        let corpus = switch_corpus(&tiny());
        let mut names: Vec<&str> = corpus.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 31);
    }

    #[test]
    fn geant_corpus_class_breakdown_matches_paper_targets() {
        let corpus = geant_corpus(&tiny());
        assert_eq!(corpus.len(), 40);
        let count = |c: CaseClass| corpus.iter().filter(|k| k.class == c).count();
        assert_eq!(count(CaseClass::Stealthy), 1);
        assert_eq!(count(CaseClass::FalseAlarm), 1);
        assert_eq!(count(CaseClass::Secondary), 11, "28% of useful cases");
        assert_eq!(count(CaseClass::Clean), 27);
    }

    #[test]
    fn geant_cases_are_sampled_1_in_100() {
        for case in geant_corpus(&tiny()) {
            assert_eq!(case.scenario.sampling, 100, "{}", case.scenario.name);
        }
    }

    #[test]
    fn secondary_cases_carry_two_anomalies_on_same_victim() {
        for case in geant_corpus(&tiny()) {
            if case.class == CaseClass::Secondary {
                assert_eq!(case.scenario.anomalies.len(), 2, "{}", case.scenario.name);
                assert_eq!(
                    case.scenario.anomalies[0].victim, case.scenario.anomalies[1].victim,
                    "{}: secondary must share the victim",
                    case.scenario.name
                );
            }
        }
    }

    #[test]
    fn table1_structure() {
        let s = table1_scenario(&tiny());
        assert_eq!(s.anomalies.len(), 4);
        assert_eq!(s.anomalies[0].src_port, 55_548);
        assert_eq!(s.anomalies[1].src_port, 55_548);
        assert_eq!(s.anomalies[2].src_port, 3_072);
        assert_eq!(s.anomalies[3].src_port, 1_024);
        // All four hit the same victim.
        let v = s.anomalies[0].victim;
        assert!(s.anomalies.iter().all(|a| a.victim == v));
        // Scanner A outweighs scanner B outweighs each DDoS wave.
        assert!(s.anomalies[0].flows > s.anomalies[1].flows);
        assert!(s.anomalies[1].flows > s.anomalies[2].flows * 5);
    }

    #[test]
    fn table1_builds_and_labels_four_anomalies() {
        let built = table1_scenario(&tiny()).build();
        assert_eq!(built.truth.len(), 4);
        assert!(built.observed_flows() > 0);
    }

    #[test]
    fn scale_shrinks_volumes() {
        let small = switch_corpus(&CorpusConfig { scale: 0.01, seed: 1 });
        let big = switch_corpus(&CorpusConfig { scale: 1.0, seed: 1 });
        assert!(small[0].anomalies[0].flows < big[0].anomalies[0].flows / 50);
    }

    #[test]
    fn corpora_are_seed_deterministic() {
        let a = geant_corpus(&tiny());
        let b = geant_corpus(&tiny());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.scenario.seed, y.scenario.seed);
            assert_eq!(x.scenario.anomalies, y.scenario.anomalies);
        }
    }
}

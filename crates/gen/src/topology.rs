//! Network topologies the paper's traces came from.
//!
//! Flows are generated per point-of-presence (PoP): the GEANT evaluation
//! ran on "live and historical data from the 18 points-of-presence of the
//! GEANT network"; the earlier IMC'09 evaluation used the medium-size
//! SWITCH backbone. Each [`Pop`] owns a client prefix and a server prefix
//! so that generated addresses are structured like a real backbone (hosts
//! cluster per PoP) instead of being uniform noise.

use std::borrow::Cow;
use std::net::Ipv4Addr;

use anomex_flow::filter::Ipv4Net;
use anomex_flow::sampling::Xoshiro256;
use serde::{Deserialize, Serialize};

use crate::dist::WeightedIndex;

/// One point of presence: an ingress/egress site of the backbone.
///
/// Serializable *and* deserializable: built-in topologies borrow their
/// names (`Cow::Borrowed`), config-loaded ones own them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pop {
    /// Exporter id carried in [`anomex_flow::record::FlowRecord::pop`].
    pub id: u16,
    /// Human-readable site name.
    pub name: Cow<'static, str>,
    /// Relative share of backbone traffic entering here.
    pub weight: u32,
    /// Address block of client-side hosts behind this PoP.
    pub client_net: Ipv4Net,
    /// Address block of server-side hosts behind this PoP.
    pub server_net: Ipv4Net,
}

impl Pop {
    /// Draw a random client address inside this PoP's client block.
    pub fn client_addr(&self, index: u32) -> Ipv4Addr {
        addr_in(self.client_net, index)
    }

    /// Draw a random server address inside this PoP's server block.
    pub fn server_addr(&self, index: u32) -> Ipv4Addr {
        addr_in(self.server_net, index)
    }
}

/// Deterministically pick the `index`-th host inside `net`, skipping the
/// network and broadcast addresses.
fn addr_in(net: Ipv4Net, index: u32) -> Ipv4Addr {
    let host_bits = 32 - net.prefix;
    let size = if host_bits >= 32 { u32::MAX } else { (1u32 << host_bits) - 2 };
    let base = u32::from(net.addr) & net.mask();
    Ipv4Addr::from(base + 1 + (index % size.max(1)))
}

/// A backbone topology: a weighted set of PoPs.
///
/// Round-trips through serde, so deployments can load custom
/// topologies from configuration instead of compiling them in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Topology name (`"geant"` / `"switch"` / custom).
    pub name: Cow<'static, str>,
    /// The sites.
    pub pops: Vec<Pop>,
}

/// The 18 GEANT points of presence (site list as of the paper's 2009/2010
/// measurement period). Weights approximate the relative traffic volumes
/// of the larger western-European sites versus the smaller eastern ones.
const GEANT_SITES: [(&str, u32); 18] = [
    ("London", 14),
    ("Amsterdam", 13),
    ("Frankfurt", 13),
    ("Paris", 11),
    ("Geneva", 10),
    ("Milan", 8),
    ("Vienna", 7),
    ("Madrid", 6),
    ("Copenhagen", 5),
    ("Stockholm", 5),
    ("Prague", 4),
    ("Budapest", 4),
    ("Warsaw", 4),
    ("Brussels", 3),
    ("Lisbon", 3),
    ("Athens", 3),
    ("Zagreb", 2),
    ("Bucharest", 2),
];

impl Topology {
    /// The 18-PoP GEANT backbone of the paper's second evaluation.
    ///
    /// Client hosts live in `10.p.0.0/16` and servers in `172.16.p.0/24`
    /// for PoP index `p` — private space so generated traces can never be
    /// confused with real addresses (the paper itself anonymizes as
    /// `X.191.64.165`).
    pub fn geant() -> Topology {
        let pops = GEANT_SITES
            .iter()
            .enumerate()
            .map(|(i, &(name, weight))| Pop {
                id: i as u16,
                name: Cow::Borrowed(name),
                weight,
                client_net: Ipv4Net::new(Ipv4Addr::new(10, i as u8, 0, 0), 16),
                server_net: Ipv4Net::new(Ipv4Addr::new(172, 16, i as u8, 0), 24),
            })
            .collect();
        Topology { name: Cow::Borrowed("geant"), pops }
    }

    /// A SWITCH-like medium-size backbone: 4 sites, one dominant.
    pub fn switch() -> Topology {
        let sites: [(&str, u32); 4] =
            [("Zurich", 10), ("Geneva", 6), ("Lausanne", 5), ("Basel", 3)];
        let pops = sites
            .iter()
            .enumerate()
            .map(|(i, &(name, weight))| Pop {
                id: i as u16,
                name: Cow::Borrowed(name),
                weight,
                client_net: Ipv4Net::new(Ipv4Addr::new(10, 100 + i as u8, 0, 0), 16),
                server_net: Ipv4Net::new(Ipv4Addr::new(172, 20, i as u8, 0), 24),
            })
            .collect();
        Topology { name: Cow::Borrowed("switch"), pops }
    }

    /// Number of PoPs.
    pub fn len(&self) -> usize {
        self.pops.len()
    }

    /// True when the topology has no PoPs.
    pub fn is_empty(&self) -> bool {
        self.pops.is_empty()
    }

    /// Weighted sampler over the PoPs.
    pub fn sampler(&self) -> PopSampler {
        let weights: Vec<f64> = self.pops.iter().map(|p| p.weight as f64).collect();
        PopSampler { index: WeightedIndex::new(&weights) }
    }

    /// Look a PoP up by exporter id.
    pub fn pop(&self, id: u16) -> Option<&Pop> {
        self.pops.iter().find(|p| p.id == id)
    }
}

/// Weighted PoP selection, split from [`Topology`] so the topology stays
/// serializable and cheap to clone.
#[derive(Debug, Clone)]
pub struct PopSampler {
    index: WeightedIndex,
}

impl PopSampler {
    /// Draw a PoP index according to traffic weight.
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        self.index.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geant_has_18_pops_with_unique_ids_and_nets() {
        let t = Topology::geant();
        assert_eq!(t.len(), 18);
        let mut ids: Vec<u16> = t.pops.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 18, "duplicate PoP ids");
        let mut nets: Vec<String> = t.pops.iter().map(|p| p.client_net.to_string()).collect();
        nets.sort();
        nets.dedup();
        assert_eq!(nets.len(), 18, "duplicate client nets");
    }

    #[test]
    fn switch_is_smaller_than_geant() {
        assert!(Topology::switch().len() < Topology::geant().len());
    }

    #[test]
    fn client_addrs_stay_inside_block() {
        let t = Topology::geant();
        for pop in &t.pops {
            for idx in [0u32, 1, 100, 65_533, u32::MAX] {
                assert!(
                    pop.client_net.contains(pop.client_addr(idx)),
                    "pop {} idx {idx} escaped {}",
                    pop.name,
                    pop.client_net
                );
                assert!(pop.server_net.contains(pop.server_addr(idx)));
            }
        }
    }

    #[test]
    fn addr_skips_network_address() {
        let net = Ipv4Net::new(Ipv4Addr::new(10, 0, 0, 0), 24);
        for idx in 0..300 {
            let a = addr_in(net, idx);
            assert_ne!(a, Ipv4Addr::new(10, 0, 0, 0), "network addr at idx {idx}");
        }
    }

    #[test]
    fn weighted_sampling_prefers_heavy_pops() {
        let t = Topology::geant();
        let sampler = t.sampler();
        let mut rng = Xoshiro256::seeded(99);
        let mut counts = vec![0u32; t.len()];
        for _ in 0..50_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        // London (weight 14) must be drawn more than Bucharest (weight 2).
        assert!(counts[0] > counts[17] * 3);
    }

    #[test]
    fn pop_lookup_by_id() {
        let t = Topology::geant();
        assert_eq!(t.pop(0).unwrap().name, "London");
        assert!(t.pop(200).is_none());
    }

    #[test]
    fn topology_is_config_loadable() {
        // Serialize → deserialize round-trips exactly: deployments can
        // ship custom topologies as JSON config instead of compiling
        // them in (the deserialized names are owned Cows).
        for t in [Topology::geant(), Topology::switch()] {
            let json = serde_json::to_string(&t).expect("serialize topology");
            let back: Topology = serde_json::from_str(&json).expect("deserialize topology");
            assert_eq!(back, t);
            assert!(matches!(back.name, Cow::Owned(_)));
            // And the loaded topology is fully functional.
            let mut rng = Xoshiro256::seeded(5);
            let _ = back.sampler().sample(&mut rng);
        }
    }
}

//! Ground truth for generated scenarios.
//!
//! The paper validated extraction manually against NOC expertise ("more
//! than one thousand of anomalies were checked previously to this work").
//! The generator replaces that human labeling with exact labels: every
//! injected anomaly records the 5-tuple keys of its flows, so precision
//! and recall of the extractor are computable, not estimated.

use std::collections::HashSet;

use anomex_flow::feature::FeatureItem;
use anomex_flow::record::{FlowKey, FlowRecord};
use anomex_flow::store::TimeRange;
use serde::{Deserialize, Serialize};

use crate::anomaly::{AnomalyKind, AnomalySpec};

/// One injected anomaly with its exact flow-level labels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabeledAnomaly {
    /// Index within the scenario (stable across runs of the same seed).
    pub id: usize,
    /// Anomaly class.
    pub kind: AnomalyKind,
    /// The spec that produced it (parameters, window, volumes).
    pub spec: AnomalySpec,
    /// The ideal itemset: feature values shared by every anomalous flow.
    pub signature: Vec<FeatureItem>,
    /// Exact 5-tuple keys of the injected flows.
    pub keys: HashSet<FlowKey>,
    /// Injected flow count.
    pub flows: usize,
    /// Injected packet total.
    pub packets: u64,
}

impl LabeledAnomaly {
    /// Does `record` belong to this anomaly?
    ///
    /// Key-exact match; sampling preserves keys, so labels survive the
    /// 1/100 Sampled-NetFlow regime unchanged.
    pub fn contains(&self, record: &FlowRecord) -> bool {
        self.keys.contains(&record.key())
    }

    /// The anomaly's time window.
    pub fn window(&self) -> TimeRange {
        TimeRange::new(self.spec.start_ms, self.spec.end_ms())
    }

    /// One-line description for reports.
    pub fn describe(&self) -> String {
        format!(
            "#{} {}: {} -> {} ({} flows, {} packets)",
            self.id, self.kind, self.spec.attacker, self.spec.victim, self.flows, self.packets
        )
    }
}

/// All labels of one scenario.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Injected anomalies, in injection order.
    pub anomalies: Vec<LabeledAnomaly>,
}

impl GroundTruth {
    /// No injected anomalies (pure-background scenario).
    pub fn none() -> GroundTruth {
        GroundTruth::default()
    }

    /// Number of labeled anomalies.
    pub fn len(&self) -> usize {
        self.anomalies.len()
    }

    /// True when nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.anomalies.is_empty()
    }

    /// Record a new anomaly, assigning the next id.
    pub fn push(&mut self, kind: AnomalyKind, spec: AnomalySpec, flows: &[FlowRecord]) -> usize {
        let id = self.anomalies.len();
        self.anomalies.push(LabeledAnomaly {
            id,
            kind,
            signature: spec.signature(),
            keys: flows.iter().map(FlowRecord::key).collect(),
            flows: flows.len(),
            packets: flows.iter().map(|f| f.packets).sum(),
            spec,
        });
        id
    }

    /// Is `record` part of *any* labeled anomaly?
    pub fn is_anomalous(&self, record: &FlowRecord) -> bool {
        self.anomalies.iter().any(|a| a.contains(record))
    }

    /// The anomalies whose flows `record` belongs to.
    pub fn memberships(&self, record: &FlowRecord) -> Vec<usize> {
        self.anomalies.iter().filter(|a| a.contains(record)).map(|a| a.id).collect()
    }

    /// Union of all labeled keys.
    pub fn all_keys(&self) -> HashSet<FlowKey> {
        self.anomalies.iter().flat_map(|a| a.keys.iter().copied()).collect()
    }

    /// Labeled anomalies of one class.
    pub fn of_kind(&self, kind: AnomalyKind) -> Vec<&LabeledAnomaly> {
        self.anomalies.iter().filter(|a| a.kind == kind).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_flow::sampling::Xoshiro256;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn labeled(kind: AnomalyKind, seed: u64) -> (GroundTruth, Vec<FlowRecord>) {
        let mut spec = AnomalySpec::template(kind, ip("10.1.2.3"), ip("172.16.0.9"));
        spec.flows = spec.flows.min(1_000);
        let flows = spec.inject(&mut Xoshiro256::seeded(seed));
        let mut truth = GroundTruth::none();
        truth.push(kind, spec, &flows);
        (truth, flows)
    }

    #[test]
    fn every_injected_flow_is_labeled() {
        let (truth, flows) = labeled(AnomalyKind::PortScan, 3);
        assert!(flows.iter().all(|f| truth.is_anomalous(f)));
        assert_eq!(truth.anomalies[0].flows, flows.len());
    }

    #[test]
    fn background_flow_is_not_labeled() {
        let (truth, _) = labeled(AnomalyKind::SynFlood, 3);
        let benign =
            FlowRecord::builder().src(ip("10.200.0.1"), 40_000).dst(ip("172.16.9.9"), 80).build();
        assert!(!truth.is_anomalous(&benign));
        assert!(truth.memberships(&benign).is_empty());
    }

    #[test]
    fn ids_are_sequential() {
        let mut truth = GroundTruth::none();
        for (i, kind) in [AnomalyKind::PortScan, AnomalyKind::UdpFlood, AnomalyKind::IcmpFlood]
            .into_iter()
            .enumerate()
        {
            let mut spec = AnomalySpec::template(kind, ip("10.0.0.1"), ip("172.16.0.2"));
            spec.flows = 10;
            let flows = spec.inject(&mut Xoshiro256::seeded(i as u64));
            assert_eq!(truth.push(kind, spec, &flows), i);
        }
        assert_eq!(truth.len(), 3);
    }

    #[test]
    fn packets_totalled() {
        let (truth, flows) = labeled(AnomalyKind::UdpFlood, 8);
        let expect: u64 = flows.iter().map(|f| f.packets).sum();
        assert_eq!(truth.anomalies[0].packets, expect);
    }

    #[test]
    fn window_covers_all_flows() {
        let (truth, flows) = labeled(AnomalyKind::NetworkScan, 5);
        let w = truth.anomalies[0].window();
        assert!(flows.iter().all(|f| w.contains(f.start_ms)));
    }

    #[test]
    fn of_kind_filters() {
        let (truth, _) = labeled(AnomalyKind::PortScan, 1);
        assert_eq!(truth.of_kind(AnomalyKind::PortScan).len(), 1);
        assert!(truth.of_kind(AnomalyKind::UdpFlood).is_empty());
    }

    #[test]
    fn describe_mentions_kind_and_hosts() {
        let (truth, _) = labeled(AnomalyKind::IcmpFlood, 2);
        let d = truth.anomalies[0].describe();
        assert!(d.contains("ICMP flood") && d.contains("10.1.2.3"));
    }
}

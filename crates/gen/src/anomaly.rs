//! Labeled anomaly injection.
//!
//! Each injector reproduces the flow-level structure of one anomaly class
//! from the paper's corpus (GEANT NOC incidents and the SWITCH labeled
//! traces): scans, distributed floods, point-to-point floods and alpha
//! flows. Injected records are real [`FlowRecord`]s mixed into the benign
//! background; ground truth is carried separately (see
//! [`crate::truth`]), never encoded in the records themselves, so the
//! extractor cannot cheat.

use std::net::Ipv4Addr;

use anomex_flow::feature::FeatureItem;
use anomex_flow::record::{FlowRecord, Protocol, TcpFlags};
use anomex_flow::sampling::Xoshiro256;
use serde::{Deserialize, Serialize};

/// Anomaly classes reproduced from the paper's evaluation corpus.
///
/// The paper names: port scans, network scans, DoS/DDoS (TCP and UDP
/// based), point-to-point UDP floods ("involving a small number of flows
/// but a large number of packets") and low-volume/stealthy events behind
/// the 6% failure rate. Alpha flows model the benign-but-huge transfers
/// that trip volume detectors (false-positive alarms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// One source sweeping destination ports on one target.
    PortScan,
    /// One source probing one port across an address range.
    NetworkScan,
    /// Distributed TCP SYN flood against one `victim:port`.
    SynFlood,
    /// Distributed UDP flood against one `victim:port`.
    UdpDdos,
    /// Point-to-point UDP flood: very few flows, very many packets.
    UdpFlood,
    /// ICMP (ping) flood from one source.
    IcmpFlood,
    /// High-volume benign transfer (false-positive alarm bait).
    AlphaFlow,
    /// Scan slowed below the miner's meaningful-support floor.
    StealthyScan,
}

impl AnomalyKind {
    /// Human-readable label used in reports and ground truth.
    pub fn label(self) -> &'static str {
        match self {
            AnomalyKind::PortScan => "port scan",
            AnomalyKind::NetworkScan => "network scan",
            AnomalyKind::SynFlood => "TCP SYN DDoS",
            AnomalyKind::UdpDdos => "UDP DDoS",
            AnomalyKind::UdpFlood => "point-to-point UDP flood",
            AnomalyKind::IcmpFlood => "ICMP flood",
            AnomalyKind::AlphaFlow => "alpha flow",
            AnomalyKind::StealthyScan => "stealthy scan",
        }
    }

    /// True for the classes a security engineer would act on (everything
    /// except the benign alpha flow).
    pub fn is_malicious(self) -> bool {
        !matches!(self, AnomalyKind::AlphaFlow)
    }
}

impl std::fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A fully parameterized anomaly to inject.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalySpec {
    /// Which class.
    pub kind: AnomalyKind,
    /// Attacking host (for distributed floods: ignored per-flow, sources
    /// are drawn from a spoofed pool around it).
    pub attacker: Ipv4Addr,
    /// Victim host (for network scans: base of the swept range).
    pub victim: Ipv4Addr,
    /// Fixed source port, if the tool binds one (0 = ephemeral per flow).
    /// Table 1's scanner used 55548; its DDoS waves used 3072 and 1024.
    pub src_port: u16,
    /// Destination port (scanned port, flooded service); for port scans
    /// this is the *starting* port of the sweep.
    pub dst_port: u16,
    /// Number of flows to emit.
    pub flows: usize,
    /// Total packets across all flows (split per-flow by the injector).
    pub packets: u64,
    /// Injection window start, epoch ms.
    pub start_ms: u64,
    /// Injection window length, ms.
    pub duration_ms: u64,
    /// Exporter PoP stamped on the records.
    pub pop: u16,
}

impl AnomalySpec {
    /// A canonical spec for `kind`, sized like the paper's incidents.
    /// Callers override fields for specific scenarios.
    pub fn template(kind: AnomalyKind, attacker: Ipv4Addr, victim: Ipv4Addr) -> AnomalySpec {
        let (src_port, dst_port, flows, packets) = match kind {
            AnomalyKind::PortScan => (55_548, 1, 40_000, 60_000),
            AnomalyKind::NetworkScan => (0, 445, 30_000, 45_000),
            AnomalyKind::SynFlood => (3_072, 80, 25_000, 60_000),
            AnomalyKind::UdpDdos => (0, 53, 20_000, 80_000),
            AnomalyKind::UdpFlood => (4_500, 5_060, 3, 900_000),
            AnomalyKind::IcmpFlood => (0, 0, 1_500, 300_000),
            AnomalyKind::AlphaFlow => (33_000, 873, 2, 500_000),
            AnomalyKind::StealthyScan => (61_000, 1, 60, 90),
        };
        AnomalySpec {
            kind,
            attacker,
            victim,
            src_port,
            dst_port,
            flows,
            packets,
            start_ms: 0,
            duration_ms: 5 * 60 * 1000,
            pop: 0,
        }
    }

    /// End of the injection window, epoch ms.
    pub fn end_ms(&self) -> u64 {
        self.start_ms + self.duration_ms
    }

    /// The feature items that characterize this anomaly — the itemset an
    /// ideal extractor would report. Wildcarded dimensions are absent.
    ///
    /// For [`AnomalyKind::AlphaFlow`] the signature describes the forward
    /// (data) direction; the mirrored ACK flow is part of the anomaly's
    /// footprint but not of its reported itemset.
    pub fn signature(&self) -> Vec<FeatureItem> {
        let mut items = Vec::new();
        match self.kind {
            AnomalyKind::PortScan | AnomalyKind::StealthyScan => {
                // Sweeps dstPort; srcIP/dstIP fixed, srcPort fixed if bound.
                items.push(FeatureItem::src_ip(self.attacker));
                items.push(FeatureItem::dst_ip(self.victim));
                if self.src_port != 0 {
                    items.push(FeatureItem::src_port(self.src_port));
                }
            }
            AnomalyKind::NetworkScan => {
                // Sweeps dstIP; srcIP and probed port fixed.
                items.push(FeatureItem::src_ip(self.attacker));
                items.push(FeatureItem::dst_port(self.dst_port));
            }
            AnomalyKind::SynFlood | AnomalyKind::UdpDdos => {
                // Spoofed/distributed srcIP; victim and service fixed,
                // plus the tool's source port when it binds one.
                items.push(FeatureItem::dst_ip(self.victim));
                items.push(FeatureItem::dst_port(self.dst_port));
                if self.src_port != 0 {
                    items.push(FeatureItem::src_port(self.src_port));
                }
            }
            AnomalyKind::UdpFlood | AnomalyKind::AlphaFlow => {
                items.push(FeatureItem::src_ip(self.attacker));
                items.push(FeatureItem::dst_ip(self.victim));
                if self.src_port != 0 {
                    items.push(FeatureItem::src_port(self.src_port));
                }
                items.push(FeatureItem::dst_port(self.dst_port));
            }
            AnomalyKind::IcmpFlood => {
                items.push(FeatureItem::src_ip(self.attacker));
                items.push(FeatureItem::dst_ip(self.victim));
            }
        }
        items
    }

    /// Inject the anomaly: emit its flow records.
    pub fn inject(&self, rng: &mut Xoshiro256) -> Vec<FlowRecord> {
        assert!(self.duration_ms > 0, "anomaly window must be non-empty");
        match self.kind {
            AnomalyKind::PortScan | AnomalyKind::StealthyScan => self.inject_port_scan(rng),
            AnomalyKind::NetworkScan => self.inject_network_scan(rng),
            AnomalyKind::SynFlood => self.inject_syn_flood(rng),
            AnomalyKind::UdpDdos => self.inject_udp_ddos(rng),
            AnomalyKind::UdpFlood => self.inject_udp_flood(rng),
            AnomalyKind::IcmpFlood => self.inject_icmp_flood(rng),
            AnomalyKind::AlphaFlow => self.inject_alpha_flow(rng),
        }
    }

    fn stamp(&self, rng: &mut Xoshiro256) -> (u64, u64) {
        let start = self.start_ms + rng.next_below(self.duration_ms);
        let dur = rng.next_below(1_000);
        (start, (start + dur).min(self.end_ms()))
    }

    fn inject_port_scan(&self, rng: &mut Xoshiro256) -> Vec<FlowRecord> {
        let mut out = Vec::with_capacity(self.flows);
        for i in 0..self.flows {
            let (start, end) = self.stamp(rng);
            // Sweep the port space cyclically from the starting port.
            let port = ((self.dst_port as usize + i) % 65_535 + 1) as u16;
            let sport = if self.src_port != 0 { self.src_port } else { ephemeral(rng) };
            out.push(
                FlowRecord::builder()
                    .time(start, end)
                    .src(self.attacker, sport)
                    .dst(self.victim, port)
                    .proto(Protocol::TCP)
                    .tcp_flags(TcpFlags::SYN)
                    .volume(1 + rng.next_below(2), 44)
                    .pop(self.pop)
                    .build(),
            );
        }
        out
    }

    fn inject_network_scan(&self, rng: &mut Xoshiro256) -> Vec<FlowRecord> {
        let base = u32::from(self.victim);
        let mut out = Vec::with_capacity(self.flows);
        for i in 0..self.flows {
            let (start, end) = self.stamp(rng);
            // Walk a /16 around the victim base address.
            let target = Ipv4Addr::from((base & 0xFFFF_0000) | (i as u32 & 0xFFFF));
            out.push(
                FlowRecord::builder()
                    .time(start, end)
                    .src(self.attacker, ephemeral(rng))
                    .dst(target, self.dst_port)
                    .proto(Protocol::TCP)
                    .tcp_flags(TcpFlags::SYN)
                    .volume(1, 40)
                    .pop(self.pop)
                    .build(),
            );
        }
        out
    }

    fn inject_syn_flood(&self, rng: &mut Xoshiro256) -> Vec<FlowRecord> {
        let mut out = Vec::with_capacity(self.flows);
        for _ in 0..self.flows {
            let (start, end) = self.stamp(rng);
            let source = spoofed_source(self.attacker, rng);
            let sport = if self.src_port != 0 { self.src_port } else { ephemeral(rng) };
            let packets = 1 + rng.next_below(3);
            out.push(
                FlowRecord::builder()
                    .time(start, end)
                    .src(source, sport)
                    .dst(self.victim, self.dst_port)
                    .proto(Protocol::TCP)
                    .tcp_flags(TcpFlags::SYN)
                    .volume(packets, packets * 40)
                    .pop(self.pop)
                    .build(),
            );
        }
        out
    }

    fn inject_udp_ddos(&self, rng: &mut Xoshiro256) -> Vec<FlowRecord> {
        let per_flow = (self.packets / self.flows.max(1) as u64).max(1);
        let mut out = Vec::with_capacity(self.flows);
        for _ in 0..self.flows {
            let (start, end) = self.stamp(rng);
            let source = spoofed_source(self.attacker, rng);
            let sport = if self.src_port != 0 { self.src_port } else { ephemeral(rng) };
            let packets = per_flow + rng.next_below(per_flow.max(2));
            out.push(
                FlowRecord::builder()
                    .time(start, end)
                    .src(source, sport)
                    .dst(self.victim, self.dst_port)
                    .proto(Protocol::UDP)
                    .volume(packets, packets * 512)
                    .pop(self.pop)
                    .build(),
            );
        }
        out
    }

    fn inject_udp_flood(&self, rng: &mut Xoshiro256) -> Vec<FlowRecord> {
        // The GEANT signature case: a handful of flows (often one per
        // 5-minute export) carrying an enormous packet count.
        let per_flow = (self.packets / self.flows.max(1) as u64).max(1);
        let mut out = Vec::with_capacity(self.flows);
        for _ in 0..self.flows.max(1) {
            let start = self.start_ms + rng.next_below(self.duration_ms / 2 + 1);
            let end = self.end_ms().min(start + self.duration_ms / 2);
            out.push(
                FlowRecord::builder()
                    .time(start, end)
                    .src(self.attacker, self.src_port)
                    .dst(self.victim, self.dst_port)
                    .proto(Protocol::UDP)
                    .volume(per_flow, per_flow * 1_200)
                    .pop(self.pop)
                    .build(),
            );
        }
        out
    }

    fn inject_icmp_flood(&self, rng: &mut Xoshiro256) -> Vec<FlowRecord> {
        let per_flow = (self.packets / self.flows.max(1) as u64).max(1);
        let mut out = Vec::with_capacity(self.flows);
        for _ in 0..self.flows {
            let (start, end) = self.stamp(rng);
            out.push(
                FlowRecord::builder()
                    .time(start, end)
                    .src(self.attacker, 0)
                    .dst(self.victim, 0)
                    .proto(Protocol::ICMP)
                    .volume(per_flow, per_flow * 84)
                    .pop(self.pop)
                    .build(),
            );
        }
        out
    }

    fn inject_alpha_flow(&self, rng: &mut Xoshiro256) -> Vec<FlowRecord> {
        // A large benign transfer: forward data flow plus ACK return flow.
        let data_packets = self.packets.max(1);
        let start = self.start_ms + rng.next_below(self.duration_ms / 4 + 1);
        let end = self.end_ms();
        let forward = FlowRecord::builder()
            .time(start, end)
            .src(self.attacker, self.src_port)
            .dst(self.victim, self.dst_port)
            .proto(Protocol::TCP)
            .tcp_flags(TcpFlags::COMPLETE)
            .volume(data_packets, data_packets * 1_400)
            .pop(self.pop)
            .build();
        let acks = (data_packets / 2).max(1);
        let back = FlowRecord::builder()
            .time(start, end)
            .src(self.victim, self.dst_port)
            .dst(self.attacker, self.src_port)
            .proto(Protocol::TCP)
            .tcp_flags(TcpFlags::COMPLETE)
            .volume(acks, acks * 52)
            .pop(self.pop)
            .build();
        vec![forward, back]
    }
}

/// Spoofed source addresses for distributed floods: a /12 around the
/// nominal attacker, so sources share no single IP but the victim-side
/// items stay fixed — exactly the structure behind Table 1's
/// `(*, dstIP, srcPort, dstPort)` DDoS itemsets.
fn spoofed_source(base: Ipv4Addr, rng: &mut Xoshiro256) -> Ipv4Addr {
    let prefix = u32::from(base) & 0xFFF0_0000;
    Ipv4Addr::from(prefix | (rng.next_below(1 << 20) as u32))
}

fn ephemeral(rng: &mut Xoshiro256) -> u16 {
    1024 + rng.next_below(64_512) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn spec(kind: AnomalyKind) -> AnomalySpec {
        AnomalySpec::template(kind, ip("10.9.1.1"), ip("172.16.3.7"))
    }

    #[test]
    fn port_scan_sweeps_ports_from_fixed_source() {
        let mut s = spec(AnomalyKind::PortScan);
        s.flows = 5_000;
        let flows = s.inject(&mut Xoshiro256::seeded(1));
        assert_eq!(flows.len(), 5_000);
        let ports: HashSet<u16> = flows.iter().map(|f| f.dst_port).collect();
        assert!(ports.len() > 4_000, "not sweeping: {} ports", ports.len());
        assert!(flows.iter().all(|f| f.src_ip == s.attacker && f.dst_ip == s.victim));
        assert!(flows.iter().all(|f| f.src_port == 55_548));
        assert!(flows.iter().all(|f| f.tcp_flags.is_syn_only()));
    }

    #[test]
    fn port_scan_never_emits_port_zero() {
        let mut s = spec(AnomalyKind::PortScan);
        s.flows = 70_000; // wraps the port space
        let flows = s.inject(&mut Xoshiro256::seeded(2));
        assert!(flows.iter().all(|f| f.dst_port != 0));
    }

    #[test]
    fn network_scan_sweeps_hosts_on_one_port() {
        let mut s = spec(AnomalyKind::NetworkScan);
        s.flows = 3_000;
        let flows = s.inject(&mut Xoshiro256::seeded(1));
        let hosts: HashSet<Ipv4Addr> = flows.iter().map(|f| f.dst_ip).collect();
        assert!(hosts.len() == 3_000, "swept {} hosts", hosts.len());
        assert!(flows.iter().all(|f| f.dst_port == 445 && f.src_ip == s.attacker));
    }

    #[test]
    fn syn_flood_spreads_sources_hits_one_service() {
        let mut s = spec(AnomalyKind::SynFlood);
        s.flows = 4_000;
        let flows = s.inject(&mut Xoshiro256::seeded(1));
        let sources: HashSet<Ipv4Addr> = flows.iter().map(|f| f.src_ip).collect();
        assert!(sources.len() > 3_000, "sources not distributed: {}", sources.len());
        assert!(flows.iter().all(|f| f.dst_ip == s.victim && f.dst_port == 80));
        assert!(flows.iter().all(|f| f.src_port == 3_072));
        assert!(flows.iter().all(|f| f.tcp_flags.is_syn_only()));
    }

    #[test]
    fn udp_flood_few_flows_many_packets() {
        let s = spec(AnomalyKind::UdpFlood);
        let flows = s.inject(&mut Xoshiro256::seeded(1));
        assert!(flows.len() <= 3);
        let packets: u64 = flows.iter().map(|f| f.packets).sum();
        assert!(packets >= 800_000, "flood too small: {packets} packets");
        assert!(flows.iter().all(|f| f.proto == Protocol::UDP));
    }

    #[test]
    fn stealthy_scan_is_tiny() {
        let s = spec(AnomalyKind::StealthyScan);
        let flows = s.inject(&mut Xoshiro256::seeded(1));
        assert!(flows.len() <= 60);
        assert!(flows.iter().map(|f| f.packets).sum::<u64>() < 200);
    }

    #[test]
    fn alpha_flow_is_two_sided_and_huge() {
        let s = spec(AnomalyKind::AlphaFlow);
        let flows = s.inject(&mut Xoshiro256::seeded(1));
        assert_eq!(flows.len(), 2);
        assert!(flows[0].bytes > 100_000_000, "not alpha-sized: {}", flows[0].bytes);
        assert_eq!(flows[0].src_ip, flows[1].dst_ip);
    }

    #[test]
    fn icmp_flood_uses_protocol_one_port_zero() {
        let s = spec(AnomalyKind::IcmpFlood);
        let flows = s.inject(&mut Xoshiro256::seeded(1));
        assert!(flows.iter().all(|f| f.proto == Protocol::ICMP));
        assert!(flows.iter().all(|f| f.src_port == 0 && f.dst_port == 0));
    }

    #[test]
    fn all_flows_respect_window() {
        for kind in [
            AnomalyKind::PortScan,
            AnomalyKind::NetworkScan,
            AnomalyKind::SynFlood,
            AnomalyKind::UdpDdos,
            AnomalyKind::UdpFlood,
            AnomalyKind::IcmpFlood,
            AnomalyKind::AlphaFlow,
            AnomalyKind::StealthyScan,
        ] {
            let mut s = spec(kind);
            s.start_ms = 60_000;
            s.duration_ms = 120_000;
            s.flows = s.flows.min(500);
            for f in s.inject(&mut Xoshiro256::seeded(9)) {
                assert!(
                    f.start_ms >= 60_000 && f.start_ms < 180_000,
                    "{kind}: start {}",
                    f.start_ms
                );
                assert!(f.end_ms <= 180_000, "{kind}: end {}", f.end_ms);
            }
        }
    }

    #[test]
    fn signatures_match_injected_flows() {
        for kind in [
            AnomalyKind::PortScan,
            AnomalyKind::NetworkScan,
            AnomalyKind::SynFlood,
            AnomalyKind::UdpDdos,
            AnomalyKind::UdpFlood,
            AnomalyKind::IcmpFlood,
            AnomalyKind::AlphaFlow,
        ] {
            let mut s = spec(kind);
            s.flows = s.flows.min(200);
            let sig = s.signature();
            assert!(!sig.is_empty(), "{kind}: empty signature");
            for f in s.inject(&mut Xoshiro256::seeded(4)) {
                // Alpha flows carry a mirrored ACK flow; the signature
                // describes the forward (data) direction only.
                if kind == AnomalyKind::AlphaFlow && f.src_ip != s.attacker {
                    continue;
                }
                for item in &sig {
                    assert!(item.matches(&f), "{kind}: {item} missing from {f}");
                }
            }
        }
    }

    #[test]
    fn spoofed_sources_share_prefix_not_address() {
        let mut rng = Xoshiro256::seeded(5);
        let base = ip("100.64.0.1");
        let set: HashSet<Ipv4Addr> = (0..1000).map(|_| spoofed_source(base, &mut rng)).collect();
        assert!(set.len() > 900);
        for a in set {
            assert_eq!(u32::from(a) & 0xFFF0_0000, u32::from(base) & 0xFFF0_0000);
        }
    }

    #[test]
    fn kind_labels_and_malice() {
        assert_eq!(AnomalyKind::UdpFlood.to_string(), "point-to-point UDP flood");
        assert!(AnomalyKind::SynFlood.is_malicious());
        assert!(!AnomalyKind::AlphaFlow.is_malicious());
    }
}

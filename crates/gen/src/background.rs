//! Benign backbone traffic.
//!
//! The extractor's job is to find anomalous structure *inside* realistic
//! noise, so the background model matters more than raw volume. It
//! reproduces the joint-frequency properties frequent itemset mining is
//! sensitive to:
//!
//! - **Skewed host popularity** — Zipf-distributed clients and servers per
//!   PoP, so popular hosts form legitimate high-support 1-itemsets (the
//!   false-positive trap the paper's meta-data pre-filtering addresses).
//! - **Concentrated service ports** — a realistic port mix dominated by
//!   web/DNS, so `dstPort=80` alone is frequent but full anomalous
//!   combinations (`srcIP, dstIP, dstPort`) are not.
//! - **Heavy-tailed volumes** — Pareto packet counts, per-service packet
//!   sizes, so packet-support and flow-support rankings genuinely differ.
//! - **Request/reply structure** — a fraction of flows is mirrored, as in
//!   real unidirectional NetFlow from a backbone.

use anomex_flow::record::{FlowRecord, Protocol, TcpFlags};
use anomex_flow::sampling::Xoshiro256;
use serde::{Deserialize, Serialize};

use crate::dist::{Exponential, Pareto, WeightedIndex, Zipf};
use crate::topology::Topology;

/// One entry of the service mix: a well-known destination port with its
/// traffic share and volume profile.
#[derive(Debug, Clone, Copy)]
struct Service {
    port: u16,
    proto: Protocol,
    weight: f64,
    /// Mean payload bytes per packet (packet sizes are jittered around it).
    bpp: u64,
    /// Probability that the flow gets a mirrored reply flow.
    reply_prob: f64,
}

/// The default service mix. Shares follow the usual backbone breakdown:
/// web dominates flows, DNS dominates flow *count* per byte, mail/ssh/ntp
/// trail, and a high-port TCP bucket stands in for P2P.
const SERVICES: [Service; 10] = [
    Service { port: 80, proto: Protocol::TCP, weight: 33.0, bpp: 900, reply_prob: 0.55 },
    Service { port: 443, proto: Protocol::TCP, weight: 24.0, bpp: 850, reply_prob: 0.55 },
    Service { port: 53, proto: Protocol::UDP, weight: 16.0, bpp: 120, reply_prob: 0.80 },
    Service { port: 25, proto: Protocol::TCP, weight: 5.0, bpp: 600, reply_prob: 0.50 },
    Service { port: 22, proto: Protocol::TCP, weight: 3.0, bpp: 250, reply_prob: 0.45 },
    Service { port: 993, proto: Protocol::TCP, weight: 2.5, bpp: 400, reply_prob: 0.45 },
    Service { port: 123, proto: Protocol::UDP, weight: 2.5, bpp: 76, reply_prob: 0.70 },
    Service { port: 3389, proto: Protocol::TCP, weight: 1.5, bpp: 300, reply_prob: 0.40 },
    // High-port bucket: the concrete port is randomized per flow.
    Service { port: 0, proto: Protocol::TCP, weight: 9.0, bpp: 700, reply_prob: 0.35 },
    Service { port: 0, proto: Protocol::UDP, weight: 3.5, bpp: 450, reply_prob: 0.30 },
];

/// Parameters of the background generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackgroundConfig {
    /// Window start, epoch milliseconds.
    pub start_ms: u64,
    /// Window length, milliseconds.
    pub duration_ms: u64,
    /// Number of *request* flows to emit (replies come on top, so the
    /// total record count is roughly `1.5x` this).
    pub flows: usize,
    /// Client pool size per PoP (Zipf-ranked).
    pub clients_per_pop: usize,
    /// Server pool size per PoP (Zipf-ranked).
    pub servers_per_pop: usize,
    /// Zipf exponent for client popularity.
    pub client_skew: f64,
    /// Zipf exponent for server popularity.
    pub server_skew: f64,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        BackgroundConfig {
            start_ms: 0,
            duration_ms: 5 * 60 * 1000, // one detector interval
            flows: 20_000,
            clients_per_pop: 4_000,
            servers_per_pop: 300,
            client_skew: 0.9,
            server_skew: 1.1,
        }
    }
}

impl BackgroundConfig {
    /// Window end, epoch milliseconds.
    pub fn end_ms(&self) -> u64 {
        self.start_ms + self.duration_ms
    }
}

/// Generate benign traffic across `topology` for the configured window.
///
/// Deterministic in (`config`, `topology`, RNG seed). The records come out
/// unsorted in time, exactly like NetFlow export batches.
pub fn generate_background(
    config: &BackgroundConfig,
    topology: &Topology,
    rng: &mut Xoshiro256,
) -> Vec<FlowRecord> {
    assert!(!topology.is_empty(), "background over an empty topology");
    assert!(config.duration_ms > 0, "background window must be non-empty");

    let pop_sampler = topology.sampler();
    let service_mix = WeightedIndex::new(&SERVICES.map(|s| s.weight));
    let client_rank = Zipf::new(config.clients_per_pop.max(1), config.client_skew);
    let server_rank = Zipf::new(config.servers_per_pop.max(1), config.server_skew);
    let packets_dist = Pareto::new(1.0, 1.25);
    let duration_dist = Exponential::new(1.0 / 2_000.0); // mean 2 s

    let mut out = Vec::with_capacity(config.flows + config.flows / 2);
    for _ in 0..config.flows {
        let src_pop = &topology.pops[pop_sampler.sample(rng)];
        let dst_pop = &topology.pops[pop_sampler.sample(rng)];
        let service = &SERVICES[service_mix.sample(rng)];

        let client = src_pop.client_addr(client_rank.sample(rng) as u32);
        let server = dst_pop.server_addr(server_rank.sample(rng) as u32);
        let sport = ephemeral_port(rng);
        let dport = if service.port != 0 { service.port } else { ephemeral_port(rng) };

        let packets = packets_dist.sample_clamped(rng, 1, 50_000);
        let bytes = jittered_bytes(packets, service.bpp, rng);
        let start = config.start_ms + rng.next_below(config.duration_ms);
        let dur = (duration_dist.sample(rng) as u64).min(config.end_ms() - start);

        let flags = if service.proto == Protocol::TCP {
            // A small share of benign TCP flows are unanswered SYNs
            // (timeouts, rate-limited servers) — keeps SYN-only from being
            // an anomaly signature by itself.
            if rng.next_f64() < 0.03 {
                TcpFlags::SYN
            } else {
                TcpFlags::COMPLETE
            }
        } else {
            TcpFlags::NONE
        };

        let request = FlowRecord::builder()
            .time(start, start + dur)
            .src(client, sport)
            .dst(server, dport)
            .proto(service.proto)
            .tcp_flags(flags)
            .volume(packets, bytes)
            .pop(src_pop.id)
            .build();

        if rng.next_f64() < service.reply_prob {
            let reply_packets = (packets as f64 * (0.6 + rng.next_f64())) as u64;
            let reply_packets = reply_packets.max(1);
            let reply = FlowRecord::builder()
                .time(start, start + dur)
                .src(server, dport)
                .dst(client, sport)
                .proto(service.proto)
                .tcp_flags(flags)
                .volume(reply_packets, jittered_bytes(reply_packets, service.bpp, rng))
                .pop(dst_pop.id)
                .build();
            out.push(reply);
        }
        out.push(request);
    }
    out
}

/// Draw an ephemeral (client-side) port.
fn ephemeral_port(rng: &mut Xoshiro256) -> u16 {
    1024 + rng.next_below(64_512) as u16
}

/// Bytes for `packets` packets around a mean per-packet size, with
/// +-35% multiplicative jitter and the 64-byte minimum frame floor.
fn jittered_bytes(packets: u64, bpp: u64, rng: &mut Xoshiro256) -> u64 {
    let jitter = 0.65 + 0.7 * rng.next_f64();
    ((packets as f64) * (bpp as f64) * jitter).max(packets as f64 * 64.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small() -> Vec<FlowRecord> {
        let config = BackgroundConfig { flows: 5_000, ..BackgroundConfig::default() };
        let mut rng = Xoshiro256::seeded(42);
        generate_background(&config, &Topology::geant(), &mut rng)
    }

    #[test]
    fn emits_requests_plus_replies() {
        let flows = small();
        assert!(flows.len() >= 5_000, "lost requests: {}", flows.len());
        assert!(flows.len() <= 5_000 * 2, "too many replies: {}", flows.len());
    }

    #[test]
    fn flows_stay_inside_window() {
        let config = BackgroundConfig {
            start_ms: 10_000,
            duration_ms: 60_000,
            flows: 2_000,
            ..BackgroundConfig::default()
        };
        let mut rng = Xoshiro256::seeded(1);
        for f in generate_background(&config, &Topology::geant(), &mut rng) {
            assert!(f.start_ms >= 10_000 && f.start_ms < 70_000, "start {}", f.start_ms);
            assert!(f.end_ms <= 70_000, "end {}", f.end_ms);
            assert!(f.end_ms >= f.start_ms);
        }
    }

    #[test]
    fn port_mix_dominated_by_web_and_dns() {
        let flows = small();
        let mut by_port: HashMap<u16, usize> = HashMap::new();
        for f in &flows {
            *by_port.entry(f.dst_port).or_default() += 1;
        }
        let web = by_port.get(&80).copied().unwrap_or(0);
        let dns = by_port.get(&53).copied().unwrap_or(0);
        assert!(web > flows.len() / 20, "port 80 share too small: {web}");
        assert!(dns > flows.len() / 40, "port 53 share too small: {dns}");
    }

    #[test]
    fn host_popularity_is_skewed() {
        let flows = small();
        let mut by_dst: HashMap<std::net::Ipv4Addr, usize> = HashMap::new();
        for f in &flows {
            *by_dst.entry(f.dst_ip).or_default() += 1;
        }
        let mut counts: Vec<usize> = by_dst.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // The busiest destination should dwarf the median one.
        let top = counts[0];
        let median = counts[counts.len() / 2];
        assert!(top >= median * 5, "top {top} median {median}");
    }

    #[test]
    fn volumes_are_positive_and_heavy_tailed() {
        let flows = small();
        assert!(flows.iter().all(|f| f.packets >= 1 && f.bytes >= 64));
        let max = flows.iter().map(|f| f.packets).max().unwrap();
        let mean = flows.iter().map(|f| f.packets).sum::<u64>() / flows.len() as u64;
        assert!(max > mean * 20, "no elephants: max {max} mean {mean}");
    }

    #[test]
    fn udp_flows_carry_no_tcp_flags() {
        for f in small() {
            if f.proto == Protocol::UDP {
                assert_eq!(f.tcp_flags, TcpFlags::NONE);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let config = BackgroundConfig { flows: 1_000, ..BackgroundConfig::default() };
        let t = Topology::switch();
        let mut r1 = Xoshiro256::seeded(7);
        let mut r2 = Xoshiro256::seeded(7);
        assert_eq!(
            generate_background(&config, &t, &mut r1),
            generate_background(&config, &t, &mut r2)
        );
        let mut r3 = Xoshiro256::seeded(8);
        assert_ne!(
            generate_background(&config, &t, &mut r2),
            generate_background(&config, &t, &mut r3)
        );
    }

    #[test]
    fn pop_ids_come_from_topology() {
        let t = Topology::switch();
        let config = BackgroundConfig { flows: 500, ..BackgroundConfig::default() };
        let mut rng = Xoshiro256::seeded(3);
        for f in generate_background(&config, &t, &mut rng) {
            assert!(t.pop(f.pop).is_some(), "unknown pop {}", f.pop);
        }
    }
}

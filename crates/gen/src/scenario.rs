//! Scenario composition: background + injected anomalies + optional
//! packet sampling, built into a queryable [`FlowStore`] with exact
//! ground truth.
//!
//! A [`Scenario`] is declarative and serializable; [`Scenario::build`]
//! turns it into flows deterministically from its seed. The corpus
//! builders in [`crate::corpus`] produce the paper's two evaluation
//! campaigns out of these pieces.

use anomex_flow::record::FlowRecord;
use anomex_flow::sampling::{PacketSampler, SamplingMode, Xoshiro256};
use anomex_flow::store::{FlowStore, TimeRange, DEFAULT_BIN_WIDTH_MS};
use serde::{Deserialize, Serialize};

use crate::anomaly::AnomalySpec;
use crate::background::{generate_background, BackgroundConfig};
use crate::topology::Topology;
use crate::truth::GroundTruth;

/// Which backbone the scenario emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backbone {
    /// 18-PoP GEANT-like network (the paper's 1/100-sampled evaluation).
    Geant,
    /// 4-PoP SWITCH-like network (the paper's unsampled evaluation).
    Switch,
}

impl Backbone {
    /// Materialize the topology.
    pub fn topology(self) -> Topology {
        match self {
            Backbone::Geant => Topology::geant(),
            Backbone::Switch => Topology::switch(),
        }
    }
}

/// A declarative scenario: everything needed to regenerate one labeled
/// trace from a seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Name used in reports and campaign tables.
    pub name: String,
    /// RNG seed — the sole source of randomness.
    pub seed: u64,
    /// Which backbone topology to emulate.
    pub backbone: Backbone,
    /// Benign-traffic parameters.
    pub background: BackgroundConfig,
    /// Anomalies to inject (possibly none, for pure-noise scenarios).
    pub anomalies: Vec<AnomalySpec>,
    /// Packet-sampling ratio `1/N` applied after generation
    /// (`1` = unsampled, `100` = the GEANT regime).
    pub sampling: u32,
}

impl Scenario {
    /// A scenario with default background on the given backbone.
    pub fn new(name: impl Into<String>, seed: u64, backbone: Backbone) -> Scenario {
        Scenario {
            name: name.into(),
            seed,
            backbone,
            background: BackgroundConfig::default(),
            anomalies: Vec::new(),
            sampling: 1,
        }
    }

    /// Add one anomaly (builder style).
    pub fn with_anomaly(mut self, spec: AnomalySpec) -> Scenario {
        self.anomalies.push(spec);
        self
    }

    /// Set the sampling ratio (builder style).
    pub fn with_sampling(mut self, rate: u32) -> Scenario {
        self.sampling = rate.max(1);
        self
    }

    /// The scenario's full time window.
    pub fn window(&self) -> TimeRange {
        TimeRange::new(self.background.start_ms, self.background.end_ms())
    }

    /// Generate the trace: background plus anomalies, then sampling.
    ///
    /// Ground-truth labels are taken **before** sampling (they describe
    /// what happened on the wire); the store holds what the collector
    /// *observed* (after sampling) — the same information asymmetry the
    /// GEANT operators faced.
    pub fn build(&self) -> BuiltScenario {
        let mut rng = Xoshiro256::seeded(self.seed);
        let topology = self.backbone.topology();

        let mut flows = generate_background(&self.background, &topology, &mut rng);
        let mut truth = GroundTruth::none();
        for spec in &self.anomalies {
            let injected = spec.inject(&mut rng);
            truth.push(spec.kind, spec.clone(), &injected);
            flows.extend(injected);
        }

        let observed = if self.sampling > 1 {
            let mut sampler =
                PacketSampler::new(self.sampling, SamplingMode::Random, self.seed ^ 0x5A17_17E5);
            sampler.sample_all(&flows)
        } else {
            flows.clone()
        };

        let store = FlowStore::from_records(DEFAULT_BIN_WIDTH_MS, observed);
        BuiltScenario { scenario: self.clone(), wire_flows: flows, store, truth }
    }
}

/// The materialized scenario.
#[derive(Debug)]
pub struct BuiltScenario {
    /// The declarative source.
    pub scenario: Scenario,
    /// Every flow as sent on the wire (pre-sampling).
    pub wire_flows: Vec<FlowRecord>,
    /// What the collector stored (post-sampling) — extraction input.
    pub store: FlowStore,
    /// Exact labels for every injected anomaly.
    pub truth: GroundTruth,
}

impl BuiltScenario {
    /// Observed (post-sampling) flow count.
    pub fn observed_flows(&self) -> usize {
        self.store.len()
    }

    /// Observed flows belonging to labeled anomaly `id`.
    pub fn observed_anomalous(&self, id: usize) -> Vec<FlowRecord> {
        let label = &self.truth.anomalies[id];
        self.store
            .query(label.window(), &anomex_flow::filter::Filter::any())
            .into_iter()
            .filter(|f| label.contains(f))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::{AnomalyKind, AnomalySpec};
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn scan_scenario(sampling: u32) -> Scenario {
        let mut spec =
            AnomalySpec::template(AnomalyKind::PortScan, ip("10.3.0.99"), ip("172.16.5.5"));
        spec.flows = 8_000;
        let mut s = Scenario::new("t", 11, Backbone::Geant).with_anomaly(spec);
        s.background.flows = 4_000;
        s.sampling = sampling;
        s
    }

    #[test]
    fn build_is_deterministic() {
        let a = scan_scenario(1).build();
        let b = scan_scenario(1).build();
        assert_eq!(a.wire_flows, b.wire_flows);
        assert_eq!(a.store.len(), b.store.len());
    }

    #[test]
    fn truth_covers_injected_flows_only() {
        let built = scan_scenario(1).build();
        assert_eq!(built.truth.len(), 1);
        let label = &built.truth.anomalies[0];
        assert_eq!(label.flows, 8_000);
        let anomalous = built.wire_flows.iter().filter(|f| built.truth.is_anomalous(f)).count();
        // Background collisions with scan keys are possible but must be rare.
        assert!((8_000..8_100).contains(&anomalous), "{anomalous}");
    }

    #[test]
    fn unsampled_store_holds_everything() {
        let built = scan_scenario(1).build();
        assert_eq!(built.store.len(), built.wire_flows.len());
    }

    #[test]
    fn sampling_thins_the_store() {
        let full = scan_scenario(1).build();
        let sampled = scan_scenario(100).build();
        assert!(
            sampled.store.len() < full.store.len() / 10,
            "sampling kept {}/{}",
            sampled.store.len(),
            full.store.len()
        );
        // Ground truth still describes the wire.
        assert_eq!(sampled.truth.anomalies[0].flows, 8_000);
    }

    #[test]
    fn observed_anomalous_flows_match_labels() {
        let built = scan_scenario(1).build();
        let seen = built.observed_anomalous(0);
        assert_eq!(seen.len(), 8_000);
        assert!(seen.iter().all(|f| built.truth.anomalies[0].contains(f)));
    }

    #[test]
    fn window_spans_background() {
        let s = scan_scenario(1);
        assert_eq!(s.window().len_ms(), s.background.duration_ms);
    }

    #[test]
    fn scenario_roundtrips_through_json() {
        let s = scan_scenario(100);
        let js = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&js).unwrap();
        assert_eq!(back.name, s.name);
        assert_eq!(back.sampling, 100);
        assert_eq!(back.anomalies.len(), 1);
    }
}

//! Property-based tests for the flow substrate: codec roundtrips, filter
//! print→parse fixpoints, CIDR algebra, sampling invariants, and CRC
//! error detection.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use anomex_flow::filter::{lexer::CmpOp, Dir, Expr, Filter, Ipv4Net, Pred};
use anomex_flow::record::{FlowRecord, Protocol, TcpFlags};
use anomex_flow::sampling::{PacketSampler, SamplingMode};
use anomex_flow::store::disk;
use anomex_flow::v5::{self, ExportBase};
use anomex_flow::v9::{self, TemplateCache};

/// Arbitrary flow record with full-range fields (for v9/disk codecs).
fn arb_record() -> impl Strategy<Value = FlowRecord> {
    (
        0u64..u64::from(u32::MAX / 2), // start (uptime-representable)
        0u64..1_000_000,               // duration
        any::<u32>(),                  // src ip
        any::<u32>(),                  // dst ip
        any::<u16>(),                  // src port
        any::<u16>(),                  // dst port
        any::<u8>(),                   // proto
        0u8..64,                       // flags (6 bits)
        any::<u64>(),                  // packets
        any::<u64>(),                  // bytes
    )
        .prop_map(|(start, dur, src, dst, sp, dp, proto, flags, packets, bytes)| FlowRecord {
            start_ms: start,
            end_ms: start + dur,
            src_ip: Ipv4Addr::from(src),
            dst_ip: Ipv4Addr::from(dst),
            src_port: sp,
            dst_port: dp,
            proto: Protocol(proto),
            tcp_flags: TcpFlags(flags),
            packets,
            bytes,
            tos: 0,
            input_if: 1,
            output_if: 2,
            src_as: 65000,
            dst_as: 65001,
            pop: 0,
        })
}

/// Record constrained to what NetFlow v5 can represent.
fn arb_v5_record() -> impl Strategy<Value = FlowRecord> {
    arb_record().prop_map(|mut r| {
        r.packets = r.packets.min(u64::from(u32::MAX));
        r.bytes = r.bytes.min(u64::from(u32::MAX));
        r
    })
}

proptest! {
    #[test]
    fn v5_roundtrip(records in prop::collection::vec(arb_v5_record(), 0..30)) {
        let base = ExportBase::epoch();
        let bytes = v5::encode(&records, base, 1).unwrap();
        let pkt = v5::decode(&bytes).unwrap();
        prop_assert_eq!(pkt.records, records);
    }

    #[test]
    fn v9_roundtrip(records in prop::collection::vec(arb_record(), 0..60), source_id in 0u32..18) {
        let bytes = v9::encode(&records, ExportBase::epoch(), 0, source_id);
        let mut cache = TemplateCache::new();
        let got = v9::decode(&bytes, &mut cache).unwrap();
        // v9 sets pop from source_id; normalize the expectation.
        let want: Vec<FlowRecord> = records
            .into_iter()
            .map(|mut r| { r.pop = source_id as u16; r })
            .collect();
        prop_assert_eq!(got.records, want);
    }

    #[test]
    fn disk_roundtrip(records in prop::collection::vec(arb_record(), 0..200), width in 1u64..10_000_000) {
        let data = disk::encode(width, &records);
        let (w, got) = disk::decode(&data).unwrap();
        prop_assert_eq!(w, width);
        prop_assert_eq!(got, records);
    }

    #[test]
    fn disk_detects_any_single_bit_flip(
        records in prop::collection::vec(arb_record(), 1..20),
        flip_seed in any::<u64>(),
    ) {
        let data = disk::encode(1000, &records);
        // Flip one bit somewhere after the magic.
        let pos = 6 + (flip_seed as usize % (data.len() - 6));
        let bit = 1u8 << (flip_seed % 8);
        let mut bad = data.clone();
        bad[pos] ^= bit;
        prop_assert!(disk::decode(&bad).is_err(), "flip at byte {} undetected", pos);
    }

    #[test]
    fn cidr_contains_matches_mask_arithmetic(addr in any::<u32>(), probe in any::<u32>(), prefix in 0u8..=32) {
        let net = Ipv4Net::new(Ipv4Addr::from(addr), prefix);
        let expect = if prefix == 0 {
            true
        } else {
            (addr ^ probe) >> (32 - u32::from(prefix)) == 0
        };
        prop_assert_eq!(net.contains(Ipv4Addr::from(probe)), expect);
    }

    #[test]
    fn systematic_sampling_keeps_exactly_total_over_rate(
        packet_counts in prop::collection::vec(1u64..5_000, 1..50),
        rate in 1u32..500,
    ) {
        let flows: Vec<FlowRecord> = packet_counts
            .iter()
            .map(|&p| FlowRecord::builder().volume(p, p * 100).build())
            .collect();
        let total: u64 = packet_counts.iter().sum();
        let mut s = PacketSampler::new(rate, SamplingMode::Systematic, 0);
        let kept: u64 = s.sample_all(&flows).iter().map(|f| f.packets).sum();
        prop_assert_eq!(kept, total / u64::from(rate));
    }

    #[test]
    fn random_sampling_never_inflates(
        packets in 1u64..100_000,
        rate in 1u32..1_000,
        seed in any::<u64>(),
    ) {
        let f = FlowRecord::builder().volume(packets, packets * 64).build();
        let mut s = PacketSampler::new(rate, SamplingMode::Random, seed);
        if let Some(sampled) = s.sample(&f) {
            prop_assert!(sampled.packets <= packets);
            prop_assert!(sampled.bytes <= f.bytes);
            prop_assert!(sampled.packets >= 1);
        }
    }
}

/// Strategy for filter predicates.
fn arb_pred() -> impl Strategy<Value = Pred> {
    let dir = prop_oneof![Just(Dir::Src), Just(Dir::Dst), Just(Dir::Either)];
    let op = prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ];
    prop_oneof![
        Just(Pred::Any),
        (dir.clone(), any::<u32>()).prop_map(|(d, a)| Pred::Ip(d, Ipv4Addr::from(a))),
        (dir.clone(), any::<u32>(), 0u8..=32)
            .prop_map(|(d, a, p)| Pred::Net(d, Ipv4Net::new(Ipv4Addr::from(a), p))),
        (dir.clone(), op.clone(), any::<u16>()).prop_map(|(d, o, p)| Pred::Port(d, o, p)),
        (dir, op.clone(), any::<u32>()).prop_map(|(d, o, a)| Pred::As(d, o, a)),
        any::<u8>().prop_map(|p| Pred::Proto(Protocol(p))),
        (op.clone(), any::<u64>()).prop_map(|(o, n)| Pred::Packets(o, n)),
        (op.clone(), any::<u64>()).prop_map(|(o, n)| Pred::Bytes(o, n)),
        (op.clone(), any::<u64>()).prop_map(|(o, n)| Pred::Duration(o, n)),
        (op.clone(), 0u64..1_000_000).prop_map(|(o, n)| Pred::Bpp(o, n)),
        (op, 0u64..1_000_000).prop_map(|(o, n)| Pred::Pps(o, n)),
        (0u8..64).prop_map(|f| Pred::Flags(TcpFlags(f))),
        any::<u16>().prop_map(Pred::Pop),
    ]
}

/// Recursive strategy for whole filter expressions.
fn arb_expr() -> impl Strategy<Value = Expr> {
    arb_pred().prop_map(Expr::Pred).prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| e.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.or(b)),
        ]
    })
}

proptest! {
    #[test]
    fn filter_display_parse_fixpoint(expr in arb_expr()) {
        let filter = Filter::from_expr(expr);
        let printed = filter.to_string();
        let reparsed = Filter::parse(&printed)
            .unwrap_or_else(|e| panic!("printed form {printed:?} failed to parse: {e}"));
        prop_assert_eq!(&filter, &reparsed, "printed: {}", printed);
    }

    #[test]
    fn filter_eval_agrees_after_reprint(expr in arb_expr(), record in arb_record()) {
        let filter = Filter::from_expr(expr);
        let reparsed = Filter::parse(&filter.to_string()).unwrap();
        prop_assert_eq!(filter.matches(&record), reparsed.matches(&record));
    }

    #[test]
    fn de_morgan_not_and(expr_a in arb_expr(), expr_b in arb_expr(), record in arb_record()) {
        let lhs = expr_a.clone().and(expr_b.clone()).not();
        let rhs = expr_a.not().or(expr_b.not());
        prop_assert_eq!(lhs.matches(&record), rhs.matches(&record));
    }
}

//! Error types for the flow substrate.

use std::fmt;
use std::io;

/// Errors produced by the NetFlow v5/v9 codecs and the on-disk store codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before a complete structure could be read.
    Truncated {
        /// Bytes required to continue decoding.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The version field did not match the expected protocol version.
    BadVersion {
        /// Version the codec expected.
        expected: u16,
        /// Version found on the wire.
        got: u16,
    },
    /// A count or length field is inconsistent with the payload.
    BadLength {
        /// Human-readable description of which length failed.
        what: &'static str,
        /// The offending value.
        value: usize,
    },
    /// A v9 data flowset referenced a template that has not been seen.
    UnknownTemplate {
        /// Exporter observation domain.
        source_id: u32,
        /// The missing template id.
        template_id: u16,
    },
    /// A v9 template declared a field with an unsupported length for its type.
    BadFieldLength {
        /// IANA field type.
        field_type: u16,
        /// Declared length.
        length: u16,
    },
    /// The store file's magic number or checksum did not match.
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, have } => {
                write!(f, "truncated input: need {needed} bytes, have {have}")
            }
            CodecError::BadVersion { expected, got } => {
                write!(f, "bad version: expected {expected}, got {got}")
            }
            CodecError::BadLength { what, value } => {
                write!(f, "inconsistent length for {what}: {value}")
            }
            CodecError::UnknownTemplate { source_id, template_id } => write!(
                f,
                "data flowset references unknown template {template_id} (source {source_id})"
            ),
            CodecError::BadFieldLength { field_type, length } => {
                write!(f, "unsupported length {length} for v9 field type {field_type}")
            }
            CodecError::Corrupt(what) => write!(f, "corrupt store file: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Errors from the flow store (I/O wrapped around codec failures).
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The stored bytes failed to decode.
    Codec(CodecError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Codec(e) => write!(f, "store codec error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Codec(e) => Some(e),
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_error_messages_are_specific() {
        let e = CodecError::Truncated { needed: 48, have: 12 };
        assert!(e.to_string().contains("need 48"));
        let e = CodecError::BadVersion { expected: 5, got: 9 };
        assert!(e.to_string().contains("expected 5"));
        let e = CodecError::UnknownTemplate { source_id: 3, template_id: 260 };
        assert!(e.to_string().contains("260"));
    }

    #[test]
    fn store_error_wraps_sources() {
        let e = StoreError::from(CodecError::Corrupt("magic"));
        assert!(std::error::Error::source(&e).is_some());
        let e = StoreError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("gone"));
    }
}

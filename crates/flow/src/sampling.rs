//! Packet-sampling simulation (Sampled NetFlow).
//!
//! GEANT exports 1/100 packet-sampled NetFlow; SWITCH exports unsampled.
//! To reproduce both settings from the same synthetic trace we *thin* full
//! flow records the way a sampling router would: each packet of a flow
//! survives with probability `1/N` (random mode) or deterministically every
//! `N`-th packet (systematic mode). Flows whose packets all disappear are
//! dropped entirely — exactly the effect that makes low-flow anomalies hard
//! for flow-support mining.
//!
//! The module carries its own tiny PRNG (SplitMix64-seeded xoshiro256**)
//! so sampling is deterministic and independent of external crates.

use crate::record::FlowRecord;

/// SplitMix64: seeds the main generator and breaks up poor user seeds.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — small, fast, statistically solid PRNG.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed the generator; any seed (including 0) is acceptable.
    pub fn seeded(seed: u64) -> Xoshiro256 {
        let mut sm = SplitMix64(seed);
        Xoshiro256 { s: [sm.next(), sm.next(), sm.next(), sm.next()] }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits → uniform double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bound; bias is negligible for our n << 2^64.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Standard normal via Box-Muller (one value per call, second discarded).
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Sampling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// Independent per-packet selection with probability `1/rate`.
    Random,
    /// Deterministic every-`rate`-th packet, with a running phase carried
    /// across flows (how line cards actually do it).
    Systematic,
}

/// A packet sampler with rate `1/rate`.
#[derive(Debug, Clone)]
pub struct PacketSampler {
    rate: u32,
    mode: SamplingMode,
    rng: Xoshiro256,
    phase: u64,
}

impl PacketSampler {
    /// Create a sampler keeping one packet in `rate` (rate 1 = keep all).
    ///
    /// # Panics
    /// Panics if `rate == 0`.
    pub fn new(rate: u32, mode: SamplingMode, seed: u64) -> PacketSampler {
        assert!(rate > 0, "sampling rate must be >= 1");
        PacketSampler { rate, mode, rng: Xoshiro256::seeded(seed), phase: 0 }
    }

    /// The configured `N` of 1-in-N sampling.
    pub fn rate(&self) -> u32 {
        self.rate
    }

    /// Sample one flow. Returns `None` when no packet survives.
    ///
    /// Byte counts are scaled proportionally to surviving packets, mimicking
    /// a router that only meters sampled packets.
    pub fn sample(&mut self, flow: &FlowRecord) -> Option<FlowRecord> {
        if self.rate == 1 {
            return Some(flow.clone());
        }
        let kept = match self.mode {
            SamplingMode::Random => self.binomial(flow.packets),
            SamplingMode::Systematic => {
                let n = flow.packets;
                let rate = u64::from(self.rate);
                // Every rate-th packet of the global packet stream is
                // selected (the rate-th, 2·rate-th, …).
                let k = (self.phase + n) / rate - self.phase / rate;
                self.phase += n;
                k
            }
        };
        if kept == 0 {
            return None;
        }
        let mut sampled = flow.clone();
        sampled.bytes =
            ((flow.bytes as u128 * u128::from(kept)) / u128::from(flow.packets.max(1))) as u64;
        sampled.packets = kept;
        Some(sampled)
    }

    /// Sample a batch, dropping invisible flows.
    pub fn sample_all(&mut self, flows: &[FlowRecord]) -> Vec<FlowRecord> {
        flows.iter().filter_map(|f| self.sample(f)).collect()
    }

    /// Draw from Binomial(n, 1/rate).
    ///
    /// Exact Bernoulli loop for small `n`; for large `n` a clamped normal
    /// approximation (error far below sampling noise at those sizes).
    fn binomial(&mut self, n: u64) -> u64 {
        let rate = u64::from(self.rate);
        if n == 0 {
            return 0;
        }
        if n <= 4096 {
            let mut k = 0;
            for _ in 0..n {
                if self.rng.next_below(rate) == 0 {
                    k += 1;
                }
            }
            k
        } else {
            let p = 1.0 / rate as f64;
            let mean = n as f64 * p;
            let sd = (n as f64 * p * (1.0 - p)).sqrt();
            let draw = mean + sd * self.rng.next_gaussian();
            draw.round().clamp(0.0, n as f64) as u64
        }
    }
}

/// Renormalize sampled flows back to estimated original volumes by
/// multiplying the counters with the sampling rate.
pub fn renormalize(flows: &[FlowRecord], rate: u32) -> Vec<FlowRecord> {
    flows.iter().map(|f| f.scaled(u64::from(rate))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(packets: u64, bytes: u64) -> FlowRecord {
        FlowRecord::builder().volume(packets, bytes).build()
    }

    #[test]
    fn rate_one_is_identity() {
        let mut s = PacketSampler::new(1, SamplingMode::Random, 7);
        let f = flow(10, 1000);
        assert_eq!(s.sample(&f), Some(f));
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn zero_rate_panics() {
        let _ = PacketSampler::new(0, SamplingMode::Random, 0);
    }

    #[test]
    fn small_flows_mostly_vanish_at_1_in_100() {
        let mut s = PacketSampler::new(100, SamplingMode::Random, 42);
        let survivors = (0..1000).filter(|_| s.sample(&flow(2, 120)).is_some()).count();
        // P(survive) = 1 - 0.99^2 ≈ 2%; allow generous slack.
        assert!(survivors < 80, "got {survivors}");
        assert!(survivors > 0);
    }

    #[test]
    fn random_sampling_is_unbiased_after_renormalization() {
        let mut s = PacketSampler::new(100, SamplingMode::Random, 1);
        let original = flow(1_000_000, 500_000_000);
        let mut total_pkts = 0u64;
        let trials = 50;
        for _ in 0..trials {
            let sampled = s.sample(&original).unwrap();
            total_pkts += sampled.packets * 100;
        }
        let mean = total_pkts as f64 / trials as f64;
        let err = (mean - 1_000_000.0).abs() / 1_000_000.0;
        assert!(err < 0.02, "relative error {err}");
    }

    #[test]
    fn systematic_sampling_is_exact_in_aggregate() {
        let mut s = PacketSampler::new(10, SamplingMode::Systematic, 0);
        // 100 flows x 7 packets = 700 packets → exactly 70 sampled.
        let flows: Vec<FlowRecord> = (0..100).map(|_| flow(7, 700)).collect();
        let sampled = s.sample_all(&flows);
        let kept: u64 = sampled.iter().map(|f| f.packets).sum();
        assert_eq!(kept, 70);
    }

    #[test]
    fn systematic_phase_carries_across_flows() {
        let mut s = PacketSampler::new(4, SamplingMode::Systematic, 0);
        // Three 2-packet flows cover global packets 1..=2, 3..=4, 5..=6.
        // Every 4th packet is selected, so only the second flow (packet 4)
        // keeps anything.
        let kept: Vec<Option<u64>> =
            (0..3).map(|_| s.sample(&flow(2, 100)).map(|f| f.packets)).collect();
        assert_eq!(kept, vec![None, Some(1), None]);
    }

    #[test]
    fn bytes_scale_with_surviving_packets() {
        let mut s = PacketSampler::new(2, SamplingMode::Systematic, 0);
        let sampled = s.sample(&flow(10, 1500)).unwrap();
        assert_eq!(sampled.packets, 5);
        assert_eq!(sampled.bytes, 750);
    }

    #[test]
    fn large_flow_normal_approximation_is_reasonable() {
        let mut s = PacketSampler::new(100, SamplingMode::Random, 3);
        let f = flow(10_000_000, 10_000_000_000);
        let sampled = s.sample(&f).unwrap();
        let expected = 100_000.0;
        let err = (sampled.packets as f64 - expected).abs() / expected;
        assert!(err < 0.05, "relative error {err}");
    }

    #[test]
    fn renormalize_scales_counters() {
        let out = renormalize(&[flow(3, 100)], 100);
        assert_eq!(out[0].packets, 300);
        assert_eq!(out[0].bytes, 10_000);
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let flows: Vec<FlowRecord> = (1..200).map(|i| flow(i, i * 100)).collect();
        let a = PacketSampler::new(10, SamplingMode::Random, 99).sample_all(&flows);
        let b = PacketSampler::new(10, SamplingMode::Random, 99).sample_all(&flows);
        assert_eq!(a, b);
        let c = PacketSampler::new(10, SamplingMode::Random, 100).sample_all(&flows);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_packet_flow_never_survives() {
        let mut s = PacketSampler::new(10, SamplingMode::Random, 0);
        assert_eq!(s.sample(&flow(0, 0)), None);
    }

    #[test]
    fn xoshiro_uniformity_smoke() {
        let mut rng = Xoshiro256::seeded(123);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += rng.next_f64();
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        // below-bound draws respect the bound
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn gaussian_moments_smoke() {
        let mut rng = Xoshiro256::seeded(5);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.next_gaussian();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}

//! Time-binned flow storage — the NfDump-equivalent back-end.
//!
//! Flows are partitioned into fixed-width time bins (nfcapd-style, default
//! 5 minutes), indexed by flow start time. Queries combine a [`TimeRange`]
//! with a [`Filter`]. The store is internally synchronized
//! (`parking_lot::RwLock`) so collectors can ingest while operators query.

pub mod disk;

use std::collections::BTreeMap;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::filter::Filter;
use crate::record::FlowRecord;

/// Default bin width: 5 minutes, like nfcapd rotation.
pub const DEFAULT_BIN_WIDTH_MS: u64 = 5 * 60 * 1000;

/// A half-open time interval `[from_ms, to_ms)` in epoch milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeRange {
    /// Inclusive start.
    pub from_ms: u64,
    /// Exclusive end.
    pub to_ms: u64,
}

impl TimeRange {
    /// Build a range; `to_ms` is clamped up to `from_ms`.
    pub fn new(from_ms: u64, to_ms: u64) -> TimeRange {
        TimeRange { from_ms, to_ms: to_ms.max(from_ms) }
    }

    /// The whole timeline.
    pub fn all() -> TimeRange {
        TimeRange { from_ms: 0, to_ms: u64::MAX }
    }

    /// Length in milliseconds.
    pub fn len_ms(&self) -> u64 {
        self.to_ms - self.from_ms
    }

    /// Whether an instant falls inside.
    pub fn contains(&self, t_ms: u64) -> bool {
        t_ms >= self.from_ms && t_ms < self.to_ms
    }

    /// Whether a flow overlaps this range.
    pub fn overlaps(&self, flow: &FlowRecord) -> bool {
        flow.overlaps(self.from_ms, self.to_ms)
    }

    /// Split into consecutive sub-intervals of `width_ms` (last one clipped).
    pub fn intervals(&self, width_ms: u64) -> Vec<TimeRange> {
        assert!(width_ms > 0, "interval width must be positive");
        let mut out = Vec::new();
        let mut t = self.from_ms;
        while t < self.to_ms {
            let end = (t + width_ms).min(self.to_ms);
            out.push(TimeRange { from_ms: t, to_ms: end });
            t = end;
        }
        out
    }

    /// Index of the tumbling window containing `t_ms` on a grid of
    /// `width_ms`-wide windows anchored at `origin_ms`; `None` when
    /// `t_ms` precedes the origin.
    ///
    /// # Panics
    /// Panics if `width_ms` is zero.
    pub fn window_index(t_ms: u64, origin_ms: u64, width_ms: u64) -> Option<u64> {
        assert!(width_ms > 0, "window width must be positive");
        t_ms.checked_sub(origin_ms).map(|offset| offset / width_ms)
    }

    /// The `index`-th tumbling window on the same grid, i.e. the
    /// inverse of [`TimeRange::window_index`].
    ///
    /// # Panics
    /// Panics if `width_ms` is zero.
    pub fn window_at(index: u64, origin_ms: u64, width_ms: u64) -> TimeRange {
        assert!(width_ms > 0, "window width must be positive");
        let from = origin_ms + index * width_ms;
        TimeRange { from_ms: from, to_ms: from + width_ms }
    }
}

impl std::fmt::Display for TimeRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}..{})", self.from_ms, self.to_ms)
    }
}

/// Summary statistics of a store or query result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlowStats {
    /// Number of flow records.
    pub flows: u64,
    /// Sum of packet counters.
    pub packets: u64,
    /// Sum of byte counters.
    pub bytes: u64,
}

impl FlowStats {
    /// Accumulate one record.
    pub fn add(&mut self, r: &FlowRecord) {
        self.flows += 1;
        self.packets += r.packets;
        self.bytes += r.bytes;
    }

    /// Compute stats over a slice.
    pub fn of(flows: &[FlowRecord]) -> FlowStats {
        let mut s = FlowStats::default();
        for f in flows {
            s.add(f);
        }
        s
    }
}

/// In-memory, time-binned flow store.
#[derive(Debug)]
pub struct FlowStore {
    bin_width_ms: u64,
    inner: RwLock<BTreeMap<u64, Vec<FlowRecord>>>,
}

impl FlowStore {
    /// Create a store with the given bin width (milliseconds).
    ///
    /// # Panics
    /// Panics if `bin_width_ms` is zero.
    pub fn new(bin_width_ms: u64) -> FlowStore {
        assert!(bin_width_ms > 0, "bin width must be positive");
        FlowStore { bin_width_ms, inner: RwLock::new(BTreeMap::new()) }
    }

    /// Create a store with the nfcapd-style 5-minute bins.
    pub fn with_default_bins() -> FlowStore {
        FlowStore::new(DEFAULT_BIN_WIDTH_MS)
    }

    /// Build a store directly from records.
    pub fn from_records(bin_width_ms: u64, records: Vec<FlowRecord>) -> FlowStore {
        let store = FlowStore::new(bin_width_ms);
        store.insert_batch(records);
        store
    }

    /// The configured bin width.
    pub fn bin_width_ms(&self) -> u64 {
        self.bin_width_ms
    }

    /// Insert one record (indexed by its start time).
    pub fn insert(&self, record: FlowRecord) {
        let bin = record.start_ms / self.bin_width_ms;
        self.inner.write().entry(bin).or_default().push(record);
    }

    /// Insert many records.
    pub fn insert_batch(&self, records: Vec<FlowRecord>) {
        let mut guard = self.inner.write();
        for record in records {
            let bin = record.start_ms / self.bin_width_ms;
            guard.entry(bin).or_default().push(record);
        }
    }

    /// Total number of stored records.
    pub fn len(&self) -> usize {
        self.inner.read().values().map(Vec::len).sum()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.inner.read().values().all(Vec::is_empty)
    }

    /// Number of non-empty time bins.
    pub fn bin_count(&self) -> usize {
        self.inner.read().len()
    }

    /// Earliest start and latest end across all records, if any.
    pub fn time_span(&self) -> Option<TimeRange> {
        let guard = self.inner.read();
        let mut from = u64::MAX;
        let mut to = 0u64;
        for recs in guard.values() {
            for r in recs {
                from = from.min(r.start_ms);
                to = to.max(r.end_ms + 1);
            }
        }
        (from < u64::MAX).then(|| TimeRange::new(from, to))
    }

    /// Flows overlapping `range` and matching `filter`, ordered by start
    /// time (stable within equal timestamps).
    pub fn query(&self, range: TimeRange, filter: &Filter) -> Vec<FlowRecord> {
        let guard = self.inner.read();
        // A flow that *overlaps* the range may start in an earlier bin; we
        // conservatively scan from the beginning of time up to the range end
        // bin. Flows are indexed by start, so bins after the range end are
        // safely excluded.
        let end_bin =
            if range.to_ms == u64::MAX { u64::MAX } else { range.to_ms / self.bin_width_ms };
        let mut out: Vec<FlowRecord> = guard
            .range(..=end_bin)
            .flat_map(|(_, recs)| recs.iter())
            .filter(|r| range.overlaps(r) && filter.matches(r))
            .cloned()
            .collect();
        out.sort_by_key(|r| r.start_ms);
        out
    }

    /// Stats of the flows a query would return, without materializing them.
    pub fn query_stats(&self, range: TimeRange, filter: &Filter) -> FlowStats {
        let guard = self.inner.read();
        let end_bin =
            if range.to_ms == u64::MAX { u64::MAX } else { range.to_ms / self.bin_width_ms };
        let mut stats = FlowStats::default();
        for (_, recs) in guard.range(..=end_bin) {
            for r in recs {
                if range.overlaps(r) && filter.matches(r) {
                    stats.add(r);
                }
            }
        }
        stats
    }

    /// All records, ordered by start time.
    pub fn snapshot(&self) -> Vec<FlowRecord> {
        self.query(TimeRange::all(), &Filter::any())
    }

    /// Remove everything.
    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Protocol;
    use std::net::Ipv4Addr;

    fn rec(start: u64, end: u64, dst_port: u16) -> FlowRecord {
        FlowRecord::builder()
            .time(start, end)
            .src(Ipv4Addr::new(10, 0, 0, 1), 1000)
            .dst(Ipv4Addr::new(192, 0, 2, 1), dst_port)
            .proto(Protocol::TCP)
            .volume(2, 100)
            .build()
    }

    #[test]
    fn time_range_basics() {
        let r = TimeRange::new(100, 50); // clamps
        assert_eq!(r.len_ms(), 0);
        let r = TimeRange::new(0, 1000);
        assert!(r.contains(0));
        assert!(!r.contains(1000));
        assert_eq!(r.intervals(300).len(), 4);
        assert_eq!(r.intervals(300)[3], TimeRange::new(900, 1000));
    }

    #[test]
    #[should_panic(expected = "interval width")]
    fn zero_interval_width_panics() {
        TimeRange::new(0, 10).intervals(0);
    }

    #[test]
    fn insert_and_query_by_range() {
        let store = FlowStore::new(1000);
        store.insert(rec(100, 200, 80));
        store.insert(rec(1100, 1200, 80));
        store.insert(rec(2100, 2200, 80));
        assert_eq!(store.len(), 3);
        assert_eq!(store.bin_count(), 3);
        let hits = store.query(TimeRange::new(1000, 2000), &Filter::any());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].start_ms, 1100);
    }

    #[test]
    fn query_includes_flows_spanning_bin_boundaries() {
        let store = FlowStore::new(1000);
        // Starts in bin 0 but lasts into bin 2.
        store.insert(rec(500, 2500, 80));
        let hits = store.query(TimeRange::new(2000, 3000), &Filter::any());
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn query_applies_filter() {
        let store = FlowStore::new(1000);
        store.insert(rec(0, 10, 80));
        store.insert(rec(0, 10, 443));
        let f = Filter::parse("dst port 80").unwrap();
        assert_eq!(store.query(TimeRange::all(), &f).len(), 1);
    }

    #[test]
    fn query_results_sorted_by_start() {
        let store = FlowStore::new(1000);
        store.insert(rec(5000, 5100, 1));
        store.insert(rec(100, 200, 2));
        store.insert(rec(3000, 3100, 3));
        let hits = store.snapshot();
        let starts: Vec<u64> = hits.iter().map(|r| r.start_ms).collect();
        assert_eq!(starts, vec![100, 3000, 5000]);
    }

    #[test]
    fn stats_match_query() {
        let store = FlowStore::new(1000);
        for i in 0..10 {
            store.insert(rec(i * 100, i * 100 + 50, 80));
        }
        let stats = store.query_stats(TimeRange::all(), &Filter::any());
        assert_eq!(stats.flows, 10);
        assert_eq!(stats.packets, 20);
        assert_eq!(stats.bytes, 1000);
    }

    #[test]
    fn time_span_reflects_contents() {
        let store = FlowStore::new(1000);
        assert!(store.time_span().is_none());
        store.insert(rec(500, 900, 1));
        store.insert(rec(100, 4000, 1));
        let span = store.time_span().unwrap();
        assert_eq!(span.from_ms, 100);
        assert_eq!(span.to_ms, 4001);
    }

    #[test]
    fn clear_empties_store() {
        let store = FlowStore::new(1000);
        store.insert(rec(0, 1, 1));
        assert!(!store.is_empty());
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn concurrent_ingest_and_query() {
        use std::sync::Arc;
        let store = Arc::new(FlowStore::new(1000));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    store.insert(rec(t * 10_000 + i * 10, t * 10_000 + i * 10 + 5, 80));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 1000);
        assert_eq!(store.query(TimeRange::all(), &Filter::any()).len(), 1000);
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_width_panics() {
        FlowStore::new(0);
    }

    #[test]
    fn window_index_and_window_at_are_inverses() {
        for (t, origin, width) in [(0u64, 0u64, 60_000u64), (125_000, 5_000, 60_000), (7, 7, 1)] {
            let idx = TimeRange::window_index(t, origin, width).unwrap();
            let range = TimeRange::window_at(idx, origin, width);
            assert!(range.contains(t), "{t} not in {range} (idx {idx})");
            assert_eq!(range.len_ms(), width);
            assert_eq!((range.from_ms - origin) % width, 0);
        }
    }

    #[test]
    fn window_index_before_origin_is_none() {
        assert_eq!(TimeRange::window_index(999, 1_000, 60_000), None);
        assert_eq!(TimeRange::window_index(1_000, 1_000, 60_000), Some(0));
    }
}

//! On-disk flow store format.
//!
//! A deliberately simple, robust binary layout (one file per store):
//!
//! ```text
//! +--------+-----------+--------------+----------------+-----------+
//! | magic  | bin width | record count | records ...    | CRC-32    |
//! | 6 B    | u64 BE    | u64 BE       | 64 B each      | u32 BE    |
//! +--------+-----------+--------------+----------------+-----------+
//! ```
//!
//! The trailing CRC-32 (IEEE, hand-rolled table) covers everything after the
//! magic, so truncation and bit flips are both detected — the failure modes
//! the corruption tests inject.

use std::fs;
use std::io::Write;
use std::path::Path;

use bytes::{Buf, BufMut, BytesMut};

use crate::error::{CodecError, StoreError};
use crate::record::{FlowRecord, Protocol, TcpFlags};

use super::FlowStore;

/// File magic: "ANFX" + format version 1 + newline.
pub const MAGIC: &[u8; 6] = b"ANFX1\n";
/// Bytes per serialized record.
pub const RECORD_LEN: usize = 64;

/// CRC-32 (IEEE 802.3 polynomial, reflected).
pub fn crc32(data: &[u8]) -> u32 {
    // Table generated at first use; 256 u32s, cheap enough to compute once.
    fn table() -> &'static [u32; 256] {
        use std::sync::OnceLock;
        static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut t = [0u32; 256];
            for (i, entry) in t.iter_mut().enumerate() {
                let mut c = i as u32;
                for _ in 0..8 {
                    c = if c & 1 != 0 { 0xEDB88320 ^ (c >> 1) } else { c >> 1 };
                }
                *entry = c;
            }
            t
        })
    }
    let t = table();
    let mut crc = !0u32;
    for &b in data {
        crc = t[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

fn encode_record(buf: &mut BytesMut, r: &FlowRecord) {
    buf.put_u64(r.start_ms);
    buf.put_u64(r.end_ms);
    buf.put_u32(u32::from(r.src_ip));
    buf.put_u32(u32::from(r.dst_ip));
    buf.put_u16(r.src_port);
    buf.put_u16(r.dst_port);
    buf.put_u8(r.proto.0);
    buf.put_u8(r.tcp_flags.0);
    buf.put_u8(r.tos);
    buf.put_u8(0);
    buf.put_u64(r.packets);
    buf.put_u64(r.bytes);
    buf.put_u16(r.input_if);
    buf.put_u16(r.output_if);
    buf.put_u32(r.src_as);
    buf.put_u32(r.dst_as);
    buf.put_u16(r.pop);
    buf.put_u16(0);
}

fn decode_record(buf: &mut &[u8]) -> FlowRecord {
    let start_ms = buf.get_u64();
    let end_ms = buf.get_u64();
    let src_ip = buf.get_u32().into();
    let dst_ip = buf.get_u32().into();
    let src_port = buf.get_u16();
    let dst_port = buf.get_u16();
    let proto = Protocol(buf.get_u8());
    let tcp_flags = TcpFlags(buf.get_u8());
    let tos = buf.get_u8();
    let _pad = buf.get_u8();
    let packets = buf.get_u64();
    let bytes = buf.get_u64();
    let input_if = buf.get_u16();
    let output_if = buf.get_u16();
    let src_as = buf.get_u32();
    let dst_as = buf.get_u32();
    let pop = buf.get_u16();
    let _pad2 = buf.get_u16();
    FlowRecord {
        start_ms,
        end_ms: end_ms.max(start_ms),
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        proto,
        tcp_flags,
        packets,
        bytes,
        tos,
        input_if,
        output_if,
        src_as,
        dst_as,
        pop,
    }
}

/// Serialize records to the store format (in memory).
pub fn encode(bin_width_ms: u64, records: &[FlowRecord]) -> Vec<u8> {
    let mut body = BytesMut::with_capacity(16 + records.len() * RECORD_LEN);
    body.put_u64(bin_width_ms);
    body.put_u64(records.len() as u64);
    for r in records {
        encode_record(&mut body, r);
    }
    let crc = crc32(&body);
    let mut out = Vec::with_capacity(MAGIC.len() + body.len() + 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

/// Deserialize the store format.
///
/// # Errors
/// [`CodecError::Corrupt`] for bad magic or checksum;
/// [`CodecError::Truncated`] / [`CodecError::BadLength`] for structural
/// damage.
pub fn decode(data: &[u8]) -> Result<(u64, Vec<FlowRecord>), CodecError> {
    if data.len() < MAGIC.len() + 16 + 4 {
        return Err(CodecError::Truncated { needed: MAGIC.len() + 20, have: data.len() });
    }
    if &data[..MAGIC.len()] != MAGIC {
        return Err(CodecError::Corrupt("bad magic"));
    }
    let body = &data[MAGIC.len()..data.len() - 4];
    let stored_crc = u32::from_be_bytes(data[data.len() - 4..].try_into().unwrap());
    if crc32(body) != stored_crc {
        return Err(CodecError::Corrupt("checksum mismatch"));
    }
    let mut cursor = body;
    let bin_width_ms = cursor.get_u64();
    if bin_width_ms == 0 {
        return Err(CodecError::BadLength { what: "bin width", value: 0 });
    }
    let count = cursor.get_u64() as usize;
    if cursor.len() != count * RECORD_LEN {
        return Err(CodecError::BadLength { what: "record payload", value: cursor.len() });
    }
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        records.push(decode_record(&mut cursor));
    }
    Ok((bin_width_ms, records))
}

/// Write a store to disk.
pub fn save(store: &FlowStore, path: &Path) -> Result<(), StoreError> {
    let data = encode(store.bin_width_ms(), &store.snapshot());
    let mut file = fs::File::create(path)?;
    file.write_all(&data)?;
    file.sync_all()?;
    Ok(())
}

/// Load a store from disk.
pub fn load(path: &Path) -> Result<FlowStore, StoreError> {
    let data = fs::read(path)?;
    let (bin_width_ms, records) = decode(&data)?;
    Ok(FlowStore::from_records(bin_width_ms, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sample(i: u64) -> FlowRecord {
        FlowRecord::builder()
            .time(i * 1000, i * 1000 + 500)
            .src(Ipv4Addr::from(0x0A000000 + i as u32), (i % 65536) as u16)
            .dst(Ipv4Addr::new(192, 0, 2, (i % 250) as u8), 80)
            .volume(i + 1, (i + 1) * 100)
            .pop((i % 18) as u16)
            .asns(65000 + i as u32, 2)
            .build()
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: "123456789" → 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let records: Vec<FlowRecord> = (0..100).map(sample).collect();
        let data = encode(60_000, &records);
        let (width, got) = decode(&data).unwrap();
        assert_eq!(width, 60_000);
        assert_eq!(got, records);
    }

    #[test]
    fn empty_store_roundtrip() {
        let data = encode(1000, &[]);
        let (width, got) = decode(&data).unwrap();
        assert_eq!(width, 1000);
        assert!(got.is_empty());
    }

    #[test]
    fn detects_bad_magic() {
        let mut data = encode(1000, &[sample(0)]);
        data[0] = b'X';
        assert_eq!(decode(&data), Err(CodecError::Corrupt("bad magic")));
    }

    #[test]
    fn detects_bit_flip_anywhere_in_body() {
        let records: Vec<FlowRecord> = (0..10).map(sample).collect();
        let clean = encode(1000, &records);
        for pos in [MAGIC.len(), MAGIC.len() + 9, clean.len() / 2, clean.len() - 5] {
            let mut data = clean.clone();
            data[pos] ^= 0x40;
            assert!(
                matches!(decode(&data), Err(CodecError::Corrupt(_))),
                "bit flip at {pos} undetected"
            );
        }
    }

    #[test]
    fn detects_truncation() {
        let data = encode(1000, &[sample(0), sample(1)]);
        for cut in [3, MAGIC.len() + 10, data.len() - 1] {
            assert!(decode(&data[..cut]).is_err(), "cut at {cut} undetected");
        }
    }

    #[test]
    fn rejects_zero_bin_width() {
        // Hand-build a file with bin width 0 and a valid checksum.
        let mut body = BytesMut::new();
        body.put_u64(0);
        body.put_u64(0);
        let crc = crc32(&body);
        let mut data = MAGIC.to_vec();
        data.extend_from_slice(&body);
        data.extend_from_slice(&crc.to_be_bytes());
        assert!(matches!(decode(&data), Err(CodecError::BadLength { what: "bin width", .. })));
    }

    #[test]
    fn rejects_count_payload_mismatch() {
        // Claim 5 records but provide 1; fix up the CRC so only the length
        // check can catch it.
        let one = sample(0);
        let mut body = BytesMut::new();
        body.put_u64(1000);
        body.put_u64(5);
        super::encode_record(&mut body, &one);
        let crc = crc32(&body);
        let mut data = MAGIC.to_vec();
        data.extend_from_slice(&body);
        data.extend_from_slice(&crc.to_be_bytes());
        assert!(matches!(decode(&data), Err(CodecError::BadLength { what: "record payload", .. })));
    }

    #[test]
    fn save_load_via_filesystem() {
        let dir = std::env::temp_dir().join("anomex-flow-disk-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.anfx");
        let records: Vec<FlowRecord> = (0..50).map(sample).collect();
        let store = FlowStore::from_records(2000, records.clone());
        save(&store, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.bin_width_ms(), 2000);
        let mut want = records;
        want.sort_by_key(|r| r.start_ms);
        assert_eq!(loaded.snapshot(), want);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load(Path::new("/nonexistent/anomex-store.anfx")).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
    }

    #[test]
    fn record_len_constant_is_accurate() {
        let mut buf = BytesMut::new();
        encode_record(&mut buf, &sample(3));
        assert_eq!(buf.len(), RECORD_LEN);
    }
}

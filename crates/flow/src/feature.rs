//! Traffic features: the dimensions over which anomalies are mined.
//!
//! The paper models a flow as an itemset over its feature values
//! (srcIP, dstIP, srcPort, dstPort — we also expose the protocol). This
//! module defines the feature vocabulary shared by detectors (which report
//! *feature hints* in alarm meta-data) and the miner (which builds items
//! from feature values).

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::record::{FlowRecord, Protocol};

/// A traffic feature dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Feature {
    /// Source IPv4 address.
    SrcIp,
    /// Destination IPv4 address.
    DstIp,
    /// Source transport port.
    SrcPort,
    /// Destination transport port.
    DstPort,
    /// IP protocol number.
    Proto,
}

impl Feature {
    /// The four features the paper mines over (without protocol).
    pub const MINING: [Feature; 4] =
        [Feature::SrcIp, Feature::DstIp, Feature::SrcPort, Feature::DstPort];

    /// All defined features.
    pub const ALL: [Feature; 5] =
        [Feature::SrcIp, Feature::DstIp, Feature::SrcPort, Feature::DstPort, Feature::Proto];

    /// Stable small integer tag (used for item encoding and store layout).
    pub fn tag(self) -> u8 {
        match self {
            Feature::SrcIp => 0,
            Feature::DstIp => 1,
            Feature::SrcPort => 2,
            Feature::DstPort => 3,
            Feature::Proto => 4,
        }
    }

    /// Inverse of [`Feature::tag`].
    pub fn from_tag(tag: u8) -> Option<Feature> {
        Some(match tag {
            0 => Feature::SrcIp,
            1 => Feature::DstIp,
            2 => Feature::SrcPort,
            3 => Feature::DstPort,
            4 => Feature::Proto,
            _ => return None,
        })
    }

    /// Short column label as used in the paper's Table 1.
    pub fn label(self) -> &'static str {
        match self {
            Feature::SrcIp => "srcIP",
            Feature::DstIp => "dstIP",
            Feature::SrcPort => "srcPort",
            Feature::DstPort => "dstPort",
            Feature::Proto => "proto",
        }
    }

    /// Whether this feature's values are IP addresses.
    pub fn is_ip(self) -> bool {
        matches!(self, Feature::SrcIp | Feature::DstIp)
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A concrete value of some [`Feature`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FeatureValue {
    /// An IPv4 address (for [`Feature::SrcIp`] / [`Feature::DstIp`]).
    Ip(Ipv4Addr),
    /// A transport port (for [`Feature::SrcPort`] / [`Feature::DstPort`]).
    Port(u16),
    /// A protocol number (for [`Feature::Proto`]).
    Proto(Protocol),
}

impl FeatureValue {
    /// Raw 32-bit payload of the value (IPs as big-endian u32).
    pub fn raw(self) -> u32 {
        match self {
            FeatureValue::Ip(ip) => u32::from(ip),
            FeatureValue::Port(p) => u32::from(p),
            FeatureValue::Proto(p) => u32::from(p.0),
        }
    }

    /// Rebuild a value for `feature` from its raw payload.
    ///
    /// Returns `None` if the payload is out of range for the feature
    /// (e.g. a port above 65535).
    pub fn from_raw(feature: Feature, raw: u32) -> Option<FeatureValue> {
        Some(match feature {
            Feature::SrcIp | Feature::DstIp => FeatureValue::Ip(Ipv4Addr::from(raw)),
            Feature::SrcPort | Feature::DstPort => FeatureValue::Port(u16::try_from(raw).ok()?),
            Feature::Proto => FeatureValue::Proto(Protocol(u8::try_from(raw).ok()?)),
        })
    }
}

impl fmt::Display for FeatureValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureValue::Ip(ip) => write!(f, "{ip}"),
            FeatureValue::Port(p) => write!(f, "{p}"),
            FeatureValue::Proto(p) => write!(f, "{p}"),
        }
    }
}

/// A `(feature, value)` pair: one coordinate of a flow, one "item" in the
/// mining vocabulary, and the unit of detector meta-data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FeatureItem {
    /// Which dimension.
    pub feature: Feature,
    /// The concrete value.
    pub value: FeatureValue,
}

impl FeatureItem {
    /// Build an item, checking the value kind matches the feature.
    ///
    /// Returns `None` on kind mismatch (e.g. a port value for `SrcIp`).
    pub fn checked(feature: Feature, value: FeatureValue) -> Option<FeatureItem> {
        let ok = matches!(
            (feature, value),
            (Feature::SrcIp | Feature::DstIp, FeatureValue::Ip(_))
                | (Feature::SrcPort | Feature::DstPort, FeatureValue::Port(_))
                | (Feature::Proto, FeatureValue::Proto(_))
        );
        ok.then_some(FeatureItem { feature, value })
    }

    /// Source-IP item.
    pub fn src_ip(ip: Ipv4Addr) -> FeatureItem {
        FeatureItem { feature: Feature::SrcIp, value: FeatureValue::Ip(ip) }
    }

    /// Destination-IP item.
    pub fn dst_ip(ip: Ipv4Addr) -> FeatureItem {
        FeatureItem { feature: Feature::DstIp, value: FeatureValue::Ip(ip) }
    }

    /// Source-port item.
    pub fn src_port(port: u16) -> FeatureItem {
        FeatureItem { feature: Feature::SrcPort, value: FeatureValue::Port(port) }
    }

    /// Destination-port item.
    pub fn dst_port(port: u16) -> FeatureItem {
        FeatureItem { feature: Feature::DstPort, value: FeatureValue::Port(port) }
    }

    /// Protocol item.
    pub fn proto(proto: Protocol) -> FeatureItem {
        FeatureItem { feature: Feature::Proto, value: FeatureValue::Proto(proto) }
    }

    /// Does `record` carry this value in this dimension?
    pub fn matches(&self, record: &FlowRecord) -> bool {
        record.feature(self.feature) == self.value
    }
}

impl fmt::Display for FeatureItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.feature, self.value)
    }
}

impl FlowRecord {
    /// Project the record onto one feature dimension.
    pub fn feature(&self, feature: Feature) -> FeatureValue {
        match feature {
            Feature::SrcIp => FeatureValue::Ip(self.src_ip),
            Feature::DstIp => FeatureValue::Ip(self.dst_ip),
            Feature::SrcPort => FeatureValue::Port(self.src_port),
            Feature::DstPort => FeatureValue::Port(self.dst_port),
            Feature::Proto => FeatureValue::Proto(self.proto),
        }
    }

    /// All mining items of this record (srcIP, dstIP, srcPort, dstPort).
    pub fn mining_items(&self) -> [FeatureItem; 4] {
        [
            FeatureItem::src_ip(self.src_ip),
            FeatureItem::dst_ip(self.dst_ip),
            FeatureItem::src_port(self.src_port),
            FeatureItem::dst_port(self.dst_port),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn tags_roundtrip() {
        for f in Feature::ALL {
            assert_eq!(Feature::from_tag(f.tag()), Some(f));
        }
        assert_eq!(Feature::from_tag(9), None);
    }

    #[test]
    fn raw_roundtrip_all_kinds() {
        let cases = [
            (Feature::SrcIp, FeatureValue::Ip(ip("203.0.113.9"))),
            (Feature::DstIp, FeatureValue::Ip(ip("0.0.0.0"))),
            (Feature::SrcPort, FeatureValue::Port(65535)),
            (Feature::DstPort, FeatureValue::Port(0)),
            (Feature::Proto, FeatureValue::Proto(Protocol::UDP)),
        ];
        for (f, v) in cases {
            assert_eq!(FeatureValue::from_raw(f, v.raw()), Some(v));
        }
    }

    #[test]
    fn from_raw_rejects_out_of_range() {
        assert_eq!(FeatureValue::from_raw(Feature::SrcPort, 70_000), None);
        assert_eq!(FeatureValue::from_raw(Feature::Proto, 300), None);
        assert!(FeatureValue::from_raw(Feature::SrcIp, u32::MAX).is_some());
    }

    #[test]
    fn checked_rejects_kind_mismatch() {
        assert!(FeatureItem::checked(Feature::SrcIp, FeatureValue::Port(1)).is_none());
        assert!(FeatureItem::checked(Feature::DstPort, FeatureValue::Ip(ip("1.1.1.1"))).is_none());
        assert!(FeatureItem::checked(Feature::Proto, FeatureValue::Proto(Protocol::TCP)).is_some());
    }

    #[test]
    fn record_projection_and_matching() {
        let r = FlowRecord::builder()
            .src(ip("10.0.0.1"), 4242)
            .dst(ip("192.0.2.80"), 80)
            .proto(Protocol::TCP)
            .build();
        assert_eq!(r.feature(Feature::SrcIp), FeatureValue::Ip(ip("10.0.0.1")));
        assert_eq!(r.feature(Feature::DstPort), FeatureValue::Port(80));
        assert!(FeatureItem::dst_port(80).matches(&r));
        assert!(!FeatureItem::dst_port(443).matches(&r));
        assert!(FeatureItem::proto(Protocol::TCP).matches(&r));
    }

    #[test]
    fn mining_items_covers_four_dims() {
        let r = FlowRecord::builder().src(ip("1.1.1.1"), 1).dst(ip("2.2.2.2"), 2).build();
        let items = r.mining_items();
        assert_eq!(items.len(), 4);
        let feats: Vec<Feature> = items.iter().map(|i| i.feature).collect();
        assert_eq!(feats, Feature::MINING.to_vec());
        assert!(items.iter().all(|i| i.matches(&r)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(FeatureItem::dst_port(80).to_string(), "dstPort=80");
        assert_eq!(FeatureItem::src_ip(ip("10.0.0.1")).to_string(), "srcIP=10.0.0.1");
        assert_eq!(FeatureItem::proto(Protocol::UDP).to_string(), "proto=udp");
    }
}

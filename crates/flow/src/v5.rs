//! NetFlow v5 wire codec.
//!
//! Fixed-format export packets: a 24-byte header followed by up to 30
//! 48-byte flow records. v5 timestamps are expressed in *router uptime
//! milliseconds*; the [`ExportBase`] captures the uptime↔epoch mapping so
//! that [`FlowRecord`] keeps clean epoch-millisecond timestamps.
//!
//! The v5 format truncates what it cannot represent: 64-bit counters clamp
//! to `u32::MAX`, AS numbers to `u16`, and the ingress PoP is dropped
//! (v5 has no observation-domain field). The v9 codec preserves all of it.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::CodecError;
use crate::record::{FlowRecord, Protocol, TcpFlags};

/// Protocol version tag.
pub const VERSION: u16 = 5;
/// Header size in bytes.
pub const HEADER_LEN: usize = 24;
/// Flow record size in bytes.
pub const RECORD_LEN: usize = 48;
/// Maximum records per export packet (per the Cisco spec).
pub const MAX_RECORDS: usize = 30;

/// Mapping between router uptime and wall-clock epoch for one export packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExportBase {
    /// Router uptime at export time, milliseconds.
    pub sys_uptime_ms: u32,
    /// Wall clock at export time: seconds since the epoch.
    pub unix_secs: u32,
    /// Residual nanoseconds of the wall clock.
    pub unix_nsecs: u32,
}

impl ExportBase {
    /// Epoch milliseconds at which the router booted.
    pub fn boot_epoch_ms(&self) -> u64 {
        let wall_ms = u64::from(self.unix_secs) * 1000 + u64::from(self.unix_nsecs) / 1_000_000;
        wall_ms.saturating_sub(u64::from(self.sys_uptime_ms))
    }

    /// Convert a flow uptime timestamp to epoch milliseconds.
    pub fn uptime_to_epoch_ms(&self, uptime_ms: u32) -> u64 {
        self.boot_epoch_ms() + u64::from(uptime_ms)
    }

    /// Convert epoch milliseconds to flow uptime, clamping to the
    /// representable `u32` range.
    pub fn epoch_ms_to_uptime(&self, epoch_ms: u64) -> u32 {
        epoch_ms.saturating_sub(self.boot_epoch_ms()).min(u64::from(u32::MAX)) as u32
    }

    /// A base whose boot time is the epoch: uptime == epoch ms. Convenient
    /// for synthetic traces.
    pub fn epoch() -> ExportBase {
        ExportBase { sys_uptime_ms: 0, unix_secs: 0, unix_nsecs: 0 }
    }
}

/// A decoded v5 export packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct V5Packet {
    /// Uptime↔epoch mapping from the header.
    pub base: ExportBase,
    /// Cumulative flow-sequence counter.
    pub flow_sequence: u32,
    /// Exporter engine type.
    pub engine_type: u8,
    /// Exporter engine slot.
    pub engine_id: u8,
    /// Raw sampling field: 2 mode bits + 14 interval bits.
    pub sampling: u16,
    /// The flow records, converted to epoch time.
    pub records: Vec<FlowRecord>,
}

impl V5Packet {
    /// Sampling interval encoded in the header (1 = unsampled).
    pub fn sampling_interval(&self) -> u16 {
        let interval = self.sampling & 0x3FFF;
        if interval == 0 {
            1
        } else {
            interval
        }
    }
}

/// Encode `records` into one v5 packet. At most [`MAX_RECORDS`] records are
/// accepted.
///
/// # Errors
/// [`CodecError::BadLength`] if more than 30 records are supplied.
pub fn encode(
    records: &[FlowRecord],
    base: ExportBase,
    flow_sequence: u32,
) -> Result<Bytes, CodecError> {
    if records.len() > MAX_RECORDS {
        return Err(CodecError::BadLength { what: "v5 record count", value: records.len() });
    }
    let mut buf = BytesMut::with_capacity(HEADER_LEN + records.len() * RECORD_LEN);
    buf.put_u16(VERSION);
    buf.put_u16(records.len() as u16);
    buf.put_u32(base.sys_uptime_ms);
    buf.put_u32(base.unix_secs);
    buf.put_u32(base.unix_nsecs);
    buf.put_u32(flow_sequence);
    buf.put_u8(0); // engine_type
    buf.put_u8(0); // engine_id
    buf.put_u16(0); // sampling_interval (exporter-level sampling not used here)
    for r in records {
        encode_record(&mut buf, r, &base);
    }
    Ok(buf.freeze())
}

fn encode_record(buf: &mut BytesMut, r: &FlowRecord, base: &ExportBase) {
    buf.put_u32(u32::from(r.src_ip));
    buf.put_u32(u32::from(r.dst_ip));
    buf.put_u32(0); // nexthop
    buf.put_u16(r.input_if);
    buf.put_u16(r.output_if);
    buf.put_u32(r.packets.min(u64::from(u32::MAX)) as u32);
    buf.put_u32(r.bytes.min(u64::from(u32::MAX)) as u32);
    buf.put_u32(base.epoch_ms_to_uptime(r.start_ms));
    buf.put_u32(base.epoch_ms_to_uptime(r.end_ms));
    buf.put_u16(r.src_port);
    buf.put_u16(r.dst_port);
    buf.put_u8(0); // pad1
    buf.put_u8(r.tcp_flags.0);
    buf.put_u8(r.proto.0);
    buf.put_u8(r.tos);
    buf.put_u16(r.src_as.min(u32::from(u16::MAX)) as u16);
    buf.put_u16(r.dst_as.min(u32::from(u16::MAX)) as u16);
    buf.put_u8(0); // src_mask
    buf.put_u8(0); // dst_mask
    buf.put_u16(0); // pad2
}

/// Decode one v5 export packet.
///
/// # Errors
/// - [`CodecError::Truncated`] if the buffer is shorter than the header or
///   the advertised record count.
/// - [`CodecError::BadVersion`] if the version field is not 5.
/// - [`CodecError::BadLength`] if the header advertises more than 30 records.
pub fn decode(mut buf: &[u8]) -> Result<V5Packet, CodecError> {
    if buf.len() < HEADER_LEN {
        return Err(CodecError::Truncated { needed: HEADER_LEN, have: buf.len() });
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Err(CodecError::BadVersion { expected: VERSION, got: version });
    }
    let count = buf.get_u16() as usize;
    if count > MAX_RECORDS {
        return Err(CodecError::BadLength { what: "v5 record count", value: count });
    }
    let sys_uptime_ms = buf.get_u32();
    let unix_secs = buf.get_u32();
    let unix_nsecs = buf.get_u32();
    let flow_sequence = buf.get_u32();
    let engine_type = buf.get_u8();
    let engine_id = buf.get_u8();
    let sampling = buf.get_u16();
    let base = ExportBase { sys_uptime_ms, unix_secs, unix_nsecs };

    let need = count * RECORD_LEN;
    if buf.len() < need {
        return Err(CodecError::Truncated { needed: need, have: buf.len() });
    }
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        records.push(decode_record(&mut buf, &base));
    }
    Ok(V5Packet { base, flow_sequence, engine_type, engine_id, sampling, records })
}

fn decode_record(buf: &mut &[u8], base: &ExportBase) -> FlowRecord {
    let src_ip = buf.get_u32().into();
    let dst_ip = buf.get_u32().into();
    let _nexthop = buf.get_u32();
    let input_if = buf.get_u16();
    let output_if = buf.get_u16();
    let packets = u64::from(buf.get_u32());
    let bytes = u64::from(buf.get_u32());
    let first = buf.get_u32();
    let last = buf.get_u32();
    let src_port = buf.get_u16();
    let dst_port = buf.get_u16();
    let _pad1 = buf.get_u8();
    let tcp_flags = TcpFlags(buf.get_u8());
    let proto = Protocol(buf.get_u8());
    let tos = buf.get_u8();
    let src_as = u32::from(buf.get_u16());
    let dst_as = u32::from(buf.get_u16());
    let _src_mask = buf.get_u8();
    let _dst_mask = buf.get_u8();
    let _pad2 = buf.get_u16();

    let start_ms = base.uptime_to_epoch_ms(first);
    FlowRecord {
        start_ms,
        end_ms: base.uptime_to_epoch_ms(last).max(start_ms),
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        proto,
        tcp_flags,
        packets,
        bytes,
        tos,
        input_if,
        output_if,
        src_as,
        dst_as,
        pop: 0,
    }
}

/// Split an arbitrarily long record slice into maximally-packed v5 packets.
pub fn encode_all(
    records: &[FlowRecord],
    base: ExportBase,
    mut flow_sequence: u32,
) -> Result<Vec<Bytes>, CodecError> {
    let mut out = Vec::with_capacity(records.len().div_ceil(MAX_RECORDS));
    for chunk in records.chunks(MAX_RECORDS) {
        out.push(encode(chunk, base, flow_sequence)?);
        flow_sequence = flow_sequence.wrapping_add(chunk.len() as u32);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sample_record(start: u64) -> FlowRecord {
        FlowRecord::builder()
            .time(start, start + 1_500)
            .src(Ipv4Addr::new(10, 1, 2, 3), 5555)
            .dst(Ipv4Addr::new(192, 0, 2, 80), 80)
            .proto(Protocol::TCP)
            .tcp_flags(TcpFlags::parse("SA").unwrap())
            .volume(17, 2345)
            .asns(65001, 65002)
            .interfaces(3, 4)
            .tos(0x10)
            .build()
    }

    #[test]
    fn roundtrip_preserves_fields() {
        let base = ExportBase { sys_uptime_ms: 10_000, unix_secs: 1_600_000_000, unix_nsecs: 0 };
        let records: Vec<FlowRecord> =
            (0..7).map(|i| sample_record(base.boot_epoch_ms() + 1_000 * i)).collect();
        let bytes = encode(&records, base, 42).unwrap();
        assert_eq!(bytes.len(), HEADER_LEN + 7 * RECORD_LEN);
        let pkt = decode(&bytes).unwrap();
        assert_eq!(pkt.flow_sequence, 42);
        assert_eq!(pkt.records, records);
    }

    #[test]
    fn rejects_wrong_version() {
        let base = ExportBase::epoch();
        let bytes = encode(&[sample_record(0)], base, 0).unwrap();
        let mut bad = bytes.to_vec();
        bad[1] = 9; // version low byte
        assert_eq!(decode(&bad), Err(CodecError::BadVersion { expected: 5, got: 9 }));
    }

    #[test]
    fn rejects_truncated_header_and_body() {
        assert!(matches!(decode(&[0u8; 10]), Err(CodecError::Truncated { needed: 24, .. })));
        let bytes = encode(&[sample_record(0)], ExportBase::epoch(), 0).unwrap();
        let cut = &bytes[..HEADER_LEN + 20];
        assert!(matches!(decode(cut), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn rejects_oversized_count() {
        let records: Vec<FlowRecord> = (0..31).map(|i| sample_record(i * 10)).collect();
        assert!(matches!(
            encode(&records, ExportBase::epoch(), 0),
            Err(CodecError::BadLength { .. })
        ));
        // Forge a header claiming 31 records.
        let mut buf = BytesMut::new();
        buf.put_u16(5);
        buf.put_u16(31);
        buf.put_slice(&[0u8; 20]);
        assert!(matches!(decode(&buf), Err(CodecError::BadLength { value: 31, .. })));
    }

    #[test]
    fn counters_clamp_to_u32() {
        let mut r = sample_record(0);
        r.packets = u64::from(u32::MAX) + 5;
        r.bytes = u64::MAX;
        let bytes = encode(&[r], ExportBase::epoch(), 0).unwrap();
        let pkt = decode(&bytes).unwrap();
        assert_eq!(pkt.records[0].packets, u64::from(u32::MAX));
        assert_eq!(pkt.records[0].bytes, u64::from(u32::MAX));
    }

    #[test]
    fn asn_clamps_to_u16() {
        let mut r = sample_record(0);
        r.src_as = 4_200_000_000;
        let pkt = decode(&encode(&[r], ExportBase::epoch(), 0).unwrap()).unwrap();
        assert_eq!(pkt.records[0].src_as, u32::from(u16::MAX));
    }

    #[test]
    fn uptime_epoch_mapping() {
        let base = ExportBase { sys_uptime_ms: 60_000, unix_secs: 100, unix_nsecs: 500_000_000 };
        // wall = 100_500 ms, boot = 40_500 ms
        assert_eq!(base.boot_epoch_ms(), 40_500);
        assert_eq!(base.uptime_to_epoch_ms(1_000), 41_500);
        assert_eq!(base.epoch_ms_to_uptime(41_500), 1_000);
        // Pre-boot epochs clamp to uptime 0 rather than underflowing.
        assert_eq!(base.epoch_ms_to_uptime(10), 0);
    }

    #[test]
    fn sampling_interval_zero_means_unsampled() {
        let pkt = decode(&encode(&[], ExportBase::epoch(), 0).unwrap()).unwrap();
        assert_eq!(pkt.sampling_interval(), 1);
    }

    #[test]
    fn encode_all_chunks_and_sequences() {
        let records: Vec<FlowRecord> = (0..65).map(|i| sample_record(i * 10)).collect();
        let pkts = encode_all(&records, ExportBase::epoch(), 100).unwrap();
        assert_eq!(pkts.len(), 3);
        let p0 = decode(&pkts[0]).unwrap();
        let p1 = decode(&pkts[1]).unwrap();
        let p2 = decode(&pkts[2]).unwrap();
        assert_eq!(p0.records.len(), 30);
        assert_eq!(p1.records.len(), 30);
        assert_eq!(p2.records.len(), 5);
        assert_eq!(p0.flow_sequence, 100);
        assert_eq!(p1.flow_sequence, 130);
        assert_eq!(p2.flow_sequence, 160);
        let all: Vec<FlowRecord> = [p0.records, p1.records, p2.records].concat();
        assert_eq!(all, records);
    }

    #[test]
    fn empty_packet_roundtrip() {
        let bytes = encode(&[], ExportBase::epoch(), 7).unwrap();
        let pkt = decode(&bytes).unwrap();
        assert!(pkt.records.is_empty());
        assert_eq!(pkt.flow_sequence, 7);
    }

    #[test]
    fn end_never_precedes_start_after_decode() {
        // Forge a record whose `last` < `first` (can happen with uptime
        // wraparound on real routers); decoder must clamp.
        let base = ExportBase::epoch();
        let mut r = sample_record(5_000);
        r.end_ms = 4_000; // builder clamps, so force it below
        r.end_ms = r.start_ms; // builder invariant; emulate wrap via manual bytes
        let mut bytes = encode(&[r], base, 0).unwrap().to_vec();
        // Overwrite `last` (offset 24 header + 32..36) with a smaller value.
        bytes[HEADER_LEN + 32..HEADER_LEN + 36].copy_from_slice(&100u32.to_be_bytes());
        let pkt = decode(&bytes).unwrap();
        assert!(pkt.records[0].end_ms >= pkt.records[0].start_ms);
    }
}

//! NetFlow v9 wire codec (RFC 3954 subset).
//!
//! v9 is template-based: exporters first describe record layouts in
//! *template flowsets* (flowset id 0), then ship *data flowsets* whose id
//! names the template to decode them with. The decoder therefore carries a
//! [`TemplateCache`] across packets — exactly the statefulness collectors
//! like nfdump have to implement.
//!
//! The encoder emits a single standard template (id [`STANDARD_TEMPLATE_ID`])
//! wide enough to carry every [`FlowRecord`] field, including 64-bit
//! counters (v9 field lengths are declared per template, so `IN_BYTES` /
//! `IN_PKTS` are exported at 8 bytes) and the ingress PoP via the header's
//! `source_id`.

use std::collections::HashMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::CodecError;
use crate::record::{FlowRecord, Protocol, TcpFlags};
use crate::v5::ExportBase;

/// Protocol version tag.
pub const VERSION: u16 = 9;
/// Packet header size in bytes.
pub const HEADER_LEN: usize = 20;
/// Flowset id announcing templates.
pub const TEMPLATE_FLOWSET_ID: u16 = 0;
/// First id usable by data templates.
pub const MIN_TEMPLATE_ID: u16 = 256;
/// Template id used by [`encode`].
pub const STANDARD_TEMPLATE_ID: u16 = 400;

/// IANA field types used by this codec.
pub mod field {
    /// Incoming byte counter.
    pub const IN_BYTES: u16 = 1;
    /// Incoming packet counter.
    pub const IN_PKTS: u16 = 2;
    /// IP protocol.
    pub const PROTOCOL: u16 = 4;
    /// Type of service byte.
    pub const SRC_TOS: u16 = 5;
    /// Accumulated TCP flags.
    pub const TCP_FLAGS: u16 = 6;
    /// Source transport port.
    pub const L4_SRC_PORT: u16 = 7;
    /// Source IPv4 address.
    pub const IPV4_SRC_ADDR: u16 = 8;
    /// SNMP input interface.
    pub const INPUT_SNMP: u16 = 10;
    /// Destination transport port.
    pub const L4_DST_PORT: u16 = 11;
    /// Destination IPv4 address.
    pub const IPV4_DST_ADDR: u16 = 12;
    /// SNMP output interface.
    pub const OUTPUT_SNMP: u16 = 14;
    /// Source AS number.
    pub const SRC_AS: u16 = 16;
    /// Destination AS number.
    pub const DST_AS: u16 = 17;
    /// Uptime ms at which the last packet was switched.
    pub const LAST_SWITCHED: u16 = 21;
    /// Uptime ms at which the first packet was switched.
    pub const FIRST_SWITCHED: u16 = 22;
}

/// One `(type, length)` template field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemplateField {
    /// IANA field type.
    pub field_type: u16,
    /// Field length in bytes.
    pub length: u16,
}

/// A decoded v9 template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// Template id (>= 256).
    pub id: u16,
    /// Ordered field layout.
    pub fields: Vec<TemplateField>,
}

impl Template {
    /// Total bytes of one record encoded with this template.
    pub fn record_len(&self) -> usize {
        self.fields.iter().map(|f| usize::from(f.length)).sum()
    }

    /// The standard template used by the encoder.
    pub fn standard() -> Template {
        use field::*;
        let f = |field_type, length| TemplateField { field_type, length };
        Template {
            id: STANDARD_TEMPLATE_ID,
            fields: vec![
                f(IPV4_SRC_ADDR, 4),
                f(IPV4_DST_ADDR, 4),
                f(L4_SRC_PORT, 2),
                f(L4_DST_PORT, 2),
                f(PROTOCOL, 1),
                f(TCP_FLAGS, 1),
                f(SRC_TOS, 1),
                f(IN_PKTS, 8),
                f(IN_BYTES, 8),
                f(FIRST_SWITCHED, 4),
                f(LAST_SWITCHED, 4),
                f(INPUT_SNMP, 2),
                f(OUTPUT_SNMP, 2),
                f(SRC_AS, 4),
                f(DST_AS, 4),
            ],
        }
    }
}

/// Per-collector template state, keyed by `(source_id, template_id)`.
///
/// Real exporters re-announce templates periodically; the cache simply
/// keeps the latest definition.
#[derive(Debug, Default, Clone)]
pub struct TemplateCache {
    templates: HashMap<(u32, u16), Template>,
}

impl TemplateCache {
    /// Empty cache.
    pub fn new() -> TemplateCache {
        TemplateCache::default()
    }

    /// Register (or replace) a template for an observation domain.
    pub fn insert(&mut self, source_id: u32, template: Template) {
        self.templates.insert((source_id, template.id), template);
    }

    /// Look up a template.
    pub fn get(&self, source_id: u32, template_id: u16) -> Option<&Template> {
        self.templates.get(&(source_id, template_id))
    }

    /// Number of cached templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }
}

/// Outcome of decoding one v9 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct V9Decode {
    /// Flow records decoded from data flowsets with known templates.
    pub records: Vec<FlowRecord>,
    /// Template ids learned from this packet.
    pub templates_learned: Vec<u16>,
    /// Data flowsets skipped because their template was unknown.
    pub skipped_flowsets: Vec<u16>,
    /// Header sequence number.
    pub sequence: u32,
    /// Header observation domain (we map it to [`FlowRecord::pop`]).
    pub source_id: u32,
}

/// Encode `records` as one v9 packet carrying the standard template followed
/// by a single data flowset.
///
/// `source_id` becomes the observation domain (and the decoded records'
/// `pop`, which overrides whatever `pop` the input records carried).
pub fn encode(records: &[FlowRecord], base: ExportBase, sequence: u32, source_id: u32) -> Bytes {
    let template = Template::standard();
    let mut buf = BytesMut::with_capacity(
        HEADER_LEN + 12 + template.fields.len() * 4 + records.len() * template.record_len() + 8,
    );

    // Header. `count` = template records + data records (RFC 3954 §5.1).
    buf.put_u16(VERSION);
    buf.put_u16((1 + records.len()) as u16);
    buf.put_u32(base.sys_uptime_ms);
    buf.put_u32(base.unix_secs);
    buf.put_u32(sequence);
    buf.put_u32(source_id);

    // Template flowset.
    let tmpl_len = 4 + 4 + template.fields.len() * 4;
    buf.put_u16(TEMPLATE_FLOWSET_ID);
    buf.put_u16(tmpl_len as u16);
    buf.put_u16(template.id);
    buf.put_u16(template.fields.len() as u16);
    for f in &template.fields {
        buf.put_u16(f.field_type);
        buf.put_u16(f.length);
    }

    // Data flowset, padded to a 4-byte boundary.
    let data_payload = records.len() * template.record_len();
    let padding = (4 - (data_payload % 4)) % 4;
    buf.put_u16(template.id);
    buf.put_u16((4 + data_payload + padding) as u16);
    for r in records {
        encode_record(&mut buf, r, &base);
    }
    buf.put_bytes(0, padding);

    buf.freeze()
}

fn encode_record(buf: &mut BytesMut, r: &FlowRecord, base: &ExportBase) {
    buf.put_u32(u32::from(r.src_ip));
    buf.put_u32(u32::from(r.dst_ip));
    buf.put_u16(r.src_port);
    buf.put_u16(r.dst_port);
    buf.put_u8(r.proto.0);
    buf.put_u8(r.tcp_flags.0);
    buf.put_u8(r.tos);
    buf.put_u64(r.packets);
    buf.put_u64(r.bytes);
    buf.put_u32(base.epoch_ms_to_uptime(r.start_ms));
    buf.put_u32(base.epoch_ms_to_uptime(r.end_ms));
    buf.put_u16(r.input_if);
    buf.put_u16(r.output_if);
    buf.put_u32(r.src_as);
    buf.put_u32(r.dst_as);
}

/// Decode one v9 packet, updating `cache` with any templates it announces.
///
/// Data flowsets referencing unknown templates are *skipped* (reported in
/// [`V9Decode::skipped_flowsets`]) rather than failing the whole packet —
/// this mirrors collector behaviour when packets arrive before templates.
///
/// # Errors
/// Structural failures only: truncation, bad version, inconsistent flowset
/// lengths, or a template field too wide for its type.
pub fn decode(mut buf: &[u8], cache: &mut TemplateCache) -> Result<V9Decode, CodecError> {
    if buf.len() < HEADER_LEN {
        return Err(CodecError::Truncated { needed: HEADER_LEN, have: buf.len() });
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Err(CodecError::BadVersion { expected: VERSION, got: version });
    }
    let _count = buf.get_u16();
    let sys_uptime_ms = buf.get_u32();
    let unix_secs = buf.get_u32();
    let sequence = buf.get_u32();
    let source_id = buf.get_u32();
    let base = ExportBase { sys_uptime_ms, unix_secs, unix_nsecs: 0 };

    let mut out = V9Decode {
        records: Vec::new(),
        templates_learned: Vec::new(),
        skipped_flowsets: Vec::new(),
        sequence,
        source_id,
    };

    while !buf.is_empty() {
        if buf.len() < 4 {
            return Err(CodecError::Truncated { needed: 4, have: buf.len() });
        }
        let flowset_id = buf.get_u16();
        let flowset_len = buf.get_u16() as usize;
        if flowset_len < 4 {
            return Err(CodecError::BadLength { what: "v9 flowset length", value: flowset_len });
        }
        let body_len = flowset_len - 4;
        if buf.len() < body_len {
            return Err(CodecError::Truncated { needed: body_len, have: buf.len() });
        }
        let mut body = &buf[..body_len];
        buf.advance(body_len);

        if flowset_id == TEMPLATE_FLOWSET_ID {
            decode_templates(&mut body, source_id, cache, &mut out)?;
        } else if flowset_id >= MIN_TEMPLATE_ID {
            match cache.get(source_id, flowset_id) {
                Some(template) => {
                    let template = template.clone();
                    decode_data(&mut body, &template, &base, source_id, &mut out)?;
                }
                None => out.skipped_flowsets.push(flowset_id),
            }
        }
        // Flowset ids 1..255 are options templates/scopes: not modeled, skipped.
    }
    Ok(out)
}

fn decode_templates(
    body: &mut &[u8],
    source_id: u32,
    cache: &mut TemplateCache,
    out: &mut V9Decode,
) -> Result<(), CodecError> {
    // A template flowset may announce several templates back to back;
    // trailing padding (< 4 bytes of zeros) is permitted.
    while body.len() >= 4 {
        let id = body.get_u16();
        let field_count = body.get_u16() as usize;
        if id < MIN_TEMPLATE_ID {
            // Padding or malformed trailing bytes: stop at a zero id.
            if id == 0 && field_count == 0 {
                break;
            }
            return Err(CodecError::BadLength { what: "v9 template id", value: id as usize });
        }
        let need = field_count * 4;
        if body.len() < need {
            return Err(CodecError::Truncated { needed: need, have: body.len() });
        }
        let mut fields = Vec::with_capacity(field_count);
        for _ in 0..field_count {
            let field_type = body.get_u16();
            let length = body.get_u16();
            if length == 0 || length > 8 {
                return Err(CodecError::BadFieldLength { field_type, length });
            }
            fields.push(TemplateField { field_type, length });
        }
        cache.insert(source_id, Template { id, fields });
        out.templates_learned.push(id);
    }
    Ok(())
}

fn decode_data(
    body: &mut &[u8],
    template: &Template,
    base: &ExportBase,
    source_id: u32,
    out: &mut V9Decode,
) -> Result<(), CodecError> {
    let rec_len = template.record_len();
    if rec_len == 0 {
        return Err(CodecError::BadLength { what: "v9 template record length", value: 0 });
    }
    while body.len() >= rec_len {
        let mut r = FlowRecord {
            pop: source_id.min(u32::from(u16::MAX)) as u16,
            packets: 0,
            bytes: 0,
            ..FlowRecord::default()
        };
        let mut first: Option<u32> = None;
        let mut last: Option<u32> = None;
        for f in &template.fields {
            let v = read_uint(body, usize::from(f.length));
            apply_field(&mut r, f.field_type, v, &mut first, &mut last);
        }
        if let Some(first) = first {
            r.start_ms = base.uptime_to_epoch_ms(first);
        }
        if let Some(last) = last {
            r.end_ms = base.uptime_to_epoch_ms(last);
        }
        r.end_ms = r.end_ms.max(r.start_ms);
        out.records.push(r);
    }
    // Remaining bytes (< rec_len) are padding.
    Ok(())
}

/// Read a big-endian unsigned integer of 1..=8 bytes.
fn read_uint(body: &mut &[u8], len: usize) -> u64 {
    let mut v: u64 = 0;
    for _ in 0..len {
        v = (v << 8) | u64::from(body.get_u8());
    }
    v
}

fn apply_field(
    r: &mut FlowRecord,
    field_type: u16,
    v: u64,
    first: &mut Option<u32>,
    last: &mut Option<u32>,
) {
    use field::*;
    match field_type {
        IPV4_SRC_ADDR => r.src_ip = (v as u32).into(),
        IPV4_DST_ADDR => r.dst_ip = (v as u32).into(),
        L4_SRC_PORT => r.src_port = v as u16,
        L4_DST_PORT => r.dst_port = v as u16,
        PROTOCOL => r.proto = Protocol(v as u8),
        TCP_FLAGS => r.tcp_flags = TcpFlags(v as u8),
        SRC_TOS => r.tos = v as u8,
        IN_PKTS => r.packets = v,
        IN_BYTES => r.bytes = v,
        FIRST_SWITCHED => *first = Some(v as u32),
        LAST_SWITCHED => *last = Some(v as u32),
        INPUT_SNMP => r.input_if = v as u16,
        OUTPUT_SNMP => r.output_if = v as u16,
        SRC_AS => r.src_as = v as u32,
        DST_AS => r.dst_as = v as u32,
        _ => {} // unknown field types are decoded past and ignored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sample(i: u32) -> FlowRecord {
        FlowRecord::builder()
            .time(1_000 + u64::from(i) * 100, 2_000 + u64::from(i) * 100)
            .src(Ipv4Addr::from(0x0A000000 + i), 1024 + i as u16)
            .dst(Ipv4Addr::new(198, 51, 100, 7), 443)
            .proto(Protocol::TCP)
            .tcp_flags(TcpFlags::parse("SAF").unwrap())
            .volume(u64::from(u32::MAX) + 17, 1 << 40) // needs 64-bit counters
            .asns(3_000_000, 65_550)
            .interfaces(11, 12)
            .tos(0x20)
            .pop(5)
            .build()
    }

    #[test]
    fn roundtrip_preserves_everything_including_64bit_counters() {
        let records: Vec<FlowRecord> = (0..5).map(sample).collect();
        let bytes = encode(&records, ExportBase::epoch(), 9, 5);
        let mut cache = TemplateCache::new();
        let got = decode(&bytes, &mut cache).unwrap();
        assert_eq!(got.templates_learned, vec![STANDARD_TEMPLATE_ID]);
        assert!(got.skipped_flowsets.is_empty());
        assert_eq!(got.sequence, 9);
        assert_eq!(got.source_id, 5);
        assert_eq!(got.records, records);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn pop_comes_from_source_id() {
        let r = sample(0);
        let bytes = encode(&[r], ExportBase::epoch(), 0, 13);
        let mut cache = TemplateCache::new();
        let got = decode(&bytes, &mut cache).unwrap();
        assert_eq!(got.records[0].pop, 13);
    }

    #[test]
    fn data_before_template_is_skipped_then_decodable() {
        let records: Vec<FlowRecord> = (0..3).map(sample).collect();
        let bytes = encode(&records, ExportBase::epoch(), 0, 5);
        // Split the packet: header + template flowset | header + data flowset.
        // Simpler: decode the data-only packet with a fresh cache by
        // re-encoding and stripping the template flowset.
        let tmpl_flowset_len = 4 + 4 + Template::standard().fields.len() * 4;
        let mut data_only = bytes[..HEADER_LEN].to_vec();
        data_only.extend_from_slice(&bytes[HEADER_LEN + tmpl_flowset_len..]);

        let mut cache = TemplateCache::new();
        let first = decode(&data_only, &mut cache).unwrap();
        assert!(first.records.is_empty());
        assert_eq!(first.skipped_flowsets, vec![STANDARD_TEMPLATE_ID]);

        // Now learn the template from the full packet, then the data-only
        // packet decodes fine: the cache carries across packets.
        decode(&bytes, &mut cache).unwrap();
        let second = decode(&data_only, &mut cache).unwrap();
        assert_eq!(second.records, records);
    }

    #[test]
    fn template_cache_is_per_source() {
        let records = vec![sample(1)];
        let bytes = encode(&records, ExportBase::epoch(), 0, 5);
        let mut cache = TemplateCache::new();
        decode(&bytes, &mut cache).unwrap();
        // Same template id under a different source_id is unknown.
        let mut other = bytes.to_vec();
        other[16..20].copy_from_slice(&77u32.to_be_bytes());
        // Strip template flowset so only data remains.
        let tmpl_flowset_len = 4 + 4 + Template::standard().fields.len() * 4;
        let mut data_only = other[..HEADER_LEN].to_vec();
        data_only.extend_from_slice(&other[HEADER_LEN + tmpl_flowset_len..]);
        let got = decode(&data_only, &mut cache).unwrap();
        assert_eq!(got.skipped_flowsets, vec![STANDARD_TEMPLATE_ID]);
    }

    #[test]
    fn rejects_bad_version_and_truncation() {
        let bytes = encode(&[sample(0)], ExportBase::epoch(), 0, 1);
        let mut cache = TemplateCache::new();
        let mut bad = bytes.to_vec();
        bad[0] = 0;
        bad[1] = 5;
        assert!(matches!(
            decode(&bad, &mut cache),
            Err(CodecError::BadVersion { expected: 9, got: 5 })
        ));
        assert!(matches!(decode(&bytes[..10], &mut cache), Err(CodecError::Truncated { .. })));
        // Cut mid-flowset.
        assert!(matches!(
            decode(&bytes[..HEADER_LEN + 6], &mut cache),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_zero_length_flowset() {
        let mut buf = BytesMut::new();
        buf.put_u16(VERSION);
        buf.put_u16(0);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(1);
        buf.put_u16(256); // data flowset id
        buf.put_u16(2); // length < 4: malformed
        let mut cache = TemplateCache::new();
        assert!(matches!(decode(&buf, &mut cache), Err(CodecError::BadLength { .. })));
    }

    #[test]
    fn rejects_template_field_wider_than_8() {
        let mut buf = BytesMut::new();
        buf.put_u16(VERSION);
        buf.put_u16(1);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(1);
        // Template flowset with one 16-byte field.
        buf.put_u16(TEMPLATE_FLOWSET_ID);
        buf.put_u16(4 + 4 + 4);
        buf.put_u16(300);
        buf.put_u16(1);
        buf.put_u16(field::IN_BYTES);
        buf.put_u16(16);
        let mut cache = TemplateCache::new();
        assert!(matches!(
            decode(&buf, &mut cache),
            Err(CodecError::BadFieldLength { field_type: 1, length: 16 })
        ));
    }

    #[test]
    fn unknown_field_types_are_ignored() {
        // Template with an exotic field sandwiched between known ones.
        let mut buf = BytesMut::new();
        buf.put_u16(VERSION);
        buf.put_u16(2);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(9);
        buf.put_u16(TEMPLATE_FLOWSET_ID);
        buf.put_u16(4 + 4 + 3 * 4);
        buf.put_u16(333);
        buf.put_u16(3);
        buf.put_u16(field::IPV4_SRC_ADDR);
        buf.put_u16(4);
        buf.put_u16(999); // unknown type
        buf.put_u16(3);
        buf.put_u16(field::L4_DST_PORT);
        buf.put_u16(2);
        // Data flowset: 4+3+2 = 9 bytes payload + 3 padding.
        buf.put_u16(333);
        buf.put_u16(4 + 9 + 3);
        buf.put_u32(u32::from(Ipv4Addr::new(1, 2, 3, 4)));
        buf.put_bytes(0xAB, 3);
        buf.put_u16(8080);
        buf.put_bytes(0, 3);
        let mut cache = TemplateCache::new();
        let got = decode(&buf, &mut cache).unwrap();
        assert_eq!(got.records.len(), 1);
        assert_eq!(got.records[0].src_ip, Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(got.records[0].dst_port, 8080);
    }

    #[test]
    fn empty_records_packet_roundtrips() {
        let bytes = encode(&[], ExportBase::epoch(), 3, 2);
        let mut cache = TemplateCache::new();
        let got = decode(&bytes, &mut cache).unwrap();
        assert!(got.records.is_empty());
        assert_eq!(got.templates_learned, vec![STANDARD_TEMPLATE_ID]);
    }

    #[test]
    fn uptime_base_shifts_epochs() {
        let base = ExportBase { sys_uptime_ms: 5_000, unix_secs: 1_000, unix_nsecs: 0 };
        let r = FlowRecord::builder()
            .time(base.boot_epoch_ms() + 100, base.boot_epoch_ms() + 200)
            .volume(1, 40)
            .build();
        let bytes = encode(std::slice::from_ref(&r), base, 0, 0);
        let mut cache = TemplateCache::new();
        let got = decode(&bytes, &mut cache).unwrap();
        assert_eq!(got.records[0].start_ms, r.start_ms);
        assert_eq!(got.records[0].end_ms, r.end_ms);
    }
}

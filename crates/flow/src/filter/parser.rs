//! Recursive-descent parser for the filter language.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! expr    := and ( "or" and )*
//! and     := unary ( "and" unary )*
//! unary   := "not" unary | "(" expr ")" | pred
//! pred    := [dir] "ip" IP
//!          | [dir] "net" CIDR
//!          | [dir] "port" [cmp] NUM
//!          | [dir] "as" [cmp] NUM
//!          | "proto" (NAME | NUM)
//!          | ("packets"|"bytes"|"duration"|"bpp"|"pps") cmp NUM
//!          | "flags" FLAGSTR | "flags" "none"
//!          | "pop" NUM
//!          | "any"
//! dir     := "src" | "dst"
//! ```
//!
//! A port/AS predicate without an operator means equality
//! (`dst port 80` ≡ `dst port = 80`).

use std::fmt;

use crate::record::{Protocol, TcpFlags};

use super::lexer::{lex, CmpOp, LexError, Token};
use super::{Dir, Expr, Ipv4Net, Pred};

/// Parse failure: position (token index) plus description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Index of the offending token (input length = end of input).
    pub pos: usize,
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError { pos: e.pos, message: e.message }
    }
}

/// Parse a complete filter expression.
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(p.error(format!("unexpected trailing token {}", p.tokens[p.pos])));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn error(&self, message: String) -> ParseError {
        ParseError { pos: self.pos, message }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Token::Word(w)) if w == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_number(&mut self, what: &str) -> Result<u64, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            other => Err(self.error(format!(
                "expected {what}, found {}",
                other.map_or("end of input".to_string(), |t| t.to_string())
            ))),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_word("or") {
            let rhs = self.and_expr()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while self.eat_word("and") {
            let rhs = self.unary()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_word("not") {
            return Ok(self.unary()?.not());
        }
        if matches!(self.peek(), Some(Token::LParen)) {
            self.pos += 1;
            let inner = self.expr()?;
            match self.next() {
                Some(Token::RParen) => return Ok(inner),
                _ => return Err(self.error("expected ')'".into())),
            }
        }
        Ok(Expr::Pred(self.pred()?))
    }

    /// Optional comparison operator; equality when absent.
    fn cmp_or_eq(&mut self) -> CmpOp {
        if let Some(Token::Cmp(op)) = self.peek() {
            let op = *op;
            self.pos += 1;
            op
        } else {
            CmpOp::Eq
        }
    }

    fn required_cmp(&mut self, what: &str) -> Result<CmpOp, ParseError> {
        match self.next() {
            Some(Token::Cmp(op)) => Ok(op),
            other => Err(self.error(format!(
                "expected comparison operator after {what}, found {}",
                other.map_or("end of input".to_string(), |t| t.to_string())
            ))),
        }
    }

    fn pred(&mut self) -> Result<Pred, ParseError> {
        let dir = if self.eat_word("src") {
            Some(Dir::Src)
        } else if self.eat_word("dst") {
            Some(Dir::Dst)
        } else {
            None
        };

        let word = match self.next() {
            Some(Token::Word(w)) => w,
            other => {
                return Err(self.error(format!(
                    "expected predicate keyword, found {}",
                    other.map_or("end of input".to_string(), |t| t.to_string())
                )))
            }
        };

        let dir_or_either = dir.unwrap_or(Dir::Either);
        match word.as_str() {
            "ip" | "host" => match self.next() {
                Some(Token::Ip(ip)) => Ok(Pred::Ip(dir_or_either, ip)),
                other => Err(self.error(format!(
                    "expected IPv4 address, found {}",
                    other.map_or("end of input".to_string(), |t| t.to_string())
                ))),
            },
            "net" => match self.next() {
                Some(Token::Cidr(ip, p)) => Ok(Pred::Net(dir_or_either, Ipv4Net::new(ip, p))),
                Some(Token::Ip(ip)) => Ok(Pred::Net(dir_or_either, Ipv4Net::new(ip, 32))),
                other => Err(self.error(format!(
                    "expected CIDR network, found {}",
                    other.map_or("end of input".to_string(), |t| t.to_string())
                ))),
            },
            "port" => {
                let op = self.cmp_or_eq();
                let n = self.expect_number("port number")?;
                let port =
                    u16::try_from(n).map_err(|_| self.error(format!("port {n} out of range")))?;
                Ok(Pred::Port(dir_or_either, op, port))
            }
            "as" => {
                let op = self.cmp_or_eq();
                let n = self.expect_number("AS number")?;
                let asn = u32::try_from(n)
                    .map_err(|_| self.error(format!("AS number {n} out of range")))?;
                Ok(Pred::As(dir_or_either, op, asn))
            }
            _ if dir.is_some() => {
                Err(self.error(format!("'{word}' cannot take a src/dst qualifier")))
            }
            "proto" => match self.next() {
                Some(Token::Word(name)) => Protocol::parse(&name)
                    .map(Pred::Proto)
                    .ok_or_else(|| self.error(format!("unknown protocol {name:?}"))),
                Some(Token::Number(n)) => {
                    let p = u8::try_from(n)
                        .map_err(|_| self.error(format!("protocol {n} out of range")))?;
                    Ok(Pred::Proto(Protocol(p)))
                }
                other => Err(self.error(format!(
                    "expected protocol, found {}",
                    other.map_or("end of input".to_string(), |t| t.to_string())
                ))),
            },
            "packets" => {
                let op = self.required_cmp("packets")?;
                Ok(Pred::Packets(op, self.expect_number("packet count")?))
            }
            "bytes" => {
                let op = self.required_cmp("bytes")?;
                Ok(Pred::Bytes(op, self.expect_number("byte count")?))
            }
            "duration" => {
                let op = self.required_cmp("duration")?;
                Ok(Pred::Duration(op, self.expect_number("duration (ms)")?))
            }
            "bpp" => {
                let op = self.required_cmp("bpp")?;
                Ok(Pred::Bpp(op, self.expect_number("bytes per packet")?))
            }
            "pps" => {
                let op = self.required_cmp("pps")?;
                Ok(Pred::Pps(op, self.expect_number("packets per second")?))
            }
            "flags" => match self.next() {
                Some(Token::Word(s)) if s == "none" => Ok(Pred::Flags(TcpFlags::NONE)),
                Some(Token::Word(s)) => TcpFlags::parse(&s)
                    .map(Pred::Flags)
                    .ok_or_else(|| self.error(format!("bad flag string {s:?}"))),
                other => Err(self.error(format!(
                    "expected flag string, found {}",
                    other.map_or("end of input".to_string(), |t| t.to_string())
                ))),
            },
            "pop" => {
                let n = self.expect_number("PoP id")?;
                let p =
                    u16::try_from(n).map_err(|_| self.error(format!("PoP id {n} out of range")))?;
                Ok(Pred::Pop(p))
            }
            "any" => Ok(Pred::Any),
            other => Err(self.error(format!("unknown predicate {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FlowRecord;
    use std::net::Ipv4Addr;

    fn ok(input: &str) -> Expr {
        parse(input).unwrap_or_else(|e| panic!("parse {input:?}: {e}"))
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        // a or b and c  ==  a or (b and c)
        let e = ok("src port 1 or src port 2 and src port 3");
        match e {
            Expr::Or(lhs, rhs) => {
                assert!(matches!(*lhs, Expr::Pred(_)));
                assert!(matches!(*rhs, Expr::And(_, _)));
            }
            other => panic!("expected Or at top, got {other:?}"),
        }
    }

    #[test]
    fn parens_override_precedence() {
        let e = ok("(src port 1 or src port 2) and src port 3");
        assert!(matches!(e, Expr::And(_, _)));
    }

    #[test]
    fn not_is_right_associative_and_stacks() {
        let e = ok("not not flags S");
        let f = FlowRecord::builder().tcp_flags(TcpFlags::SYN).build();
        assert!(e.matches(&f));
        let e = ok("not flags S");
        assert!(!e.matches(&f));
    }

    #[test]
    fn implicit_equality_on_ports() {
        assert_eq!(ok("dst port 80"), ok("dst port = 80"));
    }

    #[test]
    fn directionless_predicates() {
        let e = ok("ip 10.0.0.1");
        let from = FlowRecord::builder().src(Ipv4Addr::new(10, 0, 0, 1), 1).build();
        let to = FlowRecord::builder().dst(Ipv4Addr::new(10, 0, 0, 1), 1).build();
        assert!(e.matches(&from));
        assert!(e.matches(&to));
    }

    #[test]
    fn host_is_alias_for_ip() {
        assert_eq!(ok("host 1.2.3.4"), ok("ip 1.2.3.4"));
    }

    #[test]
    fn net_accepts_bare_ip_as_host_route() {
        assert_eq!(ok("net 1.2.3.4"), ok("net 1.2.3.4/32"));
    }

    #[test]
    fn proto_by_name_and_number() {
        assert_eq!(ok("proto tcp"), ok("proto 6"));
        assert_eq!(ok("proto udp"), ok("proto 17"));
    }

    #[test]
    fn flags_none_roundtrip() {
        let e = ok("flags none");
        assert_eq!(e, Expr::Pred(Pred::Flags(TcpFlags::NONE)));
    }

    #[test]
    fn error_cases_have_positions() {
        for bad in [
            "port 80 80",
            "src proto tcp",
            "dst port",
            "packets 7", // missing operator
            "ip",
            "net 10.0.0.0/8 extra",
            "port 99999",
            "proto 300",
            "pop 70000",
            "flags XYZ",
            "()",
            "(src port 80",
            "and",
            "",
            "bogus 7",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(!err.message.is_empty(), "case {bad:?}");
        }
    }

    #[test]
    fn volume_predicates_require_operator() {
        assert!(parse("bytes > 100").is_ok());
        assert!(parse("bytes 100").is_err());
        assert!(parse("duration <= 5000").is_ok());
        assert!(parse("pps >= 10").is_ok());
        assert!(parse("bpp != 1500").is_ok());
    }

    #[test]
    fn deep_nesting_parses() {
        let mut s = String::new();
        for _ in 0..50 {
            s.push('(');
        }
        s.push_str("any");
        for _ in 0..50 {
            s.push(')');
        }
        assert!(parse(&s).is_ok());
    }

    #[test]
    fn complex_realistic_expression() {
        let e = ok("proto tcp and dst port 80 and flags S and not src net 10.0.0.0/8 \
             and packets >= 3 and (pop 2 or pop 3)");
        let f = FlowRecord::builder()
            .src(Ipv4Addr::new(172, 16, 0, 1), 55555)
            .dst(Ipv4Addr::new(192, 0, 2, 1), 80)
            .proto(Protocol::TCP)
            .tcp_flags(TcpFlags::SYN)
            .volume(5, 300)
            .pop(2)
            .build();
        assert!(e.matches(&f));
    }
}

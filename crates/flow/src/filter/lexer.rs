//! Tokenizer for the nfdump-style filter language.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// Comparison operators accepted by numeric predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=` / `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Apply the operator to two ordered values.
    pub fn eval<T: PartialOrd>(self, lhs: T, rhs: T) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        })
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Bare word: keyword, protocol name, or flag string.
    Word(String),
    /// Decimal number.
    Number(u64),
    /// Dotted-quad IPv4 literal.
    Ip(Ipv4Addr),
    /// CIDR literal `a.b.c.d/p`.
    Cidr(Ipv4Addr, u8),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// Comparison operator.
    Cmp(CmpOp),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Word(w) => write!(f, "{w}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Ip(ip) => write!(f, "{ip}"),
            Token::Cidr(ip, p) => write!(f, "{ip}/{p}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Cmp(op) => write!(f, "{op}"),
        }
    }
}

/// Lexical error: the offending byte offset and a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset into the input.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a filter expression.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Cmp(CmpOp::Le));
                    i += 2;
                } else {
                    tokens.push(Token::Cmp(CmpOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Cmp(CmpOp::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Cmp(CmpOp::Gt));
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                } else {
                    i += 1;
                }
                tokens.push(Token::Cmp(CmpOp::Eq));
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Cmp(CmpOp::Ne));
                    i += 2;
                } else {
                    return Err(LexError { pos: i, message: "expected '!=' ".into() });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || bytes[i] == b'.' || bytes[i] == b'/')
                {
                    i += 1;
                }
                tokens.push(numeric_token(&input[start..i], start)?);
            }
            c if c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'-')
                {
                    i += 1;
                }
                tokens.push(Token::Word(input[start..i].to_ascii_lowercase()));
            }
            other => {
                return Err(LexError { pos: i, message: format!("unexpected character {other:?}") })
            }
        }
    }
    Ok(tokens)
}

/// Classify a digit-initiated token: number, IP, or CIDR.
fn numeric_token(text: &str, pos: usize) -> Result<Token, LexError> {
    if let Some((addr, prefix)) = text.split_once('/') {
        let ip: Ipv4Addr = addr
            .parse()
            .map_err(|_| LexError { pos, message: format!("bad IPv4 address {addr:?}") })?;
        let p: u8 = prefix
            .parse()
            .map_err(|_| LexError { pos, message: format!("bad prefix length {prefix:?}") })?;
        if p > 32 {
            return Err(LexError { pos, message: format!("prefix length {p} > 32") });
        }
        return Ok(Token::Cidr(ip, p));
    }
    if text.contains('.') {
        let ip: Ipv4Addr = text
            .parse()
            .map_err(|_| LexError { pos, message: format!("bad IPv4 address {text:?}") })?;
        return Ok(Token::Ip(ip));
    }
    let n: u64 =
        text.parse().map_err(|_| LexError { pos, message: format!("bad number {text:?}") })?;
    Ok(Token::Number(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_mixed_expression() {
        let toks = lex("src ip 10.0.0.1 and (dst port 80 or packets >= 100)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("src".into()),
                Token::Word("ip".into()),
                Token::Ip("10.0.0.1".parse().unwrap()),
                Token::Word("and".into()),
                Token::LParen,
                Token::Word("dst".into()),
                Token::Word("port".into()),
                Token::Number(80),
                Token::Word("or".into()),
                Token::Word("packets".into()),
                Token::Cmp(CmpOp::Ge),
                Token::Number(100),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn lexes_cidr_and_operators() {
        let toks = lex("net 192.168.0.0/16 and bytes != 0 and pps < 5").unwrap();
        assert!(toks.contains(&Token::Cidr("192.168.0.0".parse().unwrap(), 16)));
        assert!(toks.contains(&Token::Cmp(CmpOp::Ne)));
        assert!(toks.contains(&Token::Cmp(CmpOp::Lt)));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = lex("SRC IP 1.2.3.4").unwrap();
        assert_eq!(toks[0], Token::Word("src".into()));
        assert_eq!(toks[1], Token::Word("ip".into()));
    }

    #[test]
    fn double_equals_is_eq() {
        assert_eq!(
            lex("packets == 3").unwrap(),
            vec![Token::Word("packets".into()), Token::Cmp(CmpOp::Eq), Token::Number(3)]
        );
    }

    #[test]
    fn rejects_bad_ip_and_prefix() {
        assert!(lex("ip 300.1.1.1").is_err());
        assert!(lex("net 10.0.0.0/40").is_err());
        assert!(lex("ip 1.2.3").is_err());
    }

    #[test]
    fn rejects_stray_characters() {
        let err = lex("port 80 & port 443").unwrap_err();
        assert_eq!(err.pos, 8);
        assert!(lex("port #80").is_err());
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn empty_input_is_no_tokens() {
        assert_eq!(lex("   ").unwrap(), vec![]);
    }

    #[test]
    fn cmp_op_eval_table() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Gt.eval(3, 2));
        assert!(CmpOp::Ge.eval(2, 2));
        assert!(CmpOp::Eq.eval(2, 2));
        assert!(CmpOp::Ne.eval(1, 2));
        assert!(!CmpOp::Lt.eval(2, 2));
    }
}

//! nfdump-style flow filter language.
//!
//! The paper's system sits on top of NfDump; operators drill into itemsets
//! by filtering raw flows. This module provides the equivalent substrate: a
//! small expression language over flow records,
//!
//! ```text
//! src ip 10.0.0.1 and (dst port 80 or dst port 443) and packets >= 10
//! proto udp and not dst net 192.168.0.0/16
//! flags S and bpp < 60
//! ```
//!
//! parsed into an [`Expr`] AST evaluated directly against [`FlowRecord`]s.
//! `Display` prints a canonical form that re-parses to the same AST, which
//! the property tests exploit.

pub mod lexer;
pub mod parser;

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::feature::{Feature, FeatureItem, FeatureValue};
use crate::record::{FlowRecord, Protocol, TcpFlags};

pub use lexer::{CmpOp, LexError};
pub use parser::ParseError;

/// An IPv4 network in CIDR notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Net {
    /// Network address (host bits need not be zero; they are masked off).
    pub addr: Ipv4Addr,
    /// Prefix length, `0..=32`.
    pub prefix: u8,
}

impl Ipv4Net {
    /// Build a network, clamping the prefix to 32.
    pub fn new(addr: Ipv4Addr, prefix: u8) -> Ipv4Net {
        Ipv4Net { addr, prefix: prefix.min(32) }
    }

    /// The prefix mask as a u32.
    pub fn mask(&self) -> u32 {
        if self.prefix == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(self.prefix))
        }
    }

    /// Whether `ip` falls inside this network.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) ^ u32::from(self.addr)) & self.mask() == 0
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.prefix)
    }
}

/// Direction qualifier for address/port predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// Match the source field only.
    Src,
    /// Match the destination field only.
    Dst,
    /// Match either field.
    Either,
}

impl Dir {
    fn prefix(self) -> &'static str {
        match self {
            Dir::Src => "src ",
            Dir::Dst => "dst ",
            Dir::Either => "",
        }
    }
}

/// A leaf predicate over one flow record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pred {
    /// Matches every record.
    Any,
    /// Exact address match in the given direction.
    Ip(Dir, Ipv4Addr),
    /// CIDR containment in the given direction.
    Net(Dir, Ipv4Net),
    /// Port comparison in the given direction.
    Port(Dir, CmpOp, u16),
    /// AS-number comparison in the given direction.
    As(Dir, CmpOp, u32),
    /// Protocol equality.
    Proto(Protocol),
    /// Packet-count comparison.
    Packets(CmpOp, u64),
    /// Byte-count comparison.
    Bytes(CmpOp, u64),
    /// Duration comparison (milliseconds).
    Duration(CmpOp, u64),
    /// Bytes-per-packet comparison.
    Bpp(CmpOp, u64),
    /// Packets-per-second comparison.
    Pps(CmpOp, u64),
    /// All the given TCP flags are set.
    Flags(TcpFlags),
    /// Ingress point of presence equality.
    Pop(u16),
}

impl Pred {
    /// Evaluate against one record.
    pub fn matches(&self, r: &FlowRecord) -> bool {
        match *self {
            Pred::Any => true,
            Pred::Ip(dir, ip) => match dir {
                Dir::Src => r.src_ip == ip,
                Dir::Dst => r.dst_ip == ip,
                Dir::Either => r.src_ip == ip || r.dst_ip == ip,
            },
            Pred::Net(dir, net) => match dir {
                Dir::Src => net.contains(r.src_ip),
                Dir::Dst => net.contains(r.dst_ip),
                Dir::Either => net.contains(r.src_ip) || net.contains(r.dst_ip),
            },
            Pred::Port(dir, op, p) => match dir {
                Dir::Src => op.eval(r.src_port, p),
                Dir::Dst => op.eval(r.dst_port, p),
                Dir::Either => op.eval(r.src_port, p) || op.eval(r.dst_port, p),
            },
            Pred::As(dir, op, asn) => match dir {
                Dir::Src => op.eval(r.src_as, asn),
                Dir::Dst => op.eval(r.dst_as, asn),
                Dir::Either => op.eval(r.src_as, asn) || op.eval(r.dst_as, asn),
            },
            Pred::Proto(p) => r.proto == p,
            Pred::Packets(op, n) => op.eval(r.packets, n),
            Pred::Bytes(op, n) => op.eval(r.bytes, n),
            Pred::Duration(op, n) => op.eval(r.duration_ms(), n),
            Pred::Bpp(op, n) => op.eval(r.bytes_per_packet(), n as f64),
            Pred::Pps(op, n) => op.eval(r.pps(), n as f64),
            Pred::Flags(flags) => r.tcp_flags.contains(flags),
            Pred::Pop(p) => r.pop == p,
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Pred::Any => write!(f, "any"),
            Pred::Ip(dir, ip) => write!(f, "{}ip {ip}", dir.prefix()),
            Pred::Net(dir, net) => write!(f, "{}net {net}", dir.prefix()),
            Pred::Port(dir, op, p) => write!(f, "{}port {op} {p}", dir.prefix()),
            Pred::As(dir, op, asn) => write!(f, "{}as {op} {asn}", dir.prefix()),
            Pred::Proto(p) => write!(f, "proto {p}"),
            Pred::Packets(op, n) => write!(f, "packets {op} {n}"),
            Pred::Bytes(op, n) => write!(f, "bytes {op} {n}"),
            Pred::Duration(op, n) => write!(f, "duration {op} {n}"),
            Pred::Bpp(op, n) => write!(f, "bpp {op} {n}"),
            Pred::Pps(op, n) => write!(f, "pps {op} {n}"),
            Pred::Flags(flags) => {
                write!(f, "flags ")?;
                let mut any = false;
                for (bit, ch) in [
                    (TcpFlags::FIN, 'F'),
                    (TcpFlags::SYN, 'S'),
                    (TcpFlags::RST, 'R'),
                    (TcpFlags::PSH, 'P'),
                    (TcpFlags::ACK, 'A'),
                    (TcpFlags::URG, 'U'),
                ] {
                    if flags.contains(bit) {
                        write!(f, "{ch}")?;
                        any = true;
                    }
                }
                if !any {
                    // `flags none` parses back to the empty flag set.
                    write!(f, "none")?;
                }
                Ok(())
            }
            Pred::Pop(p) => write!(f, "pop {p}"),
        }
    }
}

/// A boolean filter expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expr {
    /// Leaf predicate.
    Pred(Pred),
    /// Negation.
    Not(Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Evaluate against one record.
    pub fn matches(&self, r: &FlowRecord) -> bool {
        match self {
            Expr::Pred(p) => p.matches(r),
            Expr::Not(e) => !e.matches(r),
            Expr::And(a, b) => a.matches(r) && b.matches(r),
            Expr::Or(a, b) => a.matches(r) || b.matches(r),
        }
    }

    /// Conjunction helper.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Pred(p) => write!(f, "{p}"),
            Expr::Not(e) => write!(f, "not ({e})"),
            Expr::And(a, b) => write!(f, "({a} and {b})"),
            Expr::Or(a, b) => write!(f, "({a} or {b})"),
        }
    }
}

/// A compiled filter: the user-facing entry point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Filter {
    expr: Expr,
}

impl Filter {
    /// Parse a filter expression.
    ///
    /// # Errors
    /// Returns a [`ParseError`] describing the first offending token.
    pub fn parse(input: &str) -> Result<Filter, ParseError> {
        parser::parse(input).map(|expr| Filter { expr })
    }

    /// The match-everything filter.
    pub fn any() -> Filter {
        Filter { expr: Expr::Pred(Pred::Any) }
    }

    /// Wrap an already-built expression.
    pub fn from_expr(expr: Expr) -> Filter {
        Filter { expr }
    }

    /// Borrow the underlying expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Evaluate against one record.
    pub fn matches(&self, r: &FlowRecord) -> bool {
        self.expr.matches(r)
    }

    /// Count matches in a slice.
    pub fn count<'a, I: IntoIterator<Item = &'a FlowRecord>>(&self, flows: I) -> usize {
        flows.into_iter().filter(|r| self.matches(r)).count()
    }

    /// Build the *union* filter of detector meta-data hints: a record is a
    /// candidate if it matches **any** hinted feature value. This is the
    /// candidate-selection semantics of the paper (§2: the system "selects
    /// flows … and tries all possible combinations of their union").
    ///
    /// An empty hint list yields [`Filter::any`] — with no meta-data the
    /// whole interval is the candidate set.
    pub fn union_of_hints(hints: &[FeatureItem]) -> Filter {
        let mut expr: Option<Expr> = None;
        for hint in hints {
            let pred = match (hint.feature, hint.value) {
                (Feature::SrcIp, FeatureValue::Ip(ip)) => Pred::Ip(Dir::Src, ip),
                (Feature::DstIp, FeatureValue::Ip(ip)) => Pred::Ip(Dir::Dst, ip),
                (Feature::SrcPort, FeatureValue::Port(p)) => Pred::Port(Dir::Src, CmpOp::Eq, p),
                (Feature::DstPort, FeatureValue::Port(p)) => Pred::Port(Dir::Dst, CmpOp::Eq, p),
                (Feature::Proto, FeatureValue::Proto(p)) => Pred::Proto(p),
                // Kind-mismatched hints cannot match anything; skip them.
                _ => continue,
            };
            let leaf = Expr::Pred(pred);
            expr = Some(match expr {
                None => leaf,
                Some(e) => e.or(leaf),
            });
        }
        Filter { expr: expr.unwrap_or(Expr::Pred(Pred::Any)) }
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)
    }
}

impl std::str::FromStr for Filter {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Filter::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn flow(src: &str, sp: u16, dst: &str, dp: u16, proto: Protocol) -> FlowRecord {
        FlowRecord::builder()
            .src(ip(src), sp)
            .dst(ip(dst), dp)
            .proto(proto)
            .volume(10, 1000)
            .time(0, 1000)
            .build()
    }

    #[test]
    fn cidr_containment() {
        let net = Ipv4Net::new(ip("10.0.0.0"), 8);
        assert!(net.contains(ip("10.255.1.2")));
        assert!(!net.contains(ip("11.0.0.1")));
        let all = Ipv4Net::new(ip("0.0.0.0"), 0);
        assert!(all.contains(ip("255.255.255.255")));
        let host = Ipv4Net::new(ip("192.0.2.1"), 32);
        assert!(host.contains(ip("192.0.2.1")));
        assert!(!host.contains(ip("192.0.2.2")));
    }

    #[test]
    fn cidr_masks_host_bits() {
        let net = Ipv4Net::new(ip("10.1.2.3"), 16);
        assert!(net.contains(ip("10.1.200.200")));
        assert!(!net.contains(ip("10.2.2.3")));
    }

    #[test]
    fn direction_semantics() {
        let f = flow("10.0.0.1", 5555, "192.0.2.1", 80, Protocol::TCP);
        assert!(Pred::Ip(Dir::Src, ip("10.0.0.1")).matches(&f));
        assert!(!Pred::Ip(Dir::Dst, ip("10.0.0.1")).matches(&f));
        assert!(Pred::Ip(Dir::Either, ip("10.0.0.1")).matches(&f));
        assert!(Pred::Port(Dir::Either, CmpOp::Eq, 80).matches(&f));
        assert!(!Pred::Port(Dir::Src, CmpOp::Eq, 80).matches(&f));
    }

    #[test]
    fn rate_predicates() {
        // 10 packets / 1000 bytes over 1 s → pps 10, bpp 100.
        let f = flow("1.1.1.1", 1, "2.2.2.2", 2, Protocol::UDP);
        assert!(Pred::Pps(CmpOp::Ge, 10).matches(&f));
        assert!(!Pred::Pps(CmpOp::Gt, 10).matches(&f));
        assert!(Pred::Bpp(CmpOp::Eq, 100).matches(&f));
    }

    #[test]
    fn boolean_combinators() {
        let f = flow("10.0.0.1", 5555, "192.0.2.1", 80, Protocol::TCP);
        let e = Expr::Pred(Pred::Proto(Protocol::TCP)).and(Expr::Pred(Pred::Port(
            Dir::Dst,
            CmpOp::Eq,
            80,
        )));
        assert!(e.matches(&f));
        let e2 = e.clone().not();
        assert!(!e2.matches(&f));
        let e3 = e2.or(Expr::Pred(Pred::Any));
        assert!(e3.matches(&f));
    }

    #[test]
    fn union_of_hints_is_or_semantics() {
        let hints = vec![FeatureItem::src_ip(ip("10.0.0.1")), FeatureItem::dst_port(80)];
        let filter = Filter::union_of_hints(&hints);
        // Matches on either hint alone.
        assert!(filter.matches(&flow("10.0.0.1", 1, "9.9.9.9", 9, Protocol::TCP)));
        assert!(filter.matches(&flow("8.8.8.8", 1, "9.9.9.9", 80, Protocol::TCP)));
        assert!(!filter.matches(&flow("8.8.8.8", 1, "9.9.9.9", 81, Protocol::TCP)));
    }

    #[test]
    fn empty_hints_match_everything() {
        let filter = Filter::union_of_hints(&[]);
        assert!(filter.matches(&flow("8.8.8.8", 1, "9.9.9.9", 81, Protocol::UDP)));
        assert_eq!(filter.to_string(), "any");
    }

    #[test]
    fn filter_count() {
        let flows = vec![
            flow("10.0.0.1", 1, "2.2.2.2", 80, Protocol::TCP),
            flow("10.0.0.2", 1, "2.2.2.2", 80, Protocol::TCP),
            flow("10.0.0.3", 1, "2.2.2.2", 443, Protocol::TCP),
        ];
        let f = Filter::parse("dst port 80").unwrap();
        assert_eq!(f.count(&flows), 2);
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let cases = [
            "src ip 10.0.0.1",
            "(proto tcp and dst port = 80)",
            "not (flags S)",
            "((packets > 100 or bytes <= 5) and pop 3)",
            "any",
            "dst net 10.0.0.0/24",
        ];
        for case in cases {
            let f = Filter::parse(case).unwrap();
            let printed = f.to_string();
            let reparsed = Filter::parse(&printed).unwrap();
            assert_eq!(f, reparsed, "case {case:?} printed as {printed:?}");
        }
    }
}

//! Flow record model.
//!
//! A [`FlowRecord`] is the unit of data everything in this workspace operates
//! on: one unidirectional NetFlow-style flow with its 5-tuple key, timing and
//! volume counters, plus backbone context (ingress point of presence,
//! autonomous systems, interfaces).

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// IP protocol number newtype.
///
/// Only a handful of protocols matter for anomaly extraction; the rest are
/// carried through verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Protocol(pub u8);

impl Protocol {
    /// ICMP (protocol number 1).
    pub const ICMP: Protocol = Protocol(1);
    /// TCP (protocol number 6).
    pub const TCP: Protocol = Protocol(6);
    /// UDP (protocol number 17).
    pub const UDP: Protocol = Protocol(17);

    /// Protocol name if well known (`tcp`, `udp`, `icmp`), else `None`.
    pub fn name(self) -> Option<&'static str> {
        match self {
            Protocol::ICMP => Some("icmp"),
            Protocol::TCP => Some("tcp"),
            Protocol::UDP => Some("udp"),
            _ => None,
        }
    }

    /// Parse a protocol from a name or a decimal number.
    pub fn parse(s: &str) -> Option<Protocol> {
        match s.to_ascii_lowercase().as_str() {
            "tcp" => Some(Protocol::TCP),
            "udp" => Some(Protocol::UDP),
            "icmp" => Some(Protocol::ICMP),
            other => other.parse::<u8>().ok().map(Protocol),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(n) => f.write_str(n),
            None => write!(f, "{}", self.0),
        }
    }
}

/// TCP flags accumulated over a flow, as exported by NetFlow.
///
/// Hand-rolled bitflags: the standard six flag bits in their wire positions.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// No flags set.
    pub const NONE: TcpFlags = TcpFlags(0);
    /// FIN: sender finished.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: connection setup.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: connection reset.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH: push buffered data.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK: acknowledgment.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG: urgent pointer significant.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// A normal completed connection's accumulated flags: SYN+ACK+PSH+FIN.
    pub const COMPLETE: TcpFlags = TcpFlags(0x01 | 0x02 | 0x08 | 0x10);

    /// Whether every flag in `other` is also set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// True when exactly SYN is set — signature of one-packet scan probes
    /// and SYN-flood members.
    pub fn is_syn_only(self) -> bool {
        self.0 == TcpFlags::SYN.0
    }

    /// Parse the nfdump-style compact form, e.g. `"S"`, `"SA"`, `"APSF"`.
    pub fn parse(s: &str) -> Option<TcpFlags> {
        let mut flags = TcpFlags::NONE;
        for c in s.chars() {
            flags = flags.union(match c.to_ascii_uppercase() {
                'F' => TcpFlags::FIN,
                'S' => TcpFlags::SYN,
                'R' => TcpFlags::RST,
                'P' => TcpFlags::PSH,
                'A' => TcpFlags::ACK,
                'U' => TcpFlags::URG,
                _ => return None,
            });
        }
        Some(flags)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // nfdump-style fixed-order string; '.' for unset bits.
        for (bit, ch) in [
            (TcpFlags::URG, 'U'),
            (TcpFlags::ACK, 'A'),
            (TcpFlags::PSH, 'P'),
            (TcpFlags::RST, 'R'),
            (TcpFlags::SYN, 'S'),
            (TcpFlags::FIN, 'F'),
        ] {
            if self.contains(bit) {
                write!(f, "{ch}")?;
            } else {
                write!(f, ".")?;
            }
        }
        Ok(())
    }
}

/// The classic 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port (0 for portless protocols).
    pub src_port: u16,
    /// Destination transport port (0 for portless protocols).
    pub dst_port: u16,
    /// IP protocol.
    pub proto: Protocol,
}

impl FlowKey {
    /// A stable 64-bit hash of the 5-tuple (FNV-1a over the wire-order
    /// bytes). Unlike `std::hash::Hash` + `RandomState`, this is
    /// identical across processes and runs, so shard placement is
    /// reproducible — the property the streaming ingest layer relies on.
    pub fn stable_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&self.src_ip.octets());
        eat(&self.dst_ip.octets());
        eat(&self.src_port.to_be_bytes());
        eat(&self.dst_port.to_be_bytes());
        eat(&[self.proto.0]);
        // FNV's low bits are weak for near-sequential inputs; a
        // splitmix64-style finalizer spreads them before `% shards`.
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }

    /// The shard (in `0..shards`) this key maps to.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn shard(&self, shards: usize) -> usize {
        assert!(shards > 0, "shard count must be positive");
        (self.stable_hash() % shards as u64) as usize
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.proto, self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

/// One unidirectional flow record, the common denominator of NetFlow v5/v9.
///
/// Timestamps are epoch **milliseconds**; counters are 64-bit so that
/// renormalized (sampling-corrected) volumes never overflow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Flow start, epoch milliseconds.
    pub start_ms: u64,
    /// Flow end, epoch milliseconds (`>= start_ms`).
    pub end_ms: u64,
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol.
    pub proto: Protocol,
    /// Accumulated TCP flags (zero for non-TCP).
    pub tcp_flags: TcpFlags,
    /// Packet count.
    pub packets: u64,
    /// Byte count.
    pub bytes: u64,
    /// IP type-of-service byte.
    pub tos: u8,
    /// SNMP input interface index.
    pub input_if: u16,
    /// SNMP output interface index.
    pub output_if: u16,
    /// Source autonomous system number.
    pub src_as: u32,
    /// Destination autonomous system number.
    pub dst_as: u32,
    /// Ingress point-of-presence identifier (exporter), e.g. one of the
    /// 18 GEANT PoPs. Not part of NetFlow proper; carried as `source_id`
    /// in v9 exports and dropped by the v5 codec.
    pub pop: u16,
}

impl Default for FlowRecord {
    fn default() -> Self {
        FlowRecord {
            start_ms: 0,
            end_ms: 0,
            src_ip: Ipv4Addr::UNSPECIFIED,
            dst_ip: Ipv4Addr::UNSPECIFIED,
            src_port: 0,
            dst_port: 0,
            proto: Protocol::TCP,
            tcp_flags: TcpFlags::NONE,
            packets: 1,
            bytes: 64,
            tos: 0,
            input_if: 0,
            output_if: 0,
            src_as: 0,
            dst_as: 0,
            pop: 0,
        }
    }
}

impl FlowRecord {
    /// Start building a record flowing `src -> dst`.
    pub fn builder() -> FlowRecordBuilder {
        FlowRecordBuilder::default()
    }

    /// The flow's 5-tuple key.
    pub fn key(&self) -> FlowKey {
        FlowKey {
            src_ip: self.src_ip,
            dst_ip: self.dst_ip,
            src_port: self.src_port,
            dst_port: self.dst_port,
            proto: self.proto,
        }
    }

    /// Flow duration in milliseconds (0 for single-packet flows).
    pub fn duration_ms(&self) -> u64 {
        self.end_ms.saturating_sub(self.start_ms)
    }

    /// Average packet rate in packets/second; `packets` if duration is zero.
    pub fn pps(&self) -> f64 {
        let d = self.duration_ms();
        if d == 0 {
            self.packets as f64
        } else {
            self.packets as f64 * 1000.0 / d as f64
        }
    }

    /// Average bit rate in bits/second; `bytes * 8` if duration is zero.
    pub fn bps(&self) -> f64 {
        let d = self.duration_ms();
        if d == 0 {
            self.bytes as f64 * 8.0
        } else {
            self.bytes as f64 * 8.0 * 1000.0 / d as f64
        }
    }

    /// Bytes per packet (0 when the record carries no packets).
    pub fn bytes_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.bytes as f64 / self.packets as f64
        }
    }

    /// Whether this is a TCP flow.
    pub fn is_tcp(&self) -> bool {
        self.proto == Protocol::TCP
    }

    /// Whether this is a UDP flow.
    pub fn is_udp(&self) -> bool {
        self.proto == Protocol::UDP
    }

    /// Whether the flow overlaps the half-open interval `[from_ms, to_ms)`.
    pub fn overlaps(&self, from_ms: u64, to_ms: u64) -> bool {
        self.start_ms < to_ms && self.end_ms >= from_ms
    }

    /// Scale volume counters by an integer factor (sampling renormalization).
    pub fn scaled(&self, factor: u64) -> FlowRecord {
        let mut r = self.clone();
        r.packets = r.packets.saturating_mul(factor);
        r.bytes = r.bytes.saturating_mul(factor);
        r
    }
}

impl fmt::Display for FlowRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} flags={} pkts={} bytes={} [{}..{}] pop={}",
            self.key(),
            self.tcp_flags,
            self.packets,
            self.bytes,
            self.start_ms,
            self.end_ms,
            self.pop
        )
    }
}

/// Fluent builder for [`FlowRecord`].
///
/// ```
/// use anomex_flow::record::{FlowRecord, Protocol, TcpFlags};
/// let r = FlowRecord::builder()
///     .time(1_000, 2_000)
///     .src("10.0.0.1".parse().unwrap(), 4242)
///     .dst("192.0.2.7".parse().unwrap(), 80)
///     .proto(Protocol::TCP)
///     .tcp_flags(TcpFlags::SYN)
///     .volume(3, 180)
///     .build();
/// assert_eq!(r.dst_port, 80);
/// assert_eq!(r.duration_ms(), 1_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowRecordBuilder {
    record: FlowRecord,
}

impl FlowRecordBuilder {
    /// Set start and end timestamps (epoch ms). `end` is clamped up to `start`.
    pub fn time(mut self, start_ms: u64, end_ms: u64) -> Self {
        self.record.start_ms = start_ms;
        self.record.end_ms = end_ms.max(start_ms);
        self
    }

    /// Set source address and port.
    pub fn src(mut self, ip: Ipv4Addr, port: u16) -> Self {
        self.record.src_ip = ip;
        self.record.src_port = port;
        self
    }

    /// Set destination address and port.
    pub fn dst(mut self, ip: Ipv4Addr, port: u16) -> Self {
        self.record.dst_ip = ip;
        self.record.dst_port = port;
        self
    }

    /// Set the IP protocol.
    pub fn proto(mut self, proto: Protocol) -> Self {
        self.record.proto = proto;
        self
    }

    /// Set accumulated TCP flags.
    pub fn tcp_flags(mut self, flags: TcpFlags) -> Self {
        self.record.tcp_flags = flags;
        self
    }

    /// Set packet and byte counters.
    pub fn volume(mut self, packets: u64, bytes: u64) -> Self {
        self.record.packets = packets;
        self.record.bytes = bytes;
        self
    }

    /// Set the ingress point of presence.
    pub fn pop(mut self, pop: u16) -> Self {
        self.record.pop = pop;
        self
    }

    /// Set source/destination AS numbers.
    pub fn asns(mut self, src_as: u32, dst_as: u32) -> Self {
        self.record.src_as = src_as;
        self.record.dst_as = dst_as;
        self
    }

    /// Set SNMP interface indexes.
    pub fn interfaces(mut self, input_if: u16, output_if: u16) -> Self {
        self.record.input_if = input_if;
        self.record.output_if = output_if;
        self
    }

    /// Set the type-of-service byte.
    pub fn tos(mut self, tos: u8) -> Self {
        self.record.tos = tos;
        self
    }

    /// Finish building.
    pub fn build(self) -> FlowRecord {
        self.record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn protocol_names_roundtrip() {
        assert_eq!(Protocol::parse("tcp"), Some(Protocol::TCP));
        assert_eq!(Protocol::parse("UDP"), Some(Protocol::UDP));
        assert_eq!(Protocol::parse("icmp"), Some(Protocol::ICMP));
        assert_eq!(Protocol::parse("47"), Some(Protocol(47)));
        assert_eq!(Protocol::parse("bogus"), None);
        assert_eq!(Protocol::TCP.to_string(), "tcp");
        assert_eq!(Protocol(89).to_string(), "89");
    }

    #[test]
    fn tcp_flags_parse_and_display() {
        let sa = TcpFlags::parse("SA").unwrap();
        assert!(sa.contains(TcpFlags::SYN));
        assert!(sa.contains(TcpFlags::ACK));
        assert!(!sa.contains(TcpFlags::FIN));
        assert_eq!(sa.to_string(), ".A..S.");
        assert_eq!(TcpFlags::parse("x"), None);
        assert!(TcpFlags::parse("S").unwrap().is_syn_only());
        assert!(!TcpFlags::parse("SA").unwrap().is_syn_only());
    }

    #[test]
    fn flags_union_is_commutative_and_idempotent() {
        let a = TcpFlags::SYN.union(TcpFlags::ACK);
        let b = TcpFlags::ACK.union(TcpFlags::SYN);
        assert_eq!(a, b);
        assert_eq!(a.union(a), a);
    }

    #[test]
    fn builder_produces_expected_record() {
        let r = FlowRecord::builder()
            .time(5_000, 4_000) // end before start gets clamped
            .src(ip("10.1.2.3"), 1234)
            .dst(ip("192.0.2.1"), 53)
            .proto(Protocol::UDP)
            .volume(10, 800)
            .pop(7)
            .build();
        assert_eq!(r.end_ms, 5_000);
        assert_eq!(r.duration_ms(), 0);
        assert_eq!(r.key().dst_port, 53);
        assert_eq!(r.pop, 7);
        assert!(r.is_udp());
        assert!(!r.is_tcp());
    }

    #[test]
    fn rates_handle_zero_duration() {
        let r = FlowRecord::builder().time(10, 10).volume(5, 500).build();
        assert_eq!(r.pps(), 5.0);
        assert_eq!(r.bps(), 4000.0);
        assert_eq!(r.bytes_per_packet(), 100.0);
    }

    #[test]
    fn rates_with_duration() {
        let r = FlowRecord::builder().time(0, 2_000).volume(10, 1000).build();
        assert!((r.pps() - 5.0).abs() < 1e-9);
        assert!((r.bps() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn overlaps_half_open_semantics() {
        let r = FlowRecord::builder().time(1_000, 2_000).build();
        assert!(r.overlaps(0, 1_001));
        assert!(!r.overlaps(0, 1_000)); // to is exclusive
        assert!(r.overlaps(2_000, 3_000)); // end inclusive
        assert!(!r.overlaps(2_001, 3_000));
        assert!(r.overlaps(1_500, 1_600));
    }

    #[test]
    fn scaled_multiplies_counters_saturating() {
        let r = FlowRecord::builder().volume(3, 100).build();
        let s = r.scaled(100);
        assert_eq!(s.packets, 300);
        assert_eq!(s.bytes, 10_000);
        let big = FlowRecord::builder().volume(u64::MAX, u64::MAX).build();
        assert_eq!(big.scaled(2).packets, u64::MAX);
    }

    #[test]
    fn display_is_informative() {
        let r = FlowRecord::builder()
            .src(ip("1.2.3.4"), 1)
            .dst(ip("5.6.7.8"), 2)
            .proto(Protocol::TCP)
            .build();
        let s = r.to_string();
        assert!(s.contains("1.2.3.4:1"));
        assert!(s.contains("5.6.7.8:2"));
        assert!(s.contains("tcp"));
    }

    #[test]
    fn bytes_per_packet_zero_packets() {
        let r = FlowRecord::builder().volume(0, 0).build();
        assert_eq!(r.bytes_per_packet(), 0.0);
    }

    #[test]
    fn stable_hash_is_stable_and_key_sensitive() {
        let key = FlowRecord::builder()
            .src(ip("10.0.0.1"), 4242)
            .dst(ip("192.0.2.7"), 80)
            .proto(Protocol::TCP)
            .build()
            .key();
        // Pinned value: changing the hash function silently would
        // re-shard every deployed pipeline.
        assert_eq!(key.stable_hash(), 7_612_455_149_386_403_349);
        let mut other = key;
        other.dst_port = 81;
        assert_ne!(key.stable_hash(), other.stable_hash());
    }

    #[test]
    fn shard_is_in_range_and_spreads() {
        let mut seen = [false; 4];
        for i in 0..64u32 {
            let key = FlowRecord::builder()
                .src(Ipv4Addr::from(0x0A00_0000 + i), 1_000 + i as u16)
                .dst(ip("192.0.2.7"), 80)
                .build()
                .key();
            let s = key.shard(4);
            assert!(s < 4);
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 distinct keys must hit all 4 shards");
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_panics() {
        let _ = FlowRecord::default().key().shard(0);
    }
}

//! Flow aggregation and top-N statistics (nfdump `-A`/`-s` equivalents).
//!
//! Groups flows by a chosen set of [`Feature`] dimensions and accumulates
//! flow/packet/byte counters per group — the workhorse behind "top talkers"
//! views and the drill-down tables the operator console renders.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::feature::{Feature, FeatureItem, FeatureValue};
use crate::record::FlowRecord;
use crate::store::FlowStats;

/// Which counter to rank aggregates by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Number of flow records.
    Flows,
    /// Sum of packet counters.
    Packets,
    /// Sum of byte counters.
    Bytes,
}

impl Metric {
    /// Extract the metric from accumulated stats.
    pub fn of(self, stats: &FlowStats) -> u64 {
        match self {
            Metric::Flows => stats.flows,
            Metric::Packets => stats.packets,
            Metric::Bytes => stats.bytes,
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Metric::Flows => "flows",
            Metric::Packets => "packets",
            Metric::Bytes => "bytes",
        })
    }
}

/// One aggregated row: the grouping key plus accumulated counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggRow {
    /// Key items, one per grouping feature, in grouping order.
    pub key: Vec<FeatureItem>,
    /// Accumulated counters.
    pub stats: FlowStats,
}

impl fmt::Display for AggRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, item) in self.key.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{item}")?;
        }
        write!(
            f,
            "  flows={} packets={} bytes={}",
            self.stats.flows, self.stats.packets, self.stats.bytes
        )
    }
}

/// Streaming group-by aggregator.
#[derive(Debug, Clone)]
pub struct Aggregator {
    features: Vec<Feature>,
    groups: HashMap<Vec<FeatureValue>, FlowStats>,
}

impl Aggregator {
    /// Group by the given features (order defines key order).
    ///
    /// # Panics
    /// Panics if `features` is empty or contains duplicates.
    pub fn new(features: &[Feature]) -> Aggregator {
        assert!(!features.is_empty(), "need at least one grouping feature");
        let mut seen = features.to_vec();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), features.len(), "duplicate grouping feature");
        Aggregator { features: features.to_vec(), groups: HashMap::new() }
    }

    /// Accumulate one record.
    pub fn add(&mut self, r: &FlowRecord) {
        let key: Vec<FeatureValue> = self.features.iter().map(|&f| r.feature(f)).collect();
        self.groups.entry(key).or_default().add(r);
    }

    /// Accumulate many records.
    pub fn add_all<'a, I: IntoIterator<Item = &'a FlowRecord>>(&mut self, records: I) {
        for r in records {
            self.add(r);
        }
    }

    /// Number of distinct groups so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// All rows, unsorted.
    pub fn rows(&self) -> Vec<AggRow> {
        self.groups
            .iter()
            .map(|(values, stats)| AggRow {
                key: self
                    .features
                    .iter()
                    .zip(values)
                    .map(|(&feature, &value)| FeatureItem { feature, value })
                    .collect(),
                stats: *stats,
            })
            .collect()
    }

    /// The `n` largest groups by `metric`, descending; ties broken by key
    /// for deterministic output.
    pub fn top_n(&self, metric: Metric, n: usize) -> Vec<AggRow> {
        let mut rows = self.rows();
        rows.sort_by(|a, b| {
            metric.of(&b.stats).cmp(&metric.of(&a.stats)).then_with(|| a.key.cmp(&b.key))
        });
        rows.truncate(n);
        rows
    }
}

/// Convenience: one-shot top-N over a slice of records.
pub fn top_n(
    records: &[FlowRecord],
    features: &[Feature],
    metric: Metric,
    n: usize,
) -> Vec<AggRow> {
    let mut agg = Aggregator::new(features);
    agg.add_all(records);
    agg.top_n(metric, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Protocol;
    use std::net::Ipv4Addr;

    fn rec(src: [u8; 4], dport: u16, packets: u64, bytes: u64) -> FlowRecord {
        FlowRecord::builder()
            .src(Ipv4Addr::from(src), 1234)
            .dst(Ipv4Addr::new(192, 0, 2, 1), dport)
            .proto(Protocol::TCP)
            .volume(packets, bytes)
            .build()
    }

    #[test]
    fn groups_by_single_feature() {
        let flows = vec![
            rec([10, 0, 0, 1], 80, 1, 100),
            rec([10, 0, 0, 1], 443, 2, 200),
            rec([10, 0, 0, 2], 80, 4, 400),
        ];
        let rows = top_n(&flows, &[Feature::SrcIp], Metric::Flows, 10);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].stats.flows, 2);
        assert_eq!(rows[0].key[0], FeatureItem::src_ip(Ipv4Addr::new(10, 0, 0, 1)));
    }

    #[test]
    fn groups_by_composite_key() {
        let flows = vec![
            rec([10, 0, 0, 1], 80, 1, 100),
            rec([10, 0, 0, 1], 80, 1, 100),
            rec([10, 0, 0, 1], 443, 1, 100),
        ];
        let rows = top_n(&flows, &[Feature::SrcIp, Feature::DstPort], Metric::Flows, 10);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].stats.flows, 2);
        assert_eq!(rows[0].key[1], FeatureItem::dst_port(80));
    }

    #[test]
    fn ranking_respects_metric() {
        let flows = vec![
            rec([1, 1, 1, 1], 80, 100, 10),  // most packets
            rec([2, 2, 2, 2], 80, 1, 9_000), // most bytes
            rec([3, 3, 3, 3], 80, 1, 10),
            rec([3, 3, 3, 3], 80, 1, 10), // most flows
        ];
        let by_pkts = top_n(&flows, &[Feature::SrcIp], Metric::Packets, 1);
        assert_eq!(by_pkts[0].key[0], FeatureItem::src_ip(Ipv4Addr::new(1, 1, 1, 1)));
        let by_bytes = top_n(&flows, &[Feature::SrcIp], Metric::Bytes, 1);
        assert_eq!(by_bytes[0].key[0], FeatureItem::src_ip(Ipv4Addr::new(2, 2, 2, 2)));
        let by_flows = top_n(&flows, &[Feature::SrcIp], Metric::Flows, 1);
        assert_eq!(by_flows[0].key[0], FeatureItem::src_ip(Ipv4Addr::new(3, 3, 3, 3)));
    }

    #[test]
    fn ties_break_deterministically() {
        let flows = vec![rec([9, 0, 0, 1], 80, 1, 1), rec([1, 0, 0, 1], 80, 1, 1)];
        let a = top_n(&flows, &[Feature::SrcIp], Metric::Flows, 2);
        let b = top_n(&flows, &[Feature::SrcIp], Metric::Flows, 2);
        assert_eq!(a, b);
        assert_eq!(a[0].key[0], FeatureItem::src_ip(Ipv4Addr::new(1, 0, 0, 1)));
    }

    #[test]
    fn truncates_to_n() {
        let flows: Vec<FlowRecord> = (0..20).map(|i| rec([10, 0, 0, i as u8], 80, 1, 1)).collect();
        assert_eq!(top_n(&flows, &[Feature::SrcIp], Metric::Flows, 5).len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_features_panics() {
        Aggregator::new(&[]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_features_panics() {
        Aggregator::new(&[Feature::SrcIp, Feature::SrcIp]);
    }

    #[test]
    fn row_display_is_readable() {
        let rows = top_n(&[rec([1, 2, 3, 4], 80, 5, 500)], &[Feature::SrcIp], Metric::Flows, 1);
        let s = rows[0].to_string();
        assert!(s.contains("srcIP=1.2.3.4"));
        assert!(s.contains("packets=5"));
    }

    #[test]
    fn empty_input_yields_no_rows() {
        assert!(top_n(&[], &[Feature::DstPort], Metric::Bytes, 3).is_empty());
    }
}

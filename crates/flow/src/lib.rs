//! # anomex-flow
//!
//! The flow substrate of the anomaly-extraction system: everything the
//! paper's NfDump back-end provided, reimplemented as a library.
//!
//! - [`record`] — the [`record::FlowRecord`] model shared by every crate.
//! - [`feature`] — the srcIP/dstIP/srcPort/dstPort feature vocabulary that
//!   detectors hint about and the miner builds itemsets from.
//! - [`v5`] / [`v9`] — NetFlow wire codecs (fixed-format v5 and
//!   template-based v9 with a cross-packet template cache).
//! - [`store`] — time-binned flow storage with an on-disk binary format
//!   (CRC-protected) and range+filter queries.
//! - [`filter`] — the nfdump-style filter language
//!   (`src ip 10.0.0.1 and dst port 80 and packets >= 10`).
//! - [`sampling`] — 1/N packet-sampling simulation (random and systematic),
//!   reproducing the Sampled-NetFlow regime of the GEANT evaluation.
//! - [`agg`] — group-by aggregation and top-N statistics.
//!
//! ## Quick example
//!
//! ```
//! use anomex_flow::prelude::*;
//!
//! let store = FlowStore::new(60_000);
//! store.insert(
//!     FlowRecord::builder()
//!         .time(1_000, 2_000)
//!         .src("10.0.0.1".parse().unwrap(), 4242)
//!         .dst("192.0.2.7".parse().unwrap(), 80)
//!         .proto(Protocol::TCP)
//!         .volume(10, 1400)
//!         .build(),
//! );
//! let filter = Filter::parse("dst port 80 and proto tcp").unwrap();
//! assert_eq!(store.query(TimeRange::all(), &filter).len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agg;
pub mod error;
pub mod feature;
pub mod filter;
pub mod record;
pub mod sampling;
pub mod store;
pub mod v5;
pub mod v9;

/// One-stop imports for downstream crates.
pub mod prelude {
    pub use crate::agg::{top_n, AggRow, Aggregator, Metric};
    pub use crate::error::{CodecError, StoreError};
    pub use crate::feature::{Feature, FeatureItem, FeatureValue};
    pub use crate::filter::{CmpOp, Dir, Expr, Filter, Ipv4Net, Pred};
    pub use crate::record::{FlowKey, FlowRecord, Protocol, TcpFlags};
    pub use crate::sampling::{PacketSampler, SamplingMode, Xoshiro256};
    pub use crate::store::{FlowStats, FlowStore, TimeRange, DEFAULT_BIN_WIDTH_MS};
}

pub use prelude::*;

//! **F1 — Figure 1: the anomaly-extraction system architecture.**
//!
//! The figure shows the data path: detector → alarm DB → extended
//! Apriori ↔ NfDump flow store ↔ GUI. This experiment drives one event
//! through every component end-to-end and prints the trace:
//!
//! 1. traffic generation (stand-in for the GEANT feed),
//! 2. flow store with on-disk roundtrip (the NfDump back-end),
//! 3. both detectors raise alarms (KL and entropy-PCA),
//! 4. alarms land in the JSON alarm database,
//! 5. the operator console extracts, drills down and classifies.
//!
//! Run: `cargo bench -p anomex-bench --bench figure1_architecture`

use std::io::Cursor;
use std::time::Instant;

use anomex_bench::fmt::banner;
use anomex_console::prelude::*;
use anomex_detect::prelude::*;
use anomex_flow::store::disk;
use anomex_flow::store::TimeRange;
use anomex_gen::prelude::*;

fn main() {
    println!("{}", banner("F1: Figure 1 — one anomaly through the full architecture"));
    let width = 60_000u64;
    let intervals = 12u64;

    // (1) Traffic: 12 one-minute intervals of backbone noise with a port
    // scan confined to interval 9.
    let t0 = Instant::now();
    let mut scenario = Scenario::new("figure1", 0xF161, Backbone::Switch);
    scenario.background.duration_ms = intervals * width;
    scenario.background.flows = 24_000;
    let mut spec = AnomalySpec::template(
        AnomalyKind::PortScan,
        "10.103.0.66".parse().unwrap(),
        "172.20.1.40".parse().unwrap(),
    );
    spec.flows = 8_000;
    spec.start_ms = 9 * width;
    spec.duration_ms = width;
    let built = scenario.with_anomaly(spec).build();
    println!(
        "[1] generator      -> {} flows over {} intervals ({:?})",
        built.observed_flows(),
        intervals,
        t0.elapsed()
    );

    // (2) Store with disk roundtrip (the NfDump role).
    let t1 = Instant::now();
    let dir = std::env::temp_dir().join(format!("anomex-fig1-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("figure1.anomex");
    disk::save(&built.store, &path).expect("store save");
    let store = disk::load(&path).expect("store load");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    assert_eq!(store.len(), built.store.len(), "disk roundtrip must be lossless");
    println!(
        "[2] flow store     -> {} records saved+loaded, {} bytes on disk ({:?})",
        store.len(),
        bytes,
        t1.elapsed()
    );

    // (3) Detectors.
    let t2 = Instant::now();
    let span = TimeRange::new(0, intervals * width);
    let flows = store.snapshot();
    let mut kl = KlDetector::new(KlConfig { interval_ms: width, ..KlConfig::default() });
    let kl_alarms = kl.detect(&flows, span);
    let mut pca = PcaDetector::new(PcaConfig { interval_ms: width, ..PcaConfig::default() });
    let pca_alarms = pca.detect(&flows, span);
    println!(
        "[3] detectors      -> KL: {} alarm(s), entropy-PCA: {} alarm(s) ({:?})",
        kl_alarms.len(),
        pca_alarms.len(),
        t2.elapsed()
    );
    for a in kl_alarms.iter().chain(&pca_alarms) {
        println!("      {}", a.describe());
    }
    assert!(
        kl_alarms.iter().chain(&pca_alarms).any(|a| a.window.contains(9 * width)),
        "no detector flagged the scan interval"
    );

    // (4) Alarm database (JSON file) — the integration point for "any
    // anomaly detection system".
    let t3 = Instant::now();
    let db_path = dir.join("alarms.json");
    let mut db = AlarmDb::open(&db_path).expect("alarm db");
    db.add_all(kl_alarms);
    db.add_all(pca_alarms);
    db.save().expect("alarm db save");
    let db = AlarmDb::open(&db_path).expect("alarm db reload");
    println!(
        "[4] alarm DB       -> {} alarm(s) persisted at {} ({:?})",
        db.len(),
        db_path.display(),
        t3.elapsed()
    );

    // (5) Operator console: the GUI workflow, scripted.
    let t4 = Instant::now();
    let mut console = Console::new(store, db);
    let script = "alarms\nalarm 0\nextract\nflows 0 3\nclassify 0\nquit\n";
    let mut out = Vec::new();
    console.run(Cursor::new(script.to_string()), &mut out).expect("console session");
    let transcript = String::from_utf8(out).unwrap();
    println!("[5] console        -> session transcript ({:?}):", t4.elapsed());
    for line in transcript.lines() {
        println!("      {line}");
    }

    let extraction = console.last_extraction().expect("extraction ran");
    let ok =
        !extraction.is_empty() && transcript.contains("port scan") && transcript.contains("srcIP");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&db_path);
    println!(
        "\n[{}] F1: alarm flowed detector -> DB -> miner -> store -> console",
        if ok { "PASS" } else { "FAIL" }
    );
    std::process::exit(if ok { 0 } else { 1 });
}

//! **E2 + E6 — the GEANT evaluation.**
//!
//! Paper: "We used the GUI to analyze **40 alarms** flagged by NetReflex
//! on Sampled NetFlow data from GEANT. The anomaly extraction process
//! effectively identified useful itemsets associated with a security
//! incident in **94% of the cases**. For the remaining **6%** of the
//! alarms we were not able to extract meaningful flows … In addition,
//! for **28%** of the cases with useful itemsets, the algorithm
//! evidenced additional flows not provided by the anomaly detector."
//! (§2 quotes 26% on the demo corpus — E6.)
//!
//! 40 alarm cases, 1/100 sampled, dual-support configuration.
//!
//! Run: `cargo bench -p anomex-bench --bench exp_geant`

use anomex_bench::campaign::run_geant_campaign;
use anomex_bench::fmt::{banner, pct, table};
use anomex_core::prelude::*;
use anomex_gen::prelude::*;

fn main() {
    let corpus = CorpusConfig { scale: 1.0, seed: 0x5EED_2010 };

    println!(
        "{}",
        banner("E2: GEANT campaign — 40 alarms, 1/100 sampled NetFlow, PCA-style meta-data")
    );
    let start = std::time::Instant::now();
    let summary = run_geant_campaign(&corpus, ExtractorConfig::geant_paper());
    let elapsed = start.elapsed();

    let mut rows = vec![vec![
        "case".to_string(),
        "class".to_string(),
        "kind".to_string(),
        "candidates".to_string(),
        "useful".to_string(),
        "additional".to_string(),
        "false-pos".to_string(),
    ]];
    for c in &summary.cases {
        rows.push(vec![
            c.name.clone(),
            format!("{:?}", c.class),
            c.kind.clone().unwrap_or_default(),
            c.candidates.to_string(),
            if c.useful { "yes".into() } else { "NO".into() },
            if c.additional { "yes".into() } else { "-".into() },
            c.false_itemsets.to_string(),
        ]);
    }
    println!("{}", table(&rows));

    let useful = summary.useful();
    let additional = summary.additional();
    let failures = summary.failures();
    println!("useful itemsets:      {useful}/40 ({})    paper: 94%", pct(useful, summary.len()));
    println!(
        "additional flows:     {additional}/{useful} ({}) paper: 28% of useful cases (26% demo corpus, E6)",
        pct(additional, useful.max(1))
    );
    println!(
        "not extractable:      {failures}/40 ({})     paper: 6% (stealthy or false-positive alarm)",
        pct(failures, summary.len())
    );
    println!("campaign time: {elapsed:?}");

    // Which classes failed — the paper attributes failures to stealthy
    // anomalies and false-positive alarms; verify that is where ours are.
    let failed_classes: Vec<String> = summary
        .cases
        .iter()
        .filter(|c| !c.useful)
        .map(|c| format!("{} ({:?})", c.name, c.class))
        .collect();
    println!("failed cases: {failed_classes:?}");

    let useful_rate = useful as f64 / summary.len() as f64;
    let additional_rate = additional as f64 / useful.max(1) as f64;
    let failures_expected = summary
        .cases
        .iter()
        .filter(|c| !c.useful)
        .all(|c| matches!(c.class, CaseClass::Stealthy | CaseClass::FalseAlarm));
    let checks = [
        ("useful rate in [85%, 100%) (paper: 94%)", (0.85..1.0).contains(&useful_rate)),
        (
            "additional-flow rate in [20%, 40%] (paper: 28%)",
            (0.20..=0.40).contains(&additional_rate),
        ),
        ("failures only on stealthy/false-alarm cases", failures_expected),
    ];
    println!();
    let mut ok = true;
    for (what, passed) in checks {
        println!("  [{}] {what}", if passed { "PASS" } else { "FAIL" });
        ok &= passed;
    }
    std::process::exit(if ok { 0 } else { 1 });
}

//! **E4 — sampling robustness.**
//!
//! The paper's two deployments differ exactly in the sampling regime:
//! SWITCH ran unsampled, GEANT at 1/100 Sampled NetFlow — and extraction
//! worked in both. This experiment sweeps sampling 1, 1/10, 1/100,
//! 1/1000 over a fixed scenario mix and measures useful-rate and primary
//! recall, separating volume anomalies (floods) from flow-count
//! anomalies (scans).
//!
//! Expected shape: volume anomalies survive deep sampling (packets are
//! plentiful); scans degrade gracefully as their single-packet flows are
//! thinned away.
//!
//! Run: `cargo bench -p anomex-bench --bench exp_sampling`

use anomex_bench::campaign::run_case;
use anomex_bench::fmt::{banner, table};
use anomex_core::prelude::*;
use anomex_gen::prelude::*;

fn scenario(kind: AnomalyKind, index: usize, sampling: u32) -> Scenario {
    let t = Topology::geant();
    let mut spec = AnomalySpec::template(
        kind,
        t.pops[index % t.len()].client_addr(5_000 + index as u32),
        t.pops[(index + 7) % t.len()].server_addr(60 + index as u32),
    );
    // GEANT-regime volumes (as in the corpus builder).
    spec.flows *= 3;
    spec.packets *= 3;
    let mut s = Scenario::new(
        format!("{}-{index}-1in{sampling}", kind.label().replace(' ', "-")),
        0xE4_000 + index as u64,
        Backbone::Geant,
    )
    .with_anomaly(spec)
    .with_sampling(sampling);
    s.background.flows = 40_000;
    s
}

fn main() {
    println!("{}", banner("E4: extraction vs packet-sampling rate (1 .. 1/1000)"));

    const KINDS: [AnomalyKind; 4] = [
        AnomalyKind::PortScan,
        AnomalyKind::NetworkScan,
        AnomalyKind::SynFlood,
        AnomalyKind::UdpFlood,
    ];
    const REPEATS: usize = 3;
    let rates = [1u32, 10, 100, 1_000];

    let mut rows = vec![{
        let mut header = vec!["anomaly".to_string()];
        header.extend(rates.iter().map(|r| format!("1/{r} useful")));
        header.extend(rates.iter().map(|r| format!("1/{r} recall")));
        header
    }];

    let extractor = Extractor::new(ExtractorConfig::geant_paper());
    let validation = ValidationConfig::default();
    let mut scan_useful_unsampled = 0usize;
    let mut scan_useful_1000 = 0usize;
    let mut flood_useful_1000 = 0usize;

    for kind in KINDS {
        let mut useful_cells = Vec::new();
        let mut recall_cells = Vec::new();
        for &rate in &rates {
            let mut useful = 0usize;
            let mut recall_sum = 0.0;
            let mut recall_n = 0usize;
            for i in 0..REPEATS {
                let s = scenario(kind, i, rate);
                let r = run_case(&s, CaseClass::Clean, Some(0), &extractor, &validation);
                useful += r.useful as usize;
                if let Some(rec) = r.primary_recall {
                    recall_sum += rec;
                    recall_n += 1;
                }
            }
            if kind == AnomalyKind::PortScan {
                if rate == 1 {
                    scan_useful_unsampled += useful;
                }
                if rate == 1_000 {
                    scan_useful_1000 += useful;
                }
            }
            if kind == AnomalyKind::UdpFlood && rate == 1_000 {
                flood_useful_1000 += useful;
            }
            useful_cells.push(format!("{useful}/{REPEATS}"));
            recall_cells.push(if recall_n > 0 {
                format!("{:.2}", recall_sum / recall_n as f64)
            } else {
                "-".into()
            });
        }
        let mut row = vec![kind.label().to_string()];
        row.extend(useful_cells);
        row.extend(recall_cells);
        rows.push(row);
    }
    println!("{}", table(&rows));
    println!("(useful = extraction produced itemsets pointing at the injected anomaly;");
    println!(" recall = fraction of the anomaly's observed flows covered by useful itemsets)");

    let checks = [
        ("scans fully extractable unsampled (SWITCH regime)", scan_useful_unsampled == REPEATS),
        ("volume anomaly survives 1/1000 sampling", flood_useful_1000 == REPEATS),
        (
            "deep sampling hurts scans at least as much as floods",
            scan_useful_1000 <= flood_useful_1000,
        ),
    ];
    println!();
    let mut ok = true;
    for (what, passed) in checks {
        println!("  [{}] {what}", if passed { "PASS" } else { "FAIL" });
        ok &= passed;
    }
    std::process::exit(if ok { 0 } else { 1 });
}

//! **T1 — Table 1 of the paper.**
//!
//! "List of itemsets found by our system for a particular port scan
//! detected by NetReflex": the detector flags one scanner
//! (`srcIP X dstIP Y srcPort 55548 dstPort *`); extraction must also
//! surface a second scanner on the same target and two simultaneous
//! TCP-SYN DDoS itemsets against `victim:80`.
//!
//! Paper rows (supports in flows):
//!
//! ```text
//! srcIP          dstIP          srcPort  dstPort  #flows
//! X.191.64.165   Y.13.137.129   55548    *        312.59K
//! X'.…           Y.13.137.129   55548    *        270.74K   (second scanner)
//! *              Y.13.137.129   3072     80       37.19K
//! *              Y.13.137.129   1024     80       37.28K
//! ```
//!
//! Run: `cargo bench -p anomex-bench --bench table1`

use anomex_bench::campaign::{synth_alarm, truth_set};
use anomex_bench::fmt::banner;
use anomex_core::prelude::*;
use anomex_flow::feature::Feature;
use anomex_flow::filter::Filter;
use anomex_gen::prelude::*;

fn main() {
    let config = CorpusConfig { scale: 1.0, seed: 0x5EED_2010 };
    let scenario = table1_scenario(&config);
    println!(
        "{}",
        banner("T1: Table 1 — port scan with hidden co-anomalies (GEANT, 1/100 sampled)")
    );
    println!(
        "scenario: {} wire anomalies, background {} flows, sampling 1/{}",
        scenario.anomalies.len(),
        scenario.background.flows,
        scenario.sampling
    );

    let built = scenario.build();
    println!(
        "wire flows: {}; observed after sampling: {}",
        built.wire_flows.len(),
        built.observed_flows()
    );

    // The detector flags only scanner A (anomaly id 0).
    let alarm = synth_alarm(&built, Some(0), 0);
    println!("detector meta-data: {}", alarm.describe());

    let start = std::time::Instant::now();
    let extraction = Extractor::new(ExtractorConfig::geant_paper()).extract(&built.store, &alarm);
    let elapsed = start.elapsed();

    println!("\nextracted itemsets (supports scaled x{} to wire estimates):", scenario.sampling);
    println!("{}", render_table(&extraction, scenario.sampling as u64));
    println!("{}", render_summary(&extraction));
    println!("extraction time: {elapsed:?}");

    // Validation against exact ground truth.
    let observed = built.store.query(alarm.window, &Filter::any());
    let verdict =
        validate(&extraction, &observed, &truth_set(&built.truth), &ValidationConfig::default());
    let matched = verdict.matched_anomalies();
    println!(
        "useful itemsets: {} / {}; anomalies matched: {:?} of {:?}",
        verdict.useful_itemsets,
        extraction.itemsets.len(),
        matched,
        (0..built.truth.len()).collect::<Vec<_>>()
    );

    // The paper's qualitative claims, checked mechanically.
    let has_pattern = |want_src_port: Option<u16>, want_dst_port: Option<u16>| {
        extraction.itemsets.iter().any(|e| {
            let sp = e.items.iter().find(|i| i.feature == Feature::SrcPort);
            let dp = e.items.iter().find(|i| i.feature == Feature::DstPort);
            let sp_ok = match want_src_port {
                Some(p) => sp.map(|i| i.value.raw()) == Some(p as u32),
                None => true,
            };
            let dp_ok = match want_dst_port {
                Some(p) => dp.map(|i| i.value.raw()) == Some(p as u32),
                None => dp.is_none(),
            };
            sp_ok && dp_ok
        })
    };
    let checks = [
        ("rows 1-2: scan itemsets (srcPort 55548, dstPort *)", has_pattern(Some(55_548), None)),
        ("row 3: DDoS itemset (srcPort 3072, dstPort 80)", has_pattern(Some(3_072), Some(80))),
        ("row 4: DDoS itemset (srcPort 1024, dstPort 80)", has_pattern(Some(1_024), Some(80))),
        ("flagged anomaly matched", matched.contains(&0)),
        ("all four anomalies matched", matched.len() == 4),
    ];
    println!();
    let mut ok = true;
    for (what, passed) in checks {
        println!("  [{}] {what}", if passed { "PASS" } else { "FAIL" });
        ok &= passed;
    }

    // Drill-down, as the demo narrative does: the DDoS is a SYN flood.
    if let Some(ddos) = extraction
        .itemsets
        .iter()
        .find(|e| e.items.iter().any(|i| i.feature == Feature::SrcPort && i.value.raw() == 3_072))
    {
        let flows = drill(&built.store, &alarm, ddos);
        let summary = DrillSummary::of(&flows);
        println!(
            "\ndrill-down of the srcPort-3072 itemset: {}\n  -> looks like SYN flood: {}",
            summary.describe(),
            looks_like_syn_flood(&summary)
        );
    }

    std::process::exit(if ok { 0 } else { 1 });
}

//! **E3 — flow-support vs packet-support mining.**
//!
//! Paper: "if an anomaly is not characterized by a significant volume of
//! flows, Apriori cannot extract it. For instance, this occurs in the
//! case of point to point UDP floods (involving a small number of flows
//! but a large number of packets), which happen frequently in the GEANT
//! network. For this reason, we extended Apriori to also compute the
//! support of an itemset in terms of packets in addition to flows."
//!
//! A point-to-point UDP flood (3 flows, ~900K packets) inside busy
//! background, extracted with flow support only vs the dual-support
//! extension, across sampling regimes.
//!
//! Run: `cargo bench -p anomex-bench --bench exp_packet_support`

use anomex_bench::campaign::{run_case, synth_alarm, truth_set};
use anomex_bench::fmt::{banner, table};
use anomex_core::prelude::*;
use anomex_flow::filter::Filter;
use anomex_gen::prelude::*;

fn flood_scenario(sampling: u32) -> Scenario {
    let mut spec = AnomalySpec::template(
        AnomalyKind::UdpFlood,
        "10.4.128.77".parse().unwrap(),
        "172.16.9.40".parse().unwrap(),
    );
    spec.packets = 900_000;
    let mut s = Scenario::new(format!("udp-flood-1in{sampling}"), 0xF100D, Backbone::Geant)
        .with_anomaly(spec)
        .with_sampling(sampling);
    s.background.flows = 40_000;
    s
}

fn main() {
    println!(
        "{}",
        banner(
            "E3: point-to-point UDP flood — flow support vs the paper's packet-support extension"
        )
    );

    let mut rows = vec![vec![
        "sampling".to_string(),
        "config".to_string(),
        "useful".to_string(),
        "flood matched".to_string(),
        "top itemset".to_string(),
        "flow-sup".to_string(),
        "pkt-sup".to_string(),
    ]];
    let mut flow_only_hits = 0;
    let mut dual_hits = 0;

    for sampling in [1u32, 100] {
        for (label, config) in [
            ("flows-only", ExtractorConfig::switch_paper()),
            ("flows+packets", ExtractorConfig::geant_paper()),
        ] {
            let scenario = flood_scenario(sampling);
            let built = scenario.build();
            let alarm = synth_alarm(&built, Some(0), 0);
            let extraction = Extractor::new(config).extract(&built.store, &alarm);
            let observed = built.store.query(alarm.window, &Filter::any());
            let verdict = validate(
                &extraction,
                &observed,
                &truth_set(&built.truth),
                &ValidationConfig::default(),
            );
            let matched = verdict.matched_anomalies().contains(&0);
            if matched {
                if label == "flows-only" {
                    flow_only_hits += 1;
                } else {
                    dual_hits += 1;
                }
            }
            let top = extraction.itemsets.first();
            rows.push(vec![
                format!("1/{sampling}"),
                label.to_string(),
                if verdict.is_useful() { "yes".into() } else { "NO".into() },
                if matched { "yes".into() } else { "NO".into() },
                top.map(|e| e.pattern()).unwrap_or_else(|| "-".into()),
                top.map(|e| e.flow_support.to_string()).unwrap_or_default(),
                top.map(|e| e.packet_support.to_string()).unwrap_or_default(),
            ]);
        }
    }
    println!("{}", table(&rows));

    // The claim also generalizes: run every UDP-flood case of the GEANT
    // corpus under both configurations.
    println!("{}", banner("UDP-flood cases of the GEANT corpus under both configurations"));
    let corpus_config = CorpusConfig { scale: 1.0, seed: 0x5EED_2010 };
    let flood_cases: Vec<GeantCase> = geant_corpus(&corpus_config)
        .into_iter()
        .filter(|c| {
            c.primary
                .map(|p| c.scenario.anomalies[p].kind == AnomalyKind::UdpFlood)
                .unwrap_or(false)
        })
        .collect();
    let mut corpus_rows = vec![vec![
        "case".to_string(),
        "flows-only useful".to_string(),
        "flows+packets useful".to_string(),
    ]];
    let mut corpus_flow_only = 0;
    let mut corpus_dual = 0;
    for case in &flood_cases {
        let a = run_case(
            &case.scenario,
            case.class,
            case.primary,
            &Extractor::new(ExtractorConfig::switch_paper()),
            &ValidationConfig::default(),
        );
        let b = run_case(
            &case.scenario,
            case.class,
            case.primary,
            &Extractor::new(ExtractorConfig::geant_paper()),
            &ValidationConfig::default(),
        );
        corpus_flow_only += a.useful as usize;
        corpus_dual += b.useful as usize;
        corpus_rows.push(vec![
            case.scenario.name.clone(),
            if a.useful { "yes".into() } else { "NO".into() },
            if b.useful { "yes".into() } else { "NO".into() },
        ]);
    }
    println!("{}", table(&corpus_rows));
    println!(
        "corpus UDP floods extracted: flows-only {corpus_flow_only}/{n}, flows+packets {corpus_dual}/{n}",
        n = flood_cases.len()
    );

    let ok = flow_only_hits == 0 && dual_hits == 2 && corpus_dual > corpus_flow_only;
    println!(
        "\n[{}] E3: packet support extracts the flood; flow support alone cannot",
        if ok { "PASS" } else { "FAIL" }
    );
    std::process::exit(if ok { 0 } else { 1 });
}

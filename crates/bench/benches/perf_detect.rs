//! **P4 — detection engine throughput.**
//!
//! Intervals/sec through every incremental detector, the
//! incremental-vs-refit sliding-PCA head-to-head (the rank-one
//! update's whole point: per-interval cost independent of history
//! length), and the marginal cost of running a KL+PCA ensemble over a
//! single KL detector. Results land on stdout and in
//! `BENCH_detect.json` (override the path with `BENCH_DETECT_OUT`)
//! with mean/median/min ns per interval, so CI tracks the trajectory.
//!
//! Run: `cargo bench -p anomex-bench --bench perf_detect`
//! Passing `--test` — or running without `--bench`, which is what
//! `cargo test --benches` does — runs a small smoke version, writing
//! the gitignored `BENCH_detect_smoke.json` instead.

use std::time::Instant;

use anomex_detect::interval::IntervalStat;
use anomex_detect::kl::{KlConfig, KlOnline};
use anomex_detect::pca::{PcaConfig, PcaMode, PcaSliding};
use anomex_detect::threshold::ThresholdMode;
use anomex_flow::sampling::Xoshiro256;
use anomex_flow::store::TimeRange;
use anomex_stream::prelude::{DetectorRegistry, DetectorSpec};
use criterion::{black_box, summarize, Stats};
use serde::Value;

const WIDTH_MS: u64 = 60_000;

/// Deterministic synthetic interval summaries: enough distribution
/// structure that histograms and entropies do real work, light enough
/// that the model update dominates the measurement.
fn synth_series(n: usize, seed: u64) -> Vec<IntervalStat> {
    let mut rng = Xoshiro256::seeded(seed);
    (0..n)
        .map(|t| {
            let range = TimeRange::window_at(t as u64, 0, WIDTH_MS);
            let mut stat = IntervalStat::empty(range);
            stat.flows = 180 + rng.next_below(60);
            stat.packets = stat.flows * (2 + rng.next_below(5));
            stat.bytes = stat.packets * (400 + rng.next_below(800));
            for dist in &mut stat.dists {
                for _ in 0..64 {
                    dist.add(rng.next_below(4_096) as u32, 1 + rng.next_below(40));
                }
            }
            stat
        })
        .collect()
}

/// Steady-state per-interval cost: cycle `chunk` pushes per sample,
/// `reps` samples, persistent detector state.
fn per_interval_ns(
    mut push: impl FnMut(&IntervalStat),
    series: &[IntervalStat],
    chunk: usize,
    reps: usize,
) -> Stats {
    let mut samples = Vec::with_capacity(reps);
    let mut idx = 0usize;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..chunk {
            push(&series[idx % series.len()]);
            idx += 1;
        }
        samples.push(start.elapsed().as_nanos() as f64 / chunk as f64);
    }
    summarize(&samples)
}

fn row(name: &str, stats: &Stats) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{:.0}", stats.mean),
        format!("{:.0}", stats.median),
        format!("{:.0}", stats.min),
        format!("{:.0}", 1e9 / stats.median.max(1.0)),
    ]
}

fn json_entry(name: &str, stats: &Stats) -> Value {
    Value::Object(vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("mean_ns".to_string(), Value::F64((stats.mean * 10.0).round() / 10.0)),
        ("median_ns".to_string(), Value::F64((stats.median * 10.0).round() / 10.0)),
        ("min_ns".to_string(), Value::F64((stats.min * 10.0).round() / 10.0)),
        ("samples".to_string(), Value::U64(stats.samples as u64)),
        ("intervals_per_sec".to_string(), Value::F64((1e9 / stats.median.max(1.0)).round())),
    ])
}

fn main() {
    // `cargo test --benches` passes no arguments (only `cargo bench`
    // passes `--bench`), so argless runs must be smoke runs — an
    // unoptimized full run would overwrite the committed record.
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test") || !args.iter().any(|a| a == "--bench");
    let (chunk, reps, slow_chunk, slow_reps) =
        if test_mode { (64, 4, 8, 2) } else { (256, 12, 16, 6) };
    let series = synth_series(512, 0xDE7EC7);

    print!("{}", anomex_bench::fmt::banner("P4: detection engine (ns per interval)"));

    let mut rows = vec![vec![
        "detector".to_string(),
        "mean ns".to_string(),
        "median ns".to_string(),
        "min ns".to_string(),
        "intervals/sec".to_string(),
    ]];
    let mut results: Vec<Value> = Vec::new();

    // --- Incremental detectors, steady state. -------------------------
    let kl_config = KlConfig { interval_ms: WIDTH_MS, ..KlConfig::default() };
    let mut kl = KlOnline::new(kl_config);
    let stats = per_interval_ns(|s| drop(black_box(kl.push(s))), &series, chunk, reps);
    rows.push(row("kl/welford", &stats));
    results.push(json_entry("kl/welford", &stats));

    let mut kl_exact = KlOnline::new(KlConfig { threshold: ThresholdMode::Exact, ..kl_config });
    let stats = per_interval_ns(|s| drop(black_box(kl_exact.push(s))), &series, chunk, reps);
    rows.push(row("kl/exact", &stats));
    results.push(json_entry("kl/exact", &stats));

    let pca_config = PcaConfig { interval_ms: WIDTH_MS, ..PcaConfig::default() };
    let mut pca = PcaSliding::new(pca_config, 64);
    let stats = per_interval_ns(|s| drop(black_box(pca.push(s))), &series, chunk, reps);
    rows.push(row("pca/incremental h=64", &stats));
    results.push(json_entry("pca/incremental h=64", &stats));

    // --- Ensemble overhead: KL alone vs KL + PCA in one bank. ---------
    let solo = DetectorRegistry::kl(kl_config);
    let mut solo_bank = solo.build_bank();
    let solo_stats = per_interval_ns(|s| drop(black_box(solo_bank.push(s))), &series, chunk, reps);
    rows.push(row("bank/kl", &solo_stats));
    results.push(json_entry("bank/kl", &solo_stats));

    let duo = DetectorRegistry::from_specs(&[
        DetectorSpec::Kl(kl_config),
        DetectorSpec::Pca(pca_config, 64),
    ]);
    let mut duo_bank = duo.build_bank();
    let duo_stats = per_interval_ns(|s| drop(black_box(duo_bank.push(s))), &series, chunk, reps);
    rows.push(row("bank/kl+pca", &duo_stats));
    results.push(json_entry("bank/kl+pca", &duo_stats));
    let ensemble_overhead = duo_stats.median / solo_stats.median.max(1.0);

    print!("{}", anomex_bench::fmt::table(&rows));
    println!("ensemble overhead (kl+pca vs kl): {ensemble_overhead:.2}x\n");

    // --- Incremental vs refit head-to-head. ---------------------------
    // Warm each detector past its window so every measured push slides
    // a full window; the refit cost grows with history, the
    // incremental cost must not.
    let mut h2h_rows = vec![vec![
        "history".to_string(),
        "refit median ns".to_string(),
        "incremental median ns".to_string(),
        "speedup".to_string(),
    ]];
    let mut head_to_head: Vec<Value> = Vec::new();
    let mut speedup_at_256 = 0.0f64;
    for &history in &[64usize, 256] {
        let mut modes = Vec::new();
        for mode in [PcaMode::Refit, PcaMode::Incremental] {
            let mut det = PcaSliding::with_mode(pca_config, history, mode);
            for stat in series.iter().cycle().take(history + 1) {
                det.push(stat);
            }
            let (c, r) =
                if mode == PcaMode::Refit { (slow_chunk, slow_reps) } else { (chunk, reps) };
            modes.push(per_interval_ns(|s| drop(black_box(det.push(s))), &series, c, r));
        }
        let (refit, incremental) = (&modes[0], &modes[1]);
        let speedup = refit.median / incremental.median.max(1.0);
        if history == 256 {
            speedup_at_256 = speedup;
        }
        h2h_rows.push(vec![
            history.to_string(),
            format!("{:.0}", refit.median),
            format!("{:.0}", incremental.median),
            format!("{speedup:.1}x"),
        ]);
        head_to_head.push(Value::Object(vec![
            ("history".to_string(), Value::U64(history as u64)),
            ("refit_median_ns".to_string(), Value::F64(refit.median.round())),
            ("refit_mean_ns".to_string(), Value::F64(refit.mean.round())),
            ("refit_min_ns".to_string(), Value::F64(refit.min.round())),
            ("incremental_median_ns".to_string(), Value::F64(incremental.median.round())),
            ("incremental_mean_ns".to_string(), Value::F64(incremental.mean.round())),
            ("incremental_min_ns".to_string(), Value::F64(incremental.min.round())),
            ("speedup".to_string(), Value::F64((speedup * 10.0).round() / 10.0)),
        ]));
    }
    print!("{}", anomex_bench::fmt::table(&h2h_rows));
    assert!(
        speedup_at_256 >= 5.0,
        "incremental PCA must beat the O(history²) refit >=5x at history=256, got \
         {speedup_at_256:.1}x"
    );
    println!("incremental PCA beats refit {speedup_at_256:.0}x at history=256 (floor: 5x)");

    let doc = Value::Object(vec![
        ("bench".to_string(), Value::Str("perf_detect".to_string())),
        ("series_intervals".to_string(), Value::U64(series.len() as u64)),
        ("results".to_string(), Value::Array(results)),
        ("pca_head_to_head".to_string(), Value::Array(head_to_head)),
        ("ensemble_overhead".to_string(), Value::F64((ensemble_overhead * 100.0).round() / 100.0)),
    ]);
    let default_out = if test_mode { "BENCH_detect_smoke.json" } else { "BENCH_detect.json" };
    let path = std::env::var("BENCH_DETECT_OUT").unwrap_or_else(|_| default_out.to_string());
    let json = serde_json::to_string_pretty(&doc).expect("render bench json");
    std::fs::write(&path, json + "\n").expect("write bench json");
    println!("\nwrote {path}");
}

//! **P4 — detector throughput.**
//!
//! Interval cutting, the KL histogram detector and the leave-one-out
//! entropy-PCA detector over a multi-interval trace — the upstream cost
//! of every alarm the extractor consumes.
//!
//! Run: `cargo bench -p anomex-bench --bench perf_detect`

use std::time::Duration;

use anomex_detect::prelude::*;
use anomex_flow::store::TimeRange;
use anomex_gen::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn trace(intervals: u64, flows_total: usize) -> (Vec<anomex_flow::record::FlowRecord>, TimeRange) {
    let width = 60_000u64;
    let mut scenario = Scenario::new("detect", 0xDE7EC7, Backbone::Switch);
    scenario.background.duration_ms = intervals * width;
    scenario.background.flows = flows_total;
    let mut spec = AnomalySpec::template(
        AnomalyKind::PortScan,
        "10.103.0.66".parse().unwrap(),
        "172.20.1.40".parse().unwrap(),
    );
    spec.flows = flows_total / 8;
    spec.start_ms = (intervals - 3) * width;
    spec.duration_ms = width;
    let built = scenario.with_anomaly(spec).build();
    (built.store.snapshot(), TimeRange::new(0, intervals * width))
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    let (flows, span) = trace(16, 48_000);
    let n = flows.len() as u64;

    group.throughput(Throughput::Elements(n));
    group.bench_function("interval-cut/16x", |b| {
        b.iter(|| IntervalSeries::cut(&flows, span, 60_000))
    });

    let series = IntervalSeries::cut(&flows, span, 60_000);
    group.bench_function("kl/detect/16x", |b| {
        b.iter(|| {
            let mut det = KlDetector::new(KlConfig { interval_ms: 60_000, ..KlConfig::default() });
            det.detect_series(&series)
        })
    });
    group.bench_function("pca/detect-loo/16x", |b| {
        b.iter(|| {
            let mut det =
                PcaDetector::new(PcaConfig { interval_ms: 60_000, ..PcaConfig::default() });
            det.detect_series(&series)
        })
    });

    // Eigendecomposition micro-bench: the PCA inner kernel.
    let cov = {
        let rows: Vec<Vec<f64>> =
            (0..32).map(|i| (0..7).map(|j| ((i * 7 + j) as f64 * 0.37).sin()).collect()).collect();
        let mut m = Matrix::from_rows(&rows);
        m.standardize_columns();
        m.covariance()
    };
    group.bench_function("jacobi/7x7", |b| b.iter(|| jacobi_eigen(&cov)));

    group.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);

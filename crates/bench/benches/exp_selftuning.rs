//! **E5 — self-adjusting parameters vs fixed minimum support.**
//!
//! Paper: "We added to Apriori as well the capability of automatically
//! self-adjusting some of its configuration parameters to properly
//! select meaningful itemsets depending on the anomaly being analyzed."
//!
//! Why it matters: anomaly sizes span four orders of magnitude (a 300K
//! flow scan vs a 3-flow UDP flood). Any fixed minimum support is either
//! too high for the small anomalies (misses them) or too low for the big
//! candidate sets (buries the operator in noise itemsets). The adaptive
//! top-k search picks the threshold per alarm.
//!
//! Grid: fixed absolute supports {10, 100, 1K, 10K, 100K} vs the
//! self-tuning extractor, across anomalies of heterogeneous size.
//!
//! Run: `cargo bench -p anomex-bench --bench exp_selftuning`

use anomex_bench::campaign::{synth_alarm, truth_set};
use anomex_bench::fmt::{banner, table};
use anomex_core::prelude::*;
use anomex_fim::prelude::*;
use anomex_flow::filter::Filter;
use anomex_gen::prelude::*;

/// Build an Extraction by mining at one fixed threshold (the ablation
/// baseline: no self-tuning, flow support only — classic Apriori).
fn extract_fixed(cands: &[anomex_flow::record::FlowRecord], support: u64) -> Extraction {
    let txs = encode_flows(cands, SupportMetric::Flows);
    let packet_txs = encode_flows(cands, SupportMetric::Packets);
    let mined = maximal_only(mine(
        &txs,
        &MiningConfig {
            algorithm: Algorithm::Apriori,
            min_support: MinSupport::Absolute(support),
            max_len: 4,
            threads: 1,
        },
    ));
    let mut itemsets: Vec<ExtractedItemset> = mined
        .iter()
        .map(|f| ExtractedItemset {
            items: decode_itemset(&f.itemset),
            flow_support: f.support,
            packet_support: packet_txs.support_of(&f.itemset),
            found_by: vec![SupportMetric::Flows],
        })
        .filter(|e| !e.items.is_empty())
        .collect();
    itemsets
        .sort_by(|a, b| b.flow_support.cmp(&a.flow_support).then(a.pattern().cmp(&b.pattern())));
    Extraction {
        itemsets,
        candidate_flows: cands.len(),
        candidate_packets: cands.iter().map(|f| f.packets).sum(),
        tuning: vec![],
    }
}

fn scenarios() -> Vec<(String, Scenario)> {
    let t = Topology::geant();
    let mut out = Vec::new();
    // Heterogeneous anomaly sizes, unsampled so sizes are exact.
    let sizes: [(AnomalyKind, usize, u64, &str); 4] = [
        (AnomalyKind::PortScan, 300_000, 450_000, "huge scan (300K flows)"),
        (AnomalyKind::SynFlood, 20_000, 45_000, "medium DDoS (20K flows)"),
        (AnomalyKind::PortScan, 800, 1_200, "small scan (800 flows)"),
        (AnomalyKind::UdpFlood, 3, 900_000, "p2p flood (3 flows, 900K pkts)"),
    ];
    for (i, (kind, flows, packets, label)) in sizes.into_iter().enumerate() {
        let mut spec = AnomalySpec::template(
            kind,
            t.pops[i].client_addr(900 + i as u32),
            t.pops[i + 6].server_addr(30 + i as u32),
        );
        spec.flows = flows;
        spec.packets = packets;
        let mut s = Scenario::new(label, 0xE5_000 + i as u64, Backbone::Geant).with_anomaly(spec);
        s.background.flows = 40_000;
        out.push((label.to_string(), s));
    }
    out
}

fn main() {
    println!("{}", banner("E5: fixed minimum support vs the paper's self-adjusting search"));
    let validation = ValidationConfig::default();
    let fixed_supports = [10u64, 100, 1_000, 10_000, 100_000];

    let mut rows = vec![{
        let mut h = vec!["anomaly".to_string()];
        h.extend(fixed_supports.iter().map(|s| format!("fixed {s}")));
        h.push("self-tuning".into());
        h
    }];
    // Per column: how many cases extracted, total noise itemsets.
    let cols = fixed_supports.len() + 1;
    let mut extracted = vec![0usize; cols];
    let mut noise = vec![0usize; cols];

    for (label, scenario) in scenarios() {
        let built = scenario.build();
        let alarm = synth_alarm(&built, Some(0), 0);
        let cands = candidates(&built.store, &alarm, CandidatePolicy::HintUnion);
        let observed = built.store.query(alarm.window, &Filter::any());
        let truth = truth_set(&built.truth);

        let mut row = vec![label.clone()];
        for (i, &support) in fixed_supports.iter().enumerate() {
            let extraction = extract_fixed(&cands, support);
            let v = validate(&extraction, &observed, &truth, &validation);
            if v.is_useful() {
                extracted[i] += 1;
            }
            noise[i] += v.false_itemsets;
            row.push(format!(
                "{} ({} noise)",
                if v.is_useful() { "ok" } else { "MISS" },
                v.false_itemsets
            ));
        }
        let extraction =
            Extractor::new(ExtractorConfig::geant_paper()).extract_from_candidates(&cands);
        let v = validate(&extraction, &observed, &truth, &validation);
        if v.is_useful() {
            extracted[cols - 1] += 1;
        }
        noise[cols - 1] += v.false_itemsets;
        row.push(format!(
            "{} ({} noise)",
            if v.is_useful() { "ok" } else { "MISS" },
            v.false_itemsets
        ));
        rows.push(row);
    }

    let mut summary_row = vec!["TOTAL extracted / noise".to_string()];
    for i in 0..cols {
        summary_row.push(format!("{}/4, {} noise", extracted[i], noise[i]));
    }
    rows.push(summary_row);
    println!("{}", table(&rows));

    let best_fixed = (0..fixed_supports.len()).map(|i| extracted[i]).max().unwrap_or(0);
    let tuned = extracted[cols - 1];
    let tuned_noise = noise[cols - 1];
    let checks = [
        ("self-tuning extracts every anomaly size", tuned == 4),
        ("no fixed threshold matches self-tuning coverage", best_fixed < tuned),
        // "very few false-positive itemsets, which can be trivially
        // filtered out" — the same level E1 measures (~3.5/case).
        ("self-tuning keeps noise at the trivially-filtered level (<= 4/case)", tuned_noise <= 16),
    ];
    println!();
    let mut ok = true;
    for (what, passed) in checks {
        println!("  [{}] {what}", if passed { "PASS" } else { "FAIL" });
        ok &= passed;
    }
    std::process::exit(if ok { 0 } else { 1 });
}

//! **P5 — streaming ingest throughput: channel, batching, sharding.**
//!
//! Five measurements, all landing on stdout and in `BENCH_stream.json`
//! (override the path with `BENCH_STREAM_OUT`), with a rolling
//! `history` array so the perf trajectory survives across commits:
//!
//! 1. **Channel microbench** — messages/sec through one producer ×
//!    one consumer, comparing the pre-PR-5 `Mutex<VecDeque>` channel
//!    (re-created locally below) against the lock-free MPMC ring now
//!    in `vendor/crossbeam`: per-message, batched one-CAS-per-slot
//!    (the pre-range-claim `send_many`), and batched range-claim (one
//!    CAS reserves the whole run). Asserts the range-claim path beats
//!    the mutex per-message baseline ≥ 3× AND the per-slot batched
//!    path ≥ 2× (the PR 8 acceptance floor).
//! 2. **Ingest batch-size curve** — end-to-end pipeline records/sec on
//!    a quiet (alarm-free) corpus at `ingest_batch` 1/16/64/256: the
//!    sender-side amortization knob isolated from mining cost.
//! 3. **Ingest shard curve** — the same quiet corpus at 1/2/4/8 shards
//!    (plus the host's core count when it isn't one of those).
//! 4. **Detect+extract end-to-end** — the scan corpus (alarms fire,
//!    itemsets mined) across the same shard counts, with per-stage
//!    attribution (`shard.apply_ns`, `merge.offer_ns`,
//!    `detect.*.push_ns`) attached to every curve point so the record
//!    says *which* stage stops scaling, not just that the curve bends.
//!    A second sweep varies `detector_workers` 0/1/2 at fixed shards
//!    to price the detector pool, and a third varies
//!    `extraction_workers` 0/1 to price the async extraction hand-off —
//!    asserting (on multicore, non-smoke runs) that dispatching a
//!    window to the extraction worker stalls the control loop at most
//!    ~1 ms at p99 (`extract.pool.stall_ns` bucket bound 2^20−1 ns).
//! 5. **Instrumentation overhead + stage breakdown** — the quiet-corpus
//!    ingest path with the telemetry timing layer on vs off (asserted
//!    within 3% in full runs), plus per-stage timing means and
//!    watermark-lag gauges from the instrumented scan run. The full
//!    final metrics snapshot lands in `BENCH_stream_metrics.json` as a
//!    CI artifact next to the bench JSON.
//!
//! Run: `cargo bench -p anomex-bench --bench perf_stream`
//! Sizing: `STREAM_BENCH_FLOWS=500000` scales the corpora; passing
//! `--test` — or running without `--bench`, which is what
//! `cargo test --benches` does — switches to a small smoke run,
//! which writes `BENCH_stream_smoke.json` and
//! `BENCH_stream_metrics_smoke.json` (gitignored) so it can never
//! clobber the committed full-run record.
//!
//! Caveat: shard *scaling* needs physical cores. The harness is
//! core-count-aware: every history entry records `cpus` (from
//! `std::thread::available_parallelism`) so a 1-CPU CI run can never
//! masquerade as multicore evidence. On a single CPU expect
//! flat-to-slightly-declining numbers with shard count, not speedup.
//! The committed history's `pr4-seed` entry records the mutex-channel
//! baseline measured on the same container.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use anomex_bench::fmt;
use anomex_detect::kl::KlConfig;
use anomex_gen::prelude::*;
use anomex_stream::prelude::*;
use serde::Value;

const WIDTH_MS: u64 = 60_000;
const WINDOWS: u64 = 8;

// ---------------------------------------------------------------------------
// The pre-PR-5 channel, reconstructed as the microbench baseline: a
// Mutex<VecDeque> with two condvars, locking once per send and once
// per recv_many batch — exactly what the pipeline shipped before the
// lock-free ring replaced it.
// ---------------------------------------------------------------------------

struct MutexChannel<T> {
    state: Mutex<VecDeque<T>>,
    cap: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> MutexChannel<T> {
    fn new(cap: usize) -> Arc<MutexChannel<T>> {
        Arc::new(MutexChannel {
            state: Mutex::new(VecDeque::new()),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        })
    }

    fn send(&self, msg: T) {
        let mut queue = self.state.lock().unwrap();
        while queue.len() >= self.cap {
            queue = self.not_full.wait(queue).unwrap();
        }
        queue.push_back(msg);
        drop(queue);
        self.not_empty.notify_one();
    }

    /// The seed had no batched send; pushing the whole batch under one
    /// lock is the closest mutex analogue of `send_many`.
    fn send_many(&self, batch: &mut Vec<T>) {
        let mut pending = batch.drain(..);
        loop {
            let mut queue = self.state.lock().unwrap();
            while queue.len() >= self.cap {
                queue = self.not_full.wait(queue).unwrap();
            }
            while queue.len() < self.cap {
                match pending.next() {
                    Some(msg) => queue.push_back(msg),
                    None => {
                        drop(queue);
                        self.not_empty.notify_one();
                        return;
                    }
                }
            }
            drop(queue);
            self.not_empty.notify_one();
        }
    }

    /// `None` signals end-of-stream (the bench closes by count).
    fn recv_many(&self, buf: &mut Vec<T>, max: usize, expected_total: &mut usize) -> usize {
        if *expected_total == 0 {
            return 0;
        }
        let mut queue = self.state.lock().unwrap();
        loop {
            if !queue.is_empty() {
                let take = max.min(queue.len());
                buf.extend(queue.drain(..take));
                drop(queue);
                self.not_full.notify_all();
                *expected_total -= take;
                return take;
            }
            queue = self.not_empty.wait(queue).unwrap();
        }
    }
}

/// messages/sec for one producer × one consumer over the mutex channel.
fn bench_mutex_channel(total: usize, batched: bool) -> f64 {
    let channel = MutexChannel::<u64>::new(1_024);
    let producer_side = Arc::clone(&channel);
    let start = Instant::now();
    let producer = std::thread::spawn(move || {
        if batched {
            let mut batch = Vec::with_capacity(64);
            for i in 0..total as u64 {
                batch.push(i);
                if batch.len() == 64 {
                    producer_side.send_many(&mut batch);
                }
            }
            producer_side.send_many(&mut batch);
        } else {
            for i in 0..total as u64 {
                producer_side.send(i);
            }
        }
    });
    let mut remaining = total;
    let mut buf = Vec::with_capacity(256);
    let mut checksum = 0u64;
    while channel.recv_many(&mut buf, 256, &mut remaining) > 0 {
        checksum = checksum.wrapping_add(buf.iter().sum::<u64>());
        buf.clear();
    }
    producer.join().unwrap();
    assert_eq!(checksum, (0..total as u64).sum::<u64>().wrapping_mul(1), "lost messages");
    total as f64 / start.elapsed().as_secs_f64()
}

/// How the ring microbench moves batches: the historical per-message
/// path, the pre-PR-8 one-CAS-per-slot batched path, or the range-claim
/// batched path (one CAS reserves the whole contiguous run).
#[derive(Clone, Copy, PartialEq)]
enum RingMode {
    PerMessage,
    PerSlotBatched,
    RangeClaim,
}

/// messages/sec for one producer × one consumer over the lock-free ring.
fn bench_ring_channel(total: usize, mode: RingMode) -> f64 {
    let (tx, rx) = crossbeam::channel::bounded::<u64>(1_024);
    let start = Instant::now();
    let producer = std::thread::spawn(move || match mode {
        RingMode::PerMessage => {
            for i in 0..total as u64 {
                tx.send(i).unwrap();
            }
        }
        RingMode::PerSlotBatched | RingMode::RangeClaim => {
            let flush = |batch: &mut Vec<u64>| {
                if mode == RingMode::PerSlotBatched {
                    tx.send_many_per_slot(batch).unwrap();
                } else {
                    tx.send_many(batch).unwrap();
                }
            };
            let mut batch = Vec::with_capacity(64);
            for i in 0..total as u64 {
                batch.push(i);
                if batch.len() == 64 {
                    flush(&mut batch);
                }
            }
            flush(&mut batch);
        }
    });
    let mut buf = Vec::with_capacity(256);
    let mut checksum = 0u64;
    let mut got = 0usize;
    while got < total {
        let n = if mode == RingMode::PerSlotBatched {
            rx.recv_many_per_slot(&mut buf, 256)
        } else {
            rx.recv_many(&mut buf, 256)
        };
        assert!(n > 0, "producer disconnected early");
        got += n;
        checksum = checksum.wrapping_add(buf.iter().sum::<u64>());
        buf.clear();
    }
    producer.join().unwrap();
    assert_eq!(checksum, (0..total as u64).sum::<u64>(), "lost messages");
    total as f64 / start.elapsed().as_secs_f64()
}

// ---------------------------------------------------------------------------
// End-to-end pipeline runs.
// ---------------------------------------------------------------------------

fn corpus(
    total_flows: usize,
    with_scan: bool,
) -> (Vec<anomex_flow::record::FlowRecord>, anomex_flow::store::TimeRange) {
    let mut scenario = Scenario::new("perf-stream", 0x57_12EA, Backbone::Geant);
    if with_scan {
        let mut spec = AnomalySpec::template(
            AnomalyKind::PortScan,
            "10.3.0.99".parse().unwrap(),
            "172.16.5.5".parse().unwrap(),
        );
        spec.flows = total_flows / 6;
        spec.start_ms = 6 * WIDTH_MS;
        spec.duration_ms = WIDTH_MS;
        scenario = scenario.with_anomaly(spec);
        scenario.background.flows = total_flows - total_flows / 6;
    } else {
        scenario.background.flows = total_flows;
    }
    scenario.background.duration_ms = WINDOWS * WIDTH_MS;
    let built = scenario.build();
    let mut records = built.store.snapshot();
    records.sort_by_key(|r| r.start_ms);
    (records, scenario.window())
}

struct RunResult {
    records_per_sec: f64,
    elapsed_ms: f64,
    alarms: u64,
    reports: u64,
    /// The pipeline's final telemetry emission (stage timings and
    /// event-time gauges live in its snapshot when `telemetry` was on).
    metrics: Option<MetricsReport>,
}

#[allow(clippy::too_many_arguments)] // bench harness knob-set, not a public API
fn run_pipeline(
    records: &[anomex_flow::record::FlowRecord],
    span: anomex_flow::store::TimeRange,
    shards: usize,
    ingest_batch: usize,
    telemetry: bool,
    detector_workers: usize,
    extraction_workers: usize,
    pin_shards: bool,
) -> RunResult {
    let config = StreamConfig {
        shards,
        queue_depth: 4_096,
        ingest_batch,
        lateness_ms: 30_000,
        watermark_every: 512,
        span: Some(span),
        detectors: DetectorRegistry::kl(KlConfig { interval_ms: WIDTH_MS, ..KlConfig::default() }),
        detector_workers,
        extraction_workers,
        pin_shards,
        retain_windows: 2,
        // Final-report-only cadence: the bench wants the run's totals,
        // not periodic emissions on the timed path.
        metrics: MetricsConfig { enabled: telemetry, report_every_windows: 0, report_queue: 4 },
        ..StreamConfig::default()
    };
    let start = Instant::now();
    let (mut ingest, reports) = anomex_stream::pipeline::launch(config);
    let telemetry_rx = ingest.metrics_reports().expect("telemetry subscription");
    ingest.push_batch(records.iter().cloned());
    let stats = ingest.finish();
    let drained = reports.iter().count() as u64;
    let elapsed = start.elapsed();
    assert_eq!(stats.ingested, records.len() as u64, "pipeline lost records");
    assert_eq!(stats.send_failures, 0, "no worker may disconnect mid-bench");
    assert_eq!(drained, stats.reports, "report channel lost reports");
    let mut metrics = None;
    while let Ok(report) = telemetry_rx.try_recv() {
        metrics = Some(report);
    }
    RunResult {
        records_per_sec: stats.ingested as f64 / elapsed.as_secs_f64(),
        elapsed_ms: elapsed.as_secs_f64() * 1_000.0,
        alarms: stats.alarms,
        reports: stats.reports,
        metrics,
    }
}

/// Best-of-`reps` throughput: on a shared/1-CPU host, scheduler noise
/// only ever *subtracts* records/sec, so the maximum over a few
/// repetitions is the stable estimator (the same reasoning behind the
/// criterion stand-in's trimmed-min reporting).
fn best_of(reps: usize, mut run: impl FnMut() -> RunResult) -> RunResult {
    let mut best = run();
    for _ in 1..reps {
        let next = run();
        if next.records_per_sec > best.records_per_sec {
            best = next;
        }
    }
    best
}

fn best_rate_of(reps: usize, mut run: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| run()).fold(f64::MIN, f64::max)
}

fn round1(v: f64) -> f64 {
    (v * 10.0).round() / 10.0
}

/// Mean of a named stage histogram from a run's final telemetry
/// snapshot (0.0 when the stage never fired or telemetry was off).
fn run_hist_mean(run: &RunResult, name: &str) -> f64 {
    run.metrics.as_ref().and_then(|m| m.snapshot.histogram(name)).map_or(0.0, |h| h.mean())
}

/// The per-stage attribution attached to every shard-curve point:
/// which stage's cost moves as shards scale is the whole point of the
/// curve, so the record carries it instead of a single opaque rate.
fn stage_attribution(run: &RunResult) -> Vec<(&'static str, Value)> {
    vec![
        ("shard_apply_mean_ns", Value::F64(round1(run_hist_mean(run, "shard.apply_ns")))),
        ("merge_offer_mean_ns", Value::F64(round1(run_hist_mean(run, "merge.offer_ns")))),
        ("detect_kl_push_mean_ns", Value::F64(round1(run_hist_mean(run, "detect.kl.push_ns")))),
        ("merge_batch_reports_mean", Value::F64(round1(run_hist_mean(run, "merge.batch_reports")))),
    ]
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Carry the `history` array of a previous `BENCH_stream.json` forward
/// (empty when the file is absent or unparseable), capped to the most
/// recent entries.
fn load_history(path: &str) -> Vec<Value> {
    const KEEP: usize = 20;
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(Value::Object(fields)) = serde_json::from_str::<Value>(&text) else {
        return Vec::new();
    };
    for (key, value) in fields {
        if key == "history" {
            if let Value::Array(mut entries) = value {
                if entries.len() > KEEP {
                    entries.drain(..entries.len() - KEEP);
                }
                return entries;
            }
        }
    }
    Vec::new()
}

fn main() {
    // Full mode only under `cargo bench` (which passes `--bench`) and
    // without an explicit `--test`. `cargo test --benches` passes no
    // arguments at all, so it must land in smoke mode — a full run
    // there would both take minutes and overwrite the committed
    // `BENCH_*.json` records from an unoptimized build.
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test") || !args.iter().any(|a| a == "--bench");
    let total_flows: usize = std::env::var("STREAM_BENCH_FLOWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if test_mode { 20_000 } else { 150_000 });
    let channel_msgs: usize = if test_mode { 100_000 } else { 2_000_000 };
    // Best-of-N against scheduler noise; a single rep in smoke mode.
    let reps = if test_mode { 1 } else { 3 };

    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    print!("{}", fmt::banner("P5: streaming ingest (channel / batching / sharding)"));
    println!("host: {cpus} cpu(s) available to this process\n");
    if cpus == 1 {
        println!(
            "NOTE: single-CPU host — shard curves measure overhead, not scaling;\n\
             every JSON record carries cpus={cpus} so this cannot read as multicore evidence\n"
        );
    }

    // --- 1. Channel microbench. -----------------------------------------
    println!("channel: {channel_msgs} u64 messages, cap 1024, 1 producer x 1 consumer\n");
    let mutex_permsg = best_rate_of(reps, || bench_mutex_channel(channel_msgs, false));
    let mutex_batched = best_rate_of(reps, || bench_mutex_channel(channel_msgs, true));
    let ring_permsg = best_rate_of(reps, || bench_ring_channel(channel_msgs, RingMode::PerMessage));
    let ring_per_slot =
        best_rate_of(reps, || bench_ring_channel(channel_msgs, RingMode::PerSlotBatched));
    let ring_batched =
        best_rate_of(reps, || bench_ring_channel(channel_msgs, RingMode::RangeClaim));
    let mut rows = vec![vec![
        "channel".to_string(),
        "mode".to_string(),
        "msgs/sec".to_string(),
        "vs mutex per-msg".to_string(),
    ]];
    let mut channel_measurements: Vec<Value> = Vec::new();
    for (name, mode, ops) in [
        ("mutex (pre-PR5)", "per-message", mutex_permsg),
        ("mutex (pre-PR5)", "batched 64", mutex_batched),
        ("ring", "per-message", ring_permsg),
        ("ring", "batched 64 per-slot CAS", ring_per_slot),
        ("ring", "batched 64 range-claim", ring_batched),
    ] {
        rows.push(vec![
            name.to_string(),
            mode.to_string(),
            format!("{ops:.0}"),
            format!("{:.2}x", ops / mutex_permsg),
        ]);
        channel_measurements.push(obj(vec![
            ("impl", Value::Str(name.to_string())),
            ("mode", Value::Str(mode.to_string())),
            ("msgs_per_sec", Value::F64(round1(ops))),
            (
                "speedup_vs_mutex_per_message",
                Value::F64(round1(ops / mutex_permsg * 100.0) / 100.0),
            ),
        ]));
    }
    print!("{}", fmt::table(&rows));
    let channel_speedup = ring_batched / mutex_permsg;
    let range_claim_speedup = ring_batched / ring_per_slot;
    println!(
        "\nring range-claim vs mutex per-message: {channel_speedup:.2}x (acceptance floor 3x)"
    );
    println!(
        "ring range-claim vs one-CAS-per-slot batched: {range_claim_speedup:.2}x \
         (acceptance floor 2x)\n"
    );
    if !test_mode {
        assert!(
            channel_speedup >= 3.0,
            "lock-free ring regressed below the 3x acceptance floor: {channel_speedup:.2}x"
        );
        assert!(
            range_claim_speedup >= 2.0,
            "range-claim batching regressed below the 2x-vs-per-slot acceptance floor: \
             {range_claim_speedup:.2}x"
        );
    }

    // --- 2 + 3. Ingest-bound corpus: batch curve and shard curve. --------
    let (quiet, quiet_span) = corpus(total_flows, false);
    println!(
        "ingest-bound corpus (no alarms, extraction idle): {} records over {} windows\n",
        quiet.len(),
        WINDOWS
    );
    let mut rows =
        vec![vec!["ingest_batch".to_string(), "records/sec".to_string(), "elapsed ms".to_string()]];
    let mut batch_curve: Vec<Value> = Vec::new();
    let mut best_ingest = 0f64;
    for &batch in &[1usize, 16, 64, 256] {
        let run = best_of(reps, || run_pipeline(&quiet, quiet_span, 1, batch, true, 0, 0, false));
        assert_eq!(run.alarms, 0, "quiet corpus must stay quiet");
        best_ingest = best_ingest.max(run.records_per_sec);
        rows.push(vec![
            batch.to_string(),
            format!("{:.0}", run.records_per_sec),
            format!("{:.1}", run.elapsed_ms),
        ]);
        batch_curve.push(obj(vec![
            ("ingest_batch", Value::U64(batch as u64)),
            ("records_per_sec", Value::F64(round1(run.records_per_sec))),
            ("elapsed_ms", Value::F64(round1(run.elapsed_ms))),
        ]));
    }
    print!("{}", fmt::table(&rows));
    println!();

    // Core-count-aware shard sweep: the canonical 1/2/4/8 points plus
    // the host's actual core count when it isn't already in the list,
    // so a 6- or 16-core runner commits its own saturation point.
    let mut shard_counts = vec![1usize, 2, 4, 8];
    if !shard_counts.contains(&cpus) {
        shard_counts.push(cpus);
        shard_counts.sort_unstable();
    }
    // Best-effort core pinning only helps (and only means anything)
    // with more than one core; leave the 1-CPU record unpinned.
    let pin = cpus > 1;

    let mut rows =
        vec![vec!["shards".to_string(), "records/sec".to_string(), "elapsed ms".to_string()]];
    let mut ingest_shard_curve: Vec<Value> = Vec::new();
    for &shards in &shard_counts {
        let run = best_of(reps, || run_pipeline(&quiet, quiet_span, shards, 64, true, 0, 0, pin));
        rows.push(vec![
            shards.to_string(),
            format!("{:.0}", run.records_per_sec),
            format!("{:.1}", run.elapsed_ms),
        ]);
        let mut fields = vec![
            ("shards", Value::U64(shards as u64)),
            ("records_per_sec", Value::F64(round1(run.records_per_sec))),
            ("elapsed_ms", Value::F64(round1(run.elapsed_ms))),
        ];
        fields.extend(stage_attribution(&run));
        ingest_shard_curve.push(obj(fields));
    }
    print!("{}", fmt::table(&rows));
    println!();

    // --- 4. Detect + extract end-to-end on the scan corpus. --------------
    let (scan, scan_span) = corpus(total_flows, true);
    println!("detect+extract corpus (scan in window 7, itemsets mined): {} records\n", scan.len());
    let mut rows = vec![vec![
        "shards".to_string(),
        "records/sec".to_string(),
        "elapsed ms".to_string(),
        "alarms".to_string(),
        "shard.apply ns".to_string(),
        "merge.offer ns".to_string(),
        "detect.kl ns".to_string(),
    ]];
    let mut extract_curve: Vec<Value> = Vec::new();
    let mut scan_metrics: Option<MetricsReport> = None;
    for &shards in &shard_counts {
        let run = best_of(reps, || run_pipeline(&scan, scan_span, shards, 64, true, 0, 0, pin));
        assert!(run.alarms >= 1, "scan corpus must alarm");
        rows.push(vec![
            shards.to_string(),
            format!("{:.0}", run.records_per_sec),
            format!("{:.1}", run.elapsed_ms),
            run.alarms.to_string(),
            format!("{:.0}", run_hist_mean(&run, "shard.apply_ns")),
            format!("{:.0}", run_hist_mean(&run, "merge.offer_ns")),
            format!("{:.0}", run_hist_mean(&run, "detect.kl.push_ns")),
        ]);
        let mut fields = vec![
            ("shards", Value::U64(shards as u64)),
            ("records_per_sec", Value::F64(round1(run.records_per_sec))),
            ("elapsed_ms", Value::F64(round1(run.elapsed_ms))),
            ("alarms", Value::U64(run.alarms)),
            ("reports", Value::U64(run.reports)),
        ];
        fields.extend(stage_attribution(&run));
        extract_curve.push(obj(fields));
        if shards == 1 {
            scan_metrics = run.metrics;
        }
    }
    print!("{}", fmt::table(&rows));
    println!();

    // Detector-pool sweep at fixed shards: workers=0 is the inline
    // bank on the control thread; 1/2 move detector pushes off it
    // (output is bit-identical either way — this prices the handoff).
    let pool_shards = shard_counts[shard_counts.len() / 2];
    println!("detector pool sweep (scan corpus, {pool_shards} shards)\n");
    let mut rows = vec![vec![
        "detector_workers".to_string(),
        "records/sec".to_string(),
        "elapsed ms".to_string(),
        "alarms".to_string(),
    ]];
    let mut pool_curve: Vec<Value> = Vec::new();
    for &workers in &[0usize, 1, 2] {
        let run = best_of(reps, || {
            run_pipeline(&scan, scan_span, pool_shards, 64, true, workers, 0, pin)
        });
        assert!(run.alarms >= 1, "scan corpus must alarm regardless of detector scheduling");
        rows.push(vec![
            workers.to_string(),
            format!("{:.0}", run.records_per_sec),
            format!("{:.1}", run.elapsed_ms),
            run.alarms.to_string(),
        ]);
        pool_curve.push(obj(vec![
            ("detector_workers", Value::U64(workers as u64)),
            ("records_per_sec", Value::F64(round1(run.records_per_sec))),
            ("elapsed_ms", Value::F64(round1(run.elapsed_ms))),
            ("alarms", Value::U64(run.alarms)),
        ]));
    }
    print!("{}", fmt::table(&rows));
    println!();

    // Extraction-pool sweep at the same fixed shard count: workers=0
    // mines inline on the control thread; 1 hands every closed window
    // to the dedicated extraction worker (bit-identical output — this
    // prices the hand-off and measures the control-loop stall). The
    // stall histogram records 0 for every clean try_send, so its p99 is
    // the control thread's worst-case blocked time per dispatch.
    println!("extraction pool sweep (scan corpus, {pool_shards} shards)\n");
    let mut rows = vec![vec![
        "extraction_workers".to_string(),
        "records/sec".to_string(),
        "elapsed ms".to_string(),
        "stall p99 ns".to_string(),
        "dict hit rate".to_string(),
    ]];
    let mut extract_pool_curve: Vec<Value> = Vec::new();
    let mut pooled_stall_p99: Option<u64> = None;
    for &workers in &[0usize, 1] {
        let run = best_of(reps, || {
            run_pipeline(&scan, scan_span, pool_shards, 64, true, 0, workers, pin)
        });
        assert!(run.alarms >= 1, "scan corpus must alarm regardless of extraction scheduling");
        let snapshot = &run.metrics.as_ref().expect("telemetry on").snapshot;
        let stall = snapshot.histogram("extract.pool.stall_ns").cloned().unwrap_or_default();
        let stall_p99 = stall.quantile_bound(0.99);
        let (hits, misses) =
            (snapshot.counter("extract.dict_hits"), snapshot.counter("extract.dict_misses"));
        let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
        rows.push(vec![
            workers.to_string(),
            format!("{:.0}", run.records_per_sec),
            format!("{:.1}", run.elapsed_ms),
            if workers == 0 { "-".to_string() } else { stall_p99.to_string() },
            format!("{:.2}", hit_rate),
        ]);
        extract_pool_curve.push(obj(vec![
            ("extraction_workers", Value::U64(workers as u64)),
            ("records_per_sec", Value::F64(round1(run.records_per_sec))),
            ("elapsed_ms", Value::F64(round1(run.elapsed_ms))),
            ("alarms", Value::U64(run.alarms)),
            ("stall_dispatches", Value::U64(stall.count)),
            ("stall_p99_ns", Value::U64(stall_p99)),
            ("stall_mean_ns", Value::F64(round1(stall.mean()))),
            (
                "queue_depth_last",
                snapshot.gauge("extract.queue_depth").map_or(Value::Null, Value::U64),
            ),
            ("dict_hits", Value::U64(hits)),
            ("dict_misses", Value::U64(misses)),
        ]));
        if workers >= 1 {
            assert!(stall.count > 0, "pooled run must observe at least one dispatch");
            pooled_stall_p99 = Some(stall_p99);
        }
    }
    print!("{}", fmt::table(&rows));
    let pooled_stall_p99 = pooled_stall_p99.expect("pooled sweep ran");
    // The tentpole's latency target: handing a window to the extraction
    // worker stalls the control loop ≤ 1 ms at p99. The histogram is
    // power-of-two bucketed, so the enforceable bound is the bucket
    // containing 1 ms: 2^20−1 ns. A 1-CPU host serializes the worker
    // and the control thread on one core, so the measurement means
    // nothing there — skip (not fail), exactly like the shard curves.
    const STALL_P99_CEILING_NS: u64 = (1 << 20) - 1;
    if test_mode || cpus == 1 {
        println!(
            "\nextraction stall p99 {pooled_stall_p99} ns — assertion SKIPPED \
             ({})\n",
            if test_mode { "smoke run" } else { "single-CPU host" }
        );
    } else {
        println!(
            "\nextraction stall p99 {pooled_stall_p99} ns (ceiling {STALL_P99_CEILING_NS} ns)\n"
        );
        assert!(
            pooled_stall_p99 <= STALL_P99_CEILING_NS,
            "extraction dispatch stalls the control loop {pooled_stall_p99} ns at p99, \
             above the 1 ms (2^20-1 ns bucket) acceptance ceiling"
        );
    }

    // --- 5. Instrumentation overhead + per-stage breakdown. --------------
    // The telemetry layer's whole budget is "free enough to leave on":
    // hold the instrumented ingest path within 3% of the uninstrumented
    // one (counters run in both modes; the delta is the timing layer).
    let on = best_of(reps, || run_pipeline(&quiet, quiet_span, 1, 64, true, 0, 0, false));
    let off = best_of(reps, || run_pipeline(&quiet, quiet_span, 1, 64, false, 0, 0, false));
    let overhead_pct = (off.records_per_sec / on.records_per_sec - 1.0) * 100.0;
    println!(
        "instrumentation: {:.0} records/sec on vs {:.0} off -> overhead {overhead_pct:.2}% \
         (ceiling 3%)\n",
        on.records_per_sec, off.records_per_sec
    );
    // Like the stall ceiling above, the on/off delta is meaningless on a
    // single-CPU host: the two runs land in different contention windows
    // and the recorded history swings tens of percent in both directions
    // there (including telemetry-on measuring *faster*).
    if test_mode || cpus == 1 {
        println!(
            "telemetry overhead assertion SKIPPED ({})\n",
            if test_mode { "smoke run" } else { "single-CPU host" }
        );
    } else {
        assert!(
            overhead_pct <= 3.0,
            "telemetry overhead {overhead_pct:.2}% exceeds the 3% acceptance ceiling"
        );
    }

    let scan_metrics = scan_metrics.expect("instrumented scan run emitted telemetry");
    let stage_ns = |name: &str| match scan_metrics.snapshot.histogram(name) {
        Some(h) => {
            obj(vec![("count", Value::U64(h.count)), ("mean_ns", Value::F64(round1(h.mean())))])
        }
        None => Value::Null,
    };
    let hist_mean = |name: &str| {
        Value::F64(round1(scan_metrics.snapshot.histogram(name).map_or(0.0, |h| h.mean())))
    };
    let gauge = |name: &str| match scan_metrics.snapshot.gauge(name) {
        Some(v) => Value::U64(v),
        None => Value::Null,
    };
    let stage_breakdown = obj(vec![
        ("shard_apply", stage_ns("shard.apply_ns")),
        ("merge_offer", stage_ns("merge.offer_ns")),
        ("detect_kl_push", stage_ns("detect.kl.push_ns")),
        ("extract_encode", stage_ns("extract.encode_ns")),
        ("extract_mine", stage_ns("extract.mine_ns")),
    ]);
    let watermark_health = obj(vec![
        ("broadcast_ms", gauge("watermark.broadcast_ms")),
        ("lag_event_ms", gauge("watermark.lag_event_ms")),
        ("frontier_skew_ms", gauge("watermark.frontier_skew_ms")),
    ]);
    let mut rows = vec![vec!["stage".to_string(), "samples".to_string(), "mean ns".to_string()]];
    for name in [
        "shard.apply_ns",
        "merge.offer_ns",
        "detect.kl.push_ns",
        "extract.encode_ns",
        "extract.mine_ns",
    ] {
        if let Some(h) = scan_metrics.snapshot.histogram(name) {
            rows.push(vec![name.to_string(), h.count.to_string(), format!("{:.0}", h.mean())]);
        }
    }
    print!("{}", fmt::table(&rows));

    // The full final snapshot (1-shard scan run) lands next to the
    // bench JSON for the CI artifact.
    let metrics_path =
        if test_mode { "BENCH_stream_metrics_smoke.json" } else { "BENCH_stream_metrics.json" };
    let metrics_json =
        serde_json::to_string_pretty(&scan_metrics).expect("render metrics snapshot");
    std::fs::write(metrics_path, metrics_json + "\n").expect("write metrics snapshot");
    println!("\nwrote {metrics_path}");

    // --- Emit JSON with rolling history. ---------------------------------
    // Smoke runs land in a separate (gitignored) file: BENCH_stream.json
    // is a committed perf record, and a --test run silently overwriting
    // it would invalidate every claim that cites it.
    let default_path = if test_mode { "BENCH_stream_smoke.json" } else { "BENCH_stream.json" };
    let path = std::env::var("BENCH_STREAM_OUT").unwrap_or_else(|_| default_path.to_string());
    let mut history = load_history(&path);
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    history.push(obj(vec![
        ("label", Value::Str(if test_mode { "smoke".into() } else { "full".into() })),
        ("unix_time", Value::U64(unix_time)),
        // Every entry records the cores it was measured on: a 1-CPU CI
        // run must never masquerade as multicore scaling evidence.
        ("cpus", Value::U64(cpus as u64)),
        ("channel_ring_batched_msgs_per_sec", Value::F64(round1(ring_batched))),
        ("channel_ring_per_slot_msgs_per_sec", Value::F64(round1(ring_per_slot))),
        (
            "channel_speedup_range_claim_vs_per_slot",
            Value::F64(round1(range_claim_speedup * 100.0) / 100.0),
        ),
        ("channel_mutex_per_message_msgs_per_sec", Value::F64(round1(mutex_permsg))),
        ("ingest_best_records_per_sec", Value::F64(round1(best_ingest))),
        (
            "extract_e2e_1shard_records_per_sec",
            extract_curve
                .first()
                .and_then(|v| match v {
                    Value::Object(fields) => {
                        fields.iter().find_map(|(k, v)| (k == "records_per_sec").then(|| v.clone()))
                    }
                    _ => None,
                })
                .unwrap_or(Value::Null),
        ),
        // The full shard-scaling curve with per-stage attribution rides
        // in the history so regressions in *where* time goes — not just
        // the headline rate — survive across commits.
        ("extract_e2e_shard_curve", Value::Array(extract_curve.clone())),
        ("detector_pool_curve", Value::Array(pool_curve.clone())),
        // The extraction-pool sweep rides in the history whole: each
        // point carries the stall histogram summary (count/p99/mean),
        // the last observed extract.queue_depth, and the dictionary
        // hit/miss traffic, so queue pressure regressions are visible
        // across commits, not just the headline rate.
        ("extraction_pool_curve", Value::Array(extract_pool_curve.clone())),
        ("extract_stall_p99_ns", Value::U64(pooled_stall_p99)),
        ("instrumentation_overhead_pct", Value::F64(round1(overhead_pct))),
        ("shard_apply_mean_ns", hist_mean("shard.apply_ns")),
        ("merge_offer_mean_ns", hist_mean("merge.offer_ns")),
        ("detect_kl_push_mean_ns", hist_mean("detect.kl.push_ns")),
        ("extract_mine_mean_ns", hist_mean("extract.mine_ns")),
        ("extract_queue_depth", gauge("extract.queue_depth")),
        ("watermark_lag_event_ms", gauge("watermark.lag_event_ms")),
        ("watermark_frontier_skew_ms", gauge("watermark.frontier_skew_ms")),
    ]));

    let doc = obj(vec![
        ("bench", Value::Str("perf_stream".to_string())),
        ("cpus", Value::U64(cpus as u64)),
        ("corpus_records", Value::U64(quiet.len() as u64)),
        ("windows", Value::U64(WINDOWS)),
        ("channel", Value::Array(channel_measurements)),
        (
            "channel_speedup_ring_batched_vs_mutex_per_message",
            Value::F64(round1(channel_speedup * 100.0) / 100.0),
        ),
        (
            "channel_speedup_range_claim_vs_per_slot",
            Value::F64(round1(range_claim_speedup * 100.0) / 100.0),
        ),
        ("ingest_batch_curve", Value::Array(batch_curve)),
        ("ingest_shard_curve", Value::Array(ingest_shard_curve)),
        ("extract_e2e_shard_curve", Value::Array(extract_curve)),
        ("detector_pool_curve", Value::Array(pool_curve)),
        ("extraction_pool_curve", Value::Array(extract_pool_curve)),
        ("extract_stall_p99_ns", Value::U64(pooled_stall_p99)),
        ("instrumentation_overhead_pct", Value::F64(round1(overhead_pct))),
        ("stage_breakdown", stage_breakdown),
        ("watermark_health", watermark_health),
        ("history", Value::Array(history)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("render bench json");
    std::fs::write(&path, json + "\n").expect("write bench json");
    println!("\nwrote {path}");
}

//! **P5 — streaming ingest throughput: records/sec vs shard count.**
//!
//! Replays a GEANT-like scenario (background + port scan) through the
//! full streaming pipeline — sharded windowing, incremental KL
//! detection, continuous extraction — at 1/2/4/8 shards, reporting
//! end-to-end records/sec. Results land on stdout and in
//! `BENCH_stream.json` (override the path with `BENCH_STREAM_OUT`) so
//! CI can track the perf trajectory.
//!
//! Run: `cargo bench -p anomex-bench --bench perf_stream`
//! Sizing: `STREAM_BENCH_FLOWS=500000` scales the corpus; `--test`
//! (what `cargo test --benches` passes) switches to a small smoke run.
//!
//! Caveat: shard *scaling* needs physical cores; on a single-CPU
//! machine expect flat-to-slightly-declining numbers with shard count,
//! not speedup.

use std::time::Instant;

use anomex_bench::fmt;
use anomex_detect::kl::KlConfig;
use anomex_gen::prelude::*;
use anomex_stream::prelude::*;
use serde::Value;

const WIDTH_MS: u64 = 60_000;
const WINDOWS: u64 = 8;

fn corpus(
    total_flows: usize,
) -> (Vec<anomex_flow::record::FlowRecord>, anomex_flow::store::TimeRange) {
    let mut spec = AnomalySpec::template(
        AnomalyKind::PortScan,
        "10.3.0.99".parse().unwrap(),
        "172.16.5.5".parse().unwrap(),
    );
    spec.flows = total_flows / 6;
    spec.start_ms = 6 * WIDTH_MS;
    spec.duration_ms = WIDTH_MS;
    let mut scenario = Scenario::new("perf-stream", 0x57_12EA, Backbone::Geant).with_anomaly(spec);
    scenario.background.flows = total_flows - total_flows / 6;
    scenario.background.duration_ms = WINDOWS * WIDTH_MS;
    let built = scenario.build();
    let mut records = built.store.snapshot();
    records.sort_by_key(|r| r.start_ms);
    (records, scenario.window())
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let total_flows: usize = std::env::var("STREAM_BENCH_FLOWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if test_mode { 20_000 } else { 150_000 });
    let (records, span) = corpus(total_flows);

    print!("{}", fmt::banner("P5: streaming pipeline throughput (records/sec by shard count)"));
    println!("corpus: {} records over {} one-minute windows\n", records.len(), WINDOWS);

    let mut rows = vec![vec![
        "shards".to_string(),
        "records/sec".to_string(),
        "elapsed ms".to_string(),
        "alarms".to_string(),
        "reports".to_string(),
    ]];
    let mut measurements: Vec<Value> = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        let config = StreamConfig {
            shards,
            queue_depth: 4_096,
            lateness_ms: 30_000,
            watermark_every: 512,
            span: Some(span),
            detectors: DetectorRegistry::kl(KlConfig {
                interval_ms: WIDTH_MS,
                ..KlConfig::default()
            }),
            retain_windows: 2,
            ..StreamConfig::default()
        };
        let start = Instant::now();
        let (mut ingest, reports) = anomex_stream::pipeline::launch(config);
        ingest.push_batch(records.iter().cloned());
        let stats = ingest.finish();
        let drained = reports.iter().count() as u64;
        let elapsed = start.elapsed();
        assert_eq!(stats.ingested, records.len() as u64, "pipeline lost records");
        assert_eq!(drained, stats.reports, "report channel lost reports");

        let records_per_sec = stats.ingested as f64 / elapsed.as_secs_f64();
        rows.push(vec![
            shards.to_string(),
            format!("{records_per_sec:.0}"),
            format!("{:.1}", elapsed.as_secs_f64() * 1_000.0),
            stats.alarms.to_string(),
            stats.reports.to_string(),
        ]);
        measurements.push(Value::Object(vec![
            ("shards".to_string(), Value::U64(shards as u64)),
            ("records_per_sec".to_string(), Value::F64((records_per_sec * 10.0).round() / 10.0)),
            ("elapsed_ms".to_string(), Value::F64(elapsed.as_secs_f64() * 1_000.0)),
            ("alarms".to_string(), Value::U64(stats.alarms)),
            ("reports".to_string(), Value::U64(stats.reports)),
        ]));
    }
    print!("{}", fmt::table(&rows));

    let doc = Value::Object(vec![
        ("bench".to_string(), Value::Str("perf_stream".to_string())),
        ("corpus_records".to_string(), Value::U64(records.len() as u64)),
        ("windows".to_string(), Value::U64(WINDOWS)),
        ("results".to_string(), Value::Array(measurements)),
    ]);
    let path =
        std::env::var("BENCH_STREAM_OUT").unwrap_or_else(|_| "BENCH_stream.json".to_string());
    let json = serde_json::to_string_pretty(&doc).expect("render bench json");
    std::fs::write(&path, json + "\n").expect("write bench json");
    println!("\nwrote {path}");
}

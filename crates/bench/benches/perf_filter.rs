//! **P3 — filter engine throughput.**
//!
//! Parse cost of nfdump-style expressions and match throughput over a
//! realistic store — the inner loop of candidate selection and
//! drill-down.
//!
//! Run: `cargo bench -p anomex-bench --bench perf_filter`

use std::time::Duration;

use anomex_flow::filter::Filter;
use anomex_flow::store::TimeRange;
use anomex_gen::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const SIMPLE: &str = "dst port 80";
const COMPLEX: &str =
    "(src net 10.4.0.0/16 or dst ip 172.16.9.40) and proto tcp and packets >= 2 and not dst port 443";

fn bench_filters(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    group.bench_function("parse/simple", |b| b.iter(|| Filter::parse(SIMPLE).unwrap()));
    group.bench_function("parse/complex", |b| b.iter(|| Filter::parse(COMPLEX).unwrap()));

    let mut scenario = Scenario::new("filter", 0xF117E4, Backbone::Geant);
    scenario.background.flows = 40_000;
    let built = scenario.build();
    let flows = built.store.snapshot();
    let n = flows.len() as u64;

    let simple = Filter::parse(SIMPLE).unwrap();
    let complex = Filter::parse(COMPLEX).unwrap();
    group.throughput(Throughput::Elements(n));
    group.bench_function("match/simple/60k", |b| {
        b.iter(|| flows.iter().filter(|f| simple.matches(f)).count())
    });
    group.bench_function("match/complex/60k", |b| {
        b.iter(|| flows.iter().filter(|f| complex.matches(f)).count())
    });

    // Store-integrated query (bin pruning + filter).
    group.bench_function("store-query/complex", |b| {
        b.iter(|| built.store.query(TimeRange::all(), &complex).len())
    });

    group.finish();
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);

//! **P2 — NetFlow codec throughput.**
//!
//! v5 (fixed-format) and v9 (template-based) encode/decode, plus the
//! store's on-disk block codec — the paths every record crosses between
//! a router export and the miner.
//!
//! Run: `cargo bench -p anomex-bench --bench perf_codec`

use std::time::Duration;

use anomex_flow::store::disk;
use anomex_flow::v5::{self, ExportBase};
use anomex_flow::v9;
use anomex_gen::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn records(n: usize) -> Vec<anomex_flow::record::FlowRecord> {
    let mut scenario = Scenario::new("codec", 0xC0DEC, Backbone::Geant);
    scenario.background.flows = n;
    let built = scenario.build();
    let mut flows = built.store.snapshot();
    flows.truncate(n);
    flows
}

fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    // v5: packets carry at most 30 records.
    let batch = records(30);
    let base = ExportBase::epoch();
    group.throughput(Throughput::Elements(30));
    group.bench_function("v5/encode/30", |b| b.iter(|| v5::encode(&batch, base, 0).unwrap()));
    let packet = v5::encode(&batch, base, 0).unwrap();
    group.bench_function("v5/decode/30", |b| b.iter(|| v5::decode(&packet).unwrap()));

    group.bench_function("v9/encode/30", |b| b.iter(|| v9::encode(&batch, base, 0, 4)));
    let v9_packet = v9::encode(&batch, base, 0, 4);
    group.bench_function("v9/decode/30", |b| {
        b.iter(|| {
            let mut cache = v9::TemplateCache::new();
            v9::decode(&v9_packet, &mut cache).unwrap()
        })
    });

    // Disk block codec at store scale.
    let block = records(10_000);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("disk/encode/10k", |b| b.iter(|| disk::encode(300_000, &block)));
    let bytes = disk::encode(300_000, &block);
    group.bench_function("disk/decode/10k", |b| b.iter(|| disk::decode(&bytes).unwrap()));

    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);

//! **E1 — the SWITCH evaluation.**
//!
//! Paper: "Our results using labeled unsampled NetFlow traces from the
//! medium-size backbone network of SWITCH showed that our approach
//! effectively extracted the anomalous flows in **all 31 analyzed cases**
//! and it triggered **very few false-positive itemsets**."
//!
//! 31 labeled cases, unsampled, flow-support configuration (the IMC'09
//! setup this claim refers to). Also prints the DESIGN.md §5 ablation:
//! meta-data candidate pre-filtering vs mining the whole interval.
//!
//! Run: `cargo bench -p anomex-bench --bench exp_switch`

use anomex_bench::campaign::run_switch_campaign;
use anomex_bench::fmt::{banner, pct, table};
use anomex_core::prelude::*;
use anomex_gen::prelude::*;

fn main() {
    let corpus = CorpusConfig { scale: 1.0, seed: 0x5EED_2010 };

    println!("{}", banner("E1: SWITCH campaign — 31 labeled cases, unsampled, KL-style meta-data"));
    let start = std::time::Instant::now();
    let summary = run_switch_campaign(&corpus, ExtractorConfig::switch_paper());
    let elapsed = start.elapsed();

    let mut rows = vec![vec![
        "case".to_string(),
        "kind".to_string(),
        "candidates".to_string(),
        "itemsets".to_string(),
        "useful".to_string(),
        "false-pos".to_string(),
        "recall".to_string(),
    ]];
    for c in &summary.cases {
        rows.push(vec![
            c.name.clone(),
            c.kind.clone().unwrap_or_default(),
            c.candidates.to_string(),
            c.itemsets.to_string(),
            if c.useful { "yes".into() } else { "NO".into() },
            c.false_itemsets.to_string(),
            c.primary_recall.map(|r| format!("{:.2}", r)).unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", table(&rows));

    println!(
        "extracted: {}/31 ({})   paper: 31/31 (100%)",
        summary.useful(),
        pct(summary.useful(), summary.len())
    );
    println!(
        "false-positive itemsets per case: {:.2} (paper: 'very few')",
        summary.mean_false_itemsets()
    );
    println!("mean primary recall: {:.3}", summary.mean_primary_recall());
    println!("campaign time: {elapsed:?}");

    // Ablation (DESIGN.md §5): drop the meta-data pre-filter.
    println!("{}", banner("ablation: candidate selection = whole interval (no meta-data)"));
    let whole = run_switch_campaign(
        &corpus,
        ExtractorConfig {
            policy: CandidatePolicy::WholeInterval,
            ..ExtractorConfig::switch_paper()
        },
    );
    println!(
        "extracted: {}/31 ({}), false-positive itemsets per case: {:.2}",
        whole.useful(),
        pct(whole.useful(), whole.len()),
        whole.mean_false_itemsets()
    );
    println!(
        "-> meta-data pre-filtering changes false-pos per case by {:+.2}",
        summary.mean_false_itemsets() - whole.mean_false_itemsets()
    );

    let ok = summary.useful() == 31 && summary.mean_false_itemsets() < 5.0;
    println!("\n[{}] E1: 31/31 with few false positives", if ok { "PASS" } else { "FAIL" });
    std::process::exit(if ok { 0 } else { 1 });
}

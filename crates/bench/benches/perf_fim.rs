//! **P1 — columnar mining engine throughput.**
//!
//! Flow transactions are 4 items wide, which is the regime the paper's
//! extended Apriori runs in. The interesting axes are minimum support
//! (levelwise Apriori is competitive at high support, pattern growth and
//! vertical mining win as support drops) and the encode cost per flow —
//! the columnar `TransactionMatrix` encode must stay allocation-free per
//! flow to keep re-mining cheap at streaming rates.
//!
//! Reports, per algorithm × min-support: mine time and **itemsets/sec**;
//! plus **encode ns/flow** for the dictionary/CSR build, a three-way
//! Eclat head-to-head (pre-refactor tid-vectors vs bitset tidsets vs
//! the dEclat diffset fast path, asserted ≥2x over tid-vectors), a
//! warm-vs-cold dictionary encode comparison (persistent `EncodeState`,
//! asserted ≥3x warm), and the full extraction step under the Apriori
//! paper config vs the dEclat default (asserted ≥2x). Results land on
//! stdout and in `BENCH_fim.json` (override with `BENCH_FIM_OUT`;
//! smoke runs write the gitignored `BENCH_fim_smoke.json` instead) so
//! CI tracks the trajectory. The speedup floors are skipped in smoke
//! mode, where timings are noise.
//!
//! Run: `cargo bench -p anomex-bench --bench perf_fim`
//! Sizing: `FIM_BENCH_FLOWS=200000` scales the corpus; passing `--test`
//! — or running without `--bench`, which is what `cargo test --benches`
//! does — switches to a small smoke run.

use std::collections::HashMap;
use std::time::Instant;

use anomex_bench::fmt;
use anomex_core::prelude::*;
use anomex_fim::prelude::*;
use anomex_fim::Eclat;
use anomex_gen::prelude::*;
use serde::Value;

/// Realistic candidate mix: background + an embedded scan, as one
/// anomalous window's candidate set.
fn corpus(n_flows: usize) -> Vec<anomex_flow::record::FlowRecord> {
    let mut spec = AnomalySpec::template(
        AnomalyKind::PortScan,
        "10.0.0.9".parse().unwrap(),
        "172.16.0.1".parse().unwrap(),
    );
    spec.flows = n_flows / 3;
    let mut scenario = Scenario::new("perf", 0xBE7C4, Backbone::Geant).with_anomaly(spec);
    scenario.background.flows = n_flows - n_flows / 3;
    scenario.build().store.snapshot()
}

/// The pre-refactor Eclat: per-item sorted `Vec<u32>` tid lists, merged
/// element by element. Kept here as the performance baseline the bitset
/// implementation must beat; results are cross-checked for equality.
mod tidvec_eclat {
    use super::*;

    pub fn mine(
        matrix: &TransactionMatrix,
        threshold: u64,
        max_len: usize,
    ) -> Vec<FrequentItemset> {
        let max_len = if max_len == 0 { usize::MAX } else { max_len };
        let weights: Vec<u64> = matrix.weights().to_vec();
        let mut tidlists: HashMap<u16, Vec<u32>> = HashMap::new();
        for (tid, (row, w)) in matrix.rows().enumerate() {
            if w == 0 {
                continue;
            }
            for &id in row {
                tidlists.entry(id).or_default().push(tid as u32);
            }
        }
        let support = |tids: &[u32]| -> u64 { tids.iter().map(|&t| weights[t as usize]).sum() };
        let mut roots: Vec<(u16, Vec<u32>, u64)> = tidlists
            .into_iter()
            .filter_map(|(id, tids)| {
                let s = support(&tids);
                (s >= threshold).then_some((id, tids, s))
            })
            .collect();
        roots.sort_by_key(|&(id, _, _)| id);

        let mut results = Vec::new();
        let mut prefix: Vec<u16> = Vec::new();
        for (i, (id, tids, s)) in roots.iter().enumerate() {
            prefix.push(*id);
            results.push(FrequentItemset::new(matrix.itemset_of(&prefix), *s));
            if max_len > 1 {
                dfs(
                    matrix,
                    &mut prefix,
                    tids,
                    &roots[i + 1..],
                    threshold,
                    max_len,
                    &weights,
                    &mut results,
                );
            }
            prefix.pop();
        }
        anomex_fim::sort_canonical(&mut results);
        results
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        matrix: &TransactionMatrix,
        prefix: &mut Vec<u16>,
        tids: &[u32],
        siblings: &[(u16, Vec<u32>, u64)],
        threshold: u64,
        max_len: usize,
        weights: &[u64],
        out: &mut Vec<FrequentItemset>,
    ) {
        let mut extensions: Vec<(u16, Vec<u32>, u64)> = Vec::new();
        for (id, sibling_tids, _) in siblings {
            let joined = intersect(tids, sibling_tids);
            let s: u64 = joined.iter().map(|&t| weights[t as usize]).sum();
            if s >= threshold {
                extensions.push((*id, joined, s));
            }
        }
        for (i, (id, joined, s)) in extensions.iter().enumerate() {
            prefix.push(*id);
            out.push(FrequentItemset::new(matrix.itemset_of(prefix), *s));
            if prefix.len() < max_len {
                dfs(matrix, prefix, joined, &extensions[i + 1..], threshold, max_len, weights, out);
            }
            prefix.pop();
        }
    }

    fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }
}

fn main() {
    // Full mode only under `cargo bench` (which passes `--bench`) and
    // without an explicit `--test`; `cargo test --benches` passes no
    // arguments at all and must stay a smoke run (no perf floors, no
    // committed-record writes from an unoptimized build).
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test") || !args.iter().any(|a| a == "--bench");
    let n_flows: usize = std::env::var("FIM_BENCH_FLOWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if test_mode { 6_000 } else { 40_000 });
    let iters: u32 = if test_mode { 2 } else { 5 };
    let flows = corpus(n_flows);

    print!("{}", fmt::banner("P1: columnar mining engine (itemsets/sec by algorithm × support)"));
    println!("corpus: {} flows (1/3 scan, 2/3 background), {iters} iters per cell\n", flows.len());

    // Encode cost: flows → dictionary-encoded CSR matrix.
    let encode_start = Instant::now();
    let mut encoded = encode_flows(&flows, SupportMetric::Flows);
    for _ in 1..iters {
        encoded = encode_flows(&flows, SupportMetric::Flows);
    }
    let encode_ns_per_flow =
        encode_start.elapsed().as_nanos() as f64 / (iters as f64 * flows.len() as f64);
    println!(
        "encode: {encode_ns_per_flow:.0} ns/flow ({} distinct items, {} rows)\n",
        encoded.n_items(),
        encoded.len()
    );

    let mut rows = vec![vec![
        "algorithm".to_string(),
        "min_sup".to_string(),
        "itemsets".to_string(),
        "mine ms".to_string(),
        "itemsets/sec".to_string(),
    ]];
    let mut measurements: Vec<Value> = Vec::new();
    for &support in &[0.05f64, 0.01, 0.002] {
        for algorithm in [Algorithm::Apriori, Algorithm::FpGrowth, Algorithm::Eclat] {
            let config = MiningConfig {
                algorithm,
                min_support: MinSupport::Fraction(support),
                max_len: 4,
                threads: 1,
            };
            let start = Instant::now();
            let mut found = 0usize;
            for _ in 0..iters {
                found = mine(&encoded, &config).len();
            }
            let elapsed = start.elapsed().as_secs_f64() / iters as f64;
            let rate = found as f64 / elapsed.max(1e-9);
            rows.push(vec![
                algorithm.to_string(),
                format!("{support}"),
                found.to_string(),
                format!("{:.2}", elapsed * 1_000.0),
                format!("{rate:.0}"),
            ]);
            measurements.push(Value::Object(vec![
                ("algorithm".to_string(), Value::Str(algorithm.to_string())),
                ("min_support".to_string(), Value::F64(support)),
                ("itemsets".to_string(), Value::U64(found as u64)),
                ("mine_ms".to_string(), Value::F64((elapsed * 1e6).round() / 1e3)),
                ("itemsets_per_sec".to_string(), Value::F64(rate.round())),
            ]));
        }
    }
    print!("{}", fmt::table(&rows));

    // Head-to-head: dEclat (diffsets + pair cache, the dispatch
    // default) vs the plain bitset tidset Eclat vs the pre-refactor
    // tid-vector Eclat. Every variant is cross-checked for equality.
    println!("\neclat: diffsets+pair-cache vs bitset tid-lists vs pre-refactor tid-vectors");
    let mut eclat_rows = vec![vec![
        "min_sup".to_string(),
        "tid-vector ms".to_string(),
        "bitset ms".to_string(),
        "diffset ms".to_string(),
        "diffset vs tidvec".to_string(),
    ]];
    let mut eclat_cmp: Vec<Value> = Vec::new();
    let mut worst_fastpath_speedup = f64::INFINITY;
    for &support in &[0.05f64, 0.01, 0.002] {
        let threshold = MinSupport::Fraction(support).resolve(encoded.total_weight());
        let start = Instant::now();
        let mut legacy = Vec::new();
        for _ in 0..iters {
            legacy = tidvec_eclat::mine(&encoded, threshold, 4);
        }
        let legacy_ms = start.elapsed().as_secs_f64() * 1_000.0 / iters as f64;

        let config = MiningConfig {
            algorithm: Algorithm::Eclat,
            min_support: MinSupport::Absolute(threshold),
            max_len: 4,
            threads: 1,
        };
        // Fresh matrix per measured variant so the bitset/cache build
        // cost is *included* (cached reuse would flatter the new path).
        let fresh = encode_flows(&flows, SupportMetric::Flows);
        let start = Instant::now();
        let mut bitset = Vec::new();
        for _ in 0..iters {
            bitset = Eclat::LEGACY.mine(&fresh, &config);
        }
        let bitset_ms = start.elapsed().as_secs_f64() * 1_000.0 / iters as f64;
        assert_eq!(legacy, bitset, "tid-vector and bitset Eclat must agree at {support}");

        let fresh = encode_flows(&flows, SupportMetric::Flows);
        let start = Instant::now();
        let mut diffset = Vec::new();
        for _ in 0..iters {
            diffset = Eclat::DEFAULT.mine(&fresh, &config);
        }
        let diffset_ms = start.elapsed().as_secs_f64() * 1_000.0 / iters as f64;
        assert_eq!(legacy, diffset, "diffset and tid-vector Eclat must agree at {support}");

        let speedup = legacy_ms / bitset_ms.max(1e-9);
        // The committed floor is the fast path (diffsets + pair cache,
        // what `Algorithm::Eclat` dispatches to) against the
        // pre-refactor tid-vector miner. The bitset-vs-diffset delta is
        // reported but not floored: on fixed-width dense bitsets an
        // AND-NOT costs the same word ops as an AND, and the paper's
        // 4-item transactions keep the DFS too shallow for diffsets to
        // dominate — the diffset path exists for the deep/dense regime
        // and must simply never regress the common one.
        let fastpath_speedup = legacy_ms / diffset_ms.max(1e-9);
        worst_fastpath_speedup = worst_fastpath_speedup.min(fastpath_speedup);
        eclat_rows.push(vec![
            format!("{support}"),
            format!("{legacy_ms:.2}"),
            format!("{bitset_ms:.2}"),
            format!("{diffset_ms:.2}"),
            format!("{fastpath_speedup:.2}x"),
        ]);
        eclat_cmp.push(Value::Object(vec![
            ("min_support".to_string(), Value::F64(support)),
            ("tidvec_ms".to_string(), Value::F64((legacy_ms * 1e3).round() / 1e3)),
            ("bitset_ms".to_string(), Value::F64((bitset_ms * 1e3).round() / 1e3)),
            ("diffset_ms".to_string(), Value::F64((diffset_ms * 1e3).round() / 1e3)),
            ("speedup".to_string(), Value::F64((speedup * 100.0).round() / 100.0)),
            (
                "diffset_vs_tidvec_speedup".to_string(),
                Value::F64((fastpath_speedup * 100.0).round() / 100.0),
            ),
        ]));
    }
    print!("{}", fmt::table(&eclat_rows));
    println!(
        "\ndiffset fast path vs pre-refactor tid-vectors, worst across supports: \
         {worst_fastpath_speedup:.2}x (acceptance floor 2x)"
    );
    if !test_mode {
        assert!(
            worst_fastpath_speedup >= 2.0,
            "the dEclat fast path regressed below the 2x-vs-tid-vector acceptance floor: \
             {worst_fastpath_speedup:.2}x"
        );
    }

    // Dictionary reuse across windows: the streaming path re-encodes a
    // candidate set every alarmed window, and the candidate population
    // recurs between windows (stable servers, popular ports, one
    // scanner's port sweep — the candidate filter already stripped the
    // ephemeral background). Cold = a fresh dictionary per window (the
    // pre-refactor behaviour); warm = one persistent `EncodeState`
    // carried across windows, pre-warmed on the first. The raw scenario
    // corpus above is deliberately NOT used here: its unfiltered
    // background carries more distinct items than the `u16` id space,
    // which is the dictionary's overflow (epoch-reset) regime, not its
    // reuse regime.
    let window_count = 8usize;
    let window_flows = (flows.len() / window_count).max(1);
    let mut rng_state = 0x5EEDu64;
    let mut rng = move || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        rng_state >> 33
    };
    let windows: Vec<Vec<anomex_flow::record::FlowRecord>> = (0..window_count)
        .map(|w| {
            (0..window_flows)
                .map(|i| {
                    let (client, server, sport, dport) =
                        (rng() % 1_024, rng() % 48, rng() % 2_048, rng() % 6);
                    anomex_flow::record::FlowRecord::builder()
                        .time((w * 60_000 + i) as u64, (w * 60_000 + i) as u64 + 10)
                        .src(
                            std::net::Ipv4Addr::from(0x0A00_0000 + client as u32),
                            32_768 + sport as u16,
                        )
                        .dst(
                            std::net::Ipv4Addr::from(0xAC10_0000 + server as u32),
                            [80u16, 443, 53, 25, 123, 8_080][dport as usize],
                        )
                        .volume(3, 1_500)
                        .build()
                })
                .collect()
        })
        .collect();
    let windowed_flows = (window_count * window_flows) as f64;

    let start = Instant::now();
    for _ in 0..iters {
        for window in &windows {
            std::hint::black_box(EncodedFlows::encode(window));
        }
    }
    let cold_ns_per_flow = start.elapsed().as_nanos() as f64 / (iters as f64 * windowed_flows);

    let mut state = EncodeState::new();
    for window in &windows {
        std::hint::black_box(EncodedFlows::encode_warm(window, &mut state));
    }
    let _ = state.take_stats();
    let start = Instant::now();
    for _ in 0..iters {
        for window in &windows {
            std::hint::black_box(EncodedFlows::encode_warm(window, &mut state));
        }
    }
    let warm_ns_per_flow = start.elapsed().as_nanos() as f64 / (iters as f64 * windowed_flows);
    let (dict_hits, dict_misses) = state.take_stats();
    assert_eq!(state.epoch(), 0, "the recurring population must not overflow the dictionary");
    let warm_speedup = cold_ns_per_flow / warm_ns_per_flow.max(1e-9);
    println!(
        "\nencode, {window_count} windows x {window_flows} candidate flows \
         ({} recurring items): cold {cold_ns_per_flow:.0} ns/flow, \
         warm {warm_ns_per_flow:.0} ns/flow ({warm_speedup:.2}x, \
         {dict_hits} dict hits / {dict_misses} misses; acceptance floor 3x)",
        state.interned()
    );
    if !test_mode {
        assert!(
            warm_speedup >= 3.0,
            "warm-dictionary encode regressed below the 3x acceptance floor: {warm_speedup:.2}x"
        );
    }
    let dictionary_warm_vs_cold = Value::Object(vec![
        ("windows".to_string(), Value::U64(window_count as u64)),
        ("window_flows".to_string(), Value::U64(window_flows as u64)),
        ("recurring_items".to_string(), Value::U64(state.interned() as u64)),
        ("cold_ns_per_flow".to_string(), Value::F64((cold_ns_per_flow * 10.0).round() / 10.0)),
        ("warm_ns_per_flow".to_string(), Value::F64((warm_ns_per_flow * 10.0).round() / 10.0)),
        ("speedup".to_string(), Value::F64((warm_speedup * 100.0).round() / 100.0)),
        ("dict_hits".to_string(), Value::U64(dict_hits)),
        ("dict_misses".to_string(), Value::U64(dict_misses)),
    ]);

    // The paper's full extraction step (dual metric + self-tuning) over
    // the shared-structure encode, for the end-to-end trajectory. The
    // paper configuration pins the levelwise Apriori; the default
    // configuration routes the same extraction through the dEclat fast
    // path — identical output, and the speedup between them is the
    // committed extract+mine evidence for this corpus.
    let paper = Extractor::new(ExtractorConfig::geant_paper());
    let start = Instant::now();
    let mut paper_itemsets = 0usize;
    for _ in 0..iters {
        paper_itemsets = paper.extract_from_candidates(&flows).itemsets.len();
    }
    let extract_ms = start.elapsed().as_secs_f64() * 1_000.0 / iters as f64;

    let fast = Extractor::new(ExtractorConfig::default());
    let start = Instant::now();
    let mut fast_itemsets = 0usize;
    for _ in 0..iters {
        fast_itemsets = fast.extract_from_candidates(&flows).itemsets.len();
    }
    let extract_eclat_ms = start.elapsed().as_secs_f64() * 1_000.0 / iters as f64;
    assert_eq!(
        paper_itemsets, fast_itemsets,
        "Apriori and dEclat extraction must report the same itemsets"
    );
    let extract_speedup = extract_ms / extract_eclat_ms.max(1e-9);
    println!(
        "\nextract (dual metric, self-tuned): apriori {extract_ms:.1} ms, \
         dEclat {extract_eclat_ms:.1} ms ({extract_speedup:.2}x, \
         {paper_itemsets} itemsets; acceptance floor 2x)"
    );
    if !test_mode {
        assert!(
            extract_speedup >= 2.0,
            "dEclat extract+mine regressed below the 2x-vs-Apriori acceptance floor: \
             {extract_speedup:.2}x"
        );
    }

    let doc = Value::Object(vec![
        ("bench".to_string(), Value::Str("perf_fim".to_string())),
        ("corpus_flows".to_string(), Value::U64(flows.len() as u64)),
        ("iters".to_string(), Value::U64(iters as u64)),
        ("encode_ns_per_flow".to_string(), Value::F64(encode_ns_per_flow.round())),
        ("distinct_items".to_string(), Value::U64(encoded.n_items() as u64)),
        ("results".to_string(), Value::Array(measurements)),
        ("eclat_bitset_vs_tidvec".to_string(), Value::Array(eclat_cmp)),
        ("dictionary_warm_vs_cold".to_string(), dictionary_warm_vs_cold),
        ("extract_ms".to_string(), Value::F64((extract_ms * 1e3).round() / 1e3)),
        ("extract_eclat_ms".to_string(), Value::F64((extract_eclat_ms * 1e3).round() / 1e3)),
        ("extract_speedup".to_string(), Value::F64((extract_speedup * 100.0).round() / 100.0)),
    ]);
    let default_out = if test_mode { "BENCH_fim_smoke.json" } else { "BENCH_fim.json" };
    let path = std::env::var("BENCH_FIM_OUT").unwrap_or_else(|_| default_out.to_string());
    let json = serde_json::to_string_pretty(&doc).expect("render bench json");
    std::fs::write(&path, json + "\n").expect("write bench json");
    println!("wrote {path}");
}

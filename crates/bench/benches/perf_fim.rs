//! **P1 — miner throughput: Apriori vs FP-Growth vs Eclat.**
//!
//! Flow transactions are 4 items wide, which is the regime the paper's
//! extended Apriori runs in. The interesting axes are transaction count
//! and minimum support: levelwise Apriori is competitive at high support
//! (few candidates), pattern growth wins as support drops.
//!
//! Run: `cargo bench -p anomex-bench --bench perf_fim`

use std::time::Duration;

use anomex_core::prelude::*;
use anomex_fim::prelude::*;
use anomex_gen::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Realistic candidate mix: background + an embedded scan.
fn transactions(n_flows: usize) -> TransactionSet {
    let mut spec = AnomalySpec::template(
        AnomalyKind::PortScan,
        "10.0.0.9".parse().unwrap(),
        "172.16.0.1".parse().unwrap(),
    );
    spec.flows = n_flows / 3;
    let mut scenario = Scenario::new("perf", 0xBE7C4, Backbone::Geant).with_anomaly(spec);
    scenario.background.flows = n_flows - n_flows / 3;
    let built = scenario.build();
    encode_flows(&built.store.snapshot(), SupportMetric::Flows)
}

fn bench_miners(c: &mut Criterion) {
    let mut group = c.benchmark_group("fim");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for &n in &[10_000usize, 40_000] {
        let txs = transactions(n);
        for &support in &[0.05f64, 0.01, 0.002] {
            for algorithm in [Algorithm::Apriori, Algorithm::FpGrowth, Algorithm::Eclat] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{algorithm}/sup{support}"), n),
                    &txs,
                    |b, txs| {
                        b.iter(|| {
                            mine(
                                txs,
                                &MiningConfig {
                                    algorithm,
                                    min_support: MinSupport::Fraction(support),
                                    max_len: 4,
                                    threads: 1,
                                },
                            )
                        })
                    },
                );
            }
        }
    }

    // Parallel Apriori counting (crossbeam) — DESIGN.md §5 ablation.
    let txs = transactions(40_000);
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("apriori-threads", threads), &txs, |b, txs| {
            b.iter(|| {
                mine(
                    txs,
                    &MiningConfig {
                        algorithm: Algorithm::Apriori,
                        min_support: MinSupport::Fraction(0.002),
                        max_len: 4,
                        threads,
                    },
                )
            })
        });
    }

    // The paper's full extraction step (dual metric + self-tuning).
    let built = {
        let mut spec = AnomalySpec::template(
            AnomalyKind::PortScan,
            "10.0.0.9".parse().unwrap(),
            "172.16.0.1".parse().unwrap(),
        );
        spec.flows = 15_000;
        let mut s = Scenario::new("perf-extract", 1, Backbone::Geant).with_anomaly(spec);
        s.background.flows = 25_000;
        s.build()
    };
    let cands = built.store.snapshot();
    group.bench_function("extract/top-k-self-tuned/40k", |b| {
        let extractor = Extractor::new(ExtractorConfig::geant_paper());
        b.iter(|| extractor.extract_from_candidates(&cands))
    });

    group.finish();
}

criterion_group!(benches, bench_miners);
criterion_main!(benches);

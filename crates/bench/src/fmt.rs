//! Text-table helpers for experiment output.

/// Render rows as a padded text table; the first row is the header.
pub fn table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            out.extend(std::iter::repeat_n(' ', widths[i] - cell.len()));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

/// Percentage with one decimal, e.g. `94.0%`.
pub fn pct(num: usize, den: usize) -> String {
    if den == 0 {
        return "n/a".into();
    }
    format!("{:.1}%", 100.0 * num as f64 / den as f64)
}

/// Section banner used by every experiment binary.
pub fn banner(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_pads_columns() {
        let t = table(&[vec!["a".into(), "long-header".into()], vec!["xxxx".into(), "b".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "a     long-header");
        assert_eq!(lines[1], "xxxx  b");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(38, 40), "95.0%");
        assert_eq!(pct(0, 0), "n/a");
    }

    #[test]
    fn empty_table_is_empty() {
        assert_eq!(table(&[]), "");
    }
}

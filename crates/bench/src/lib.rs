//! # anomex-bench
//!
//! The experiment harness reproducing every table, figure and
//! quantitative claim of the paper (DESIGN.md §4). The library half
//! holds the campaign machinery shared by the experiment binaries under
//! `benches/` and by `examples/`:
//!
//! - [`campaign`] — oracle alarms with NetReflex-shaped meta-data,
//!   per-case evaluation, and the SWITCH-31 / GEANT-40 campaign runners
//!   behind experiments E1 and E2.
//! - [`fmt`] — small text-table helpers for experiment output.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod fmt;

pub use campaign::{
    run_geant_campaign, run_switch_campaign, synth_alarm, truth_set, CampaignSummary, CaseResult,
};

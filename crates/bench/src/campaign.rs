//! Campaign runners for the paper's two evaluations.
//!
//! The paper measures *extraction* quality given detector alarms — the
//! detector is an external input ("provides the initial meta-data that
//! Apriori uses as input"). The campaigns therefore synthesize alarms
//! with exactly the meta-data shape NetReflex produces (fine-grained,
//! per-IP/port, pointing only at the flagged anomaly) and evaluate the
//! extractor against the generator's exact ground truth.

use anomex_core::prelude::*;
use anomex_detect::alarm::Alarm;
use anomex_flow::feature::FeatureItem;
use anomex_flow::filter::Filter;
use anomex_gen::prelude::*;
use serde::{Deserialize, Serialize};

/// Convert generator ground truth into the validator's label format.
pub fn truth_set(truth: &GroundTruth) -> TruthSet {
    TruthSet::new(
        truth
            .anomalies
            .iter()
            .map(|a| TruthEntry {
                id: a.id,
                keys: a.keys.clone(),
                malicious: a.kind.is_malicious(),
            })
            .collect(),
    )
}

/// Synthesize the detector alarm for one built scenario.
///
/// Meta-data mirrors what the paper's detectors emit per class — e.g.
/// the §2 port-scan example (`srcIP X dstIP Y srcPort 55548 dstPort *`)
/// carries exactly the scanner's srcIP/dstIP/srcPort. Only the *primary*
/// anomaly is described; co-occurring anomalies stay invisible, which is
/// what experiment E2 measures.
pub fn synth_alarm(built: &BuiltScenario, primary: Option<usize>, id: u64) -> Alarm {
    let window = built.scenario.window();
    let mut alarm = Alarm::new(id, "netreflex-oracle", window);
    let Some(primary) = primary else {
        return alarm; // alarm without meta-data: whole-interval extraction
    };
    let label = &built.truth.anomalies[primary];
    let spec = &label.spec;
    let hints: Vec<FeatureItem> = match label.kind {
        // The §2 example: scanner's source, target, bound source port.
        AnomalyKind::PortScan | AnomalyKind::StealthyScan => {
            let mut h = vec![FeatureItem::src_ip(spec.attacker), FeatureItem::dst_ip(spec.victim)];
            if spec.src_port != 0 {
                h.push(FeatureItem::src_port(spec.src_port));
            }
            h
        }
        AnomalyKind::NetworkScan => {
            vec![FeatureItem::src_ip(spec.attacker), FeatureItem::dst_port(spec.dst_port)]
        }
        // Victim-side concentration is what entropy detectors see.
        AnomalyKind::SynFlood | AnomalyKind::UdpDdos => {
            vec![FeatureItem::dst_ip(spec.victim), FeatureItem::dst_port(spec.dst_port)]
        }
        AnomalyKind::UdpFlood | AnomalyKind::IcmpFlood | AnomalyKind::AlphaFlow => {
            vec![FeatureItem::src_ip(spec.attacker), FeatureItem::dst_ip(spec.victim)]
        }
    };
    alarm = alarm.with_hints(hints).with_kind(label.kind.label()).with_score(10.0, 1.0);
    alarm
}

/// Outcome of one campaign case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseResult {
    /// Scenario name.
    pub name: String,
    /// Case class (GEANT campaign) or `Clean` (SWITCH campaign).
    pub class: CaseClass,
    /// Primary anomaly kind, if any.
    pub kind: Option<String>,
    /// Candidate flows mined.
    pub candidates: usize,
    /// Itemsets returned.
    pub itemsets: usize,
    /// Useful itemsets (point at a malicious anomaly).
    pub useful_itemsets: usize,
    /// False-positive itemsets.
    pub false_itemsets: usize,
    /// Extraction useful at all?
    pub useful: bool,
    /// Useful itemsets matched an anomaly beyond the flagged one
    /// (the paper's "additional flows not provided by the detector").
    pub additional: bool,
    /// Recall of the primary anomaly's observed flows (`None` when the
    /// case has no primary or it left no observed flows).
    pub primary_recall: Option<f64>,
}

/// Aggregated campaign outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// Per-case results, corpus order.
    pub cases: Vec<CaseResult>,
}

impl CampaignSummary {
    /// Number of cases.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// True when the campaign ran no cases.
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// Cases with at least one useful itemset.
    pub fn useful(&self) -> usize {
        self.cases.iter().filter(|c| c.useful).count()
    }

    /// Useful cases that surfaced additional anomalies.
    pub fn additional(&self) -> usize {
        self.cases.iter().filter(|c| c.useful && c.additional).count()
    }

    /// Cases where extraction failed (the paper's 6% bucket).
    pub fn failures(&self) -> usize {
        self.len() - self.useful()
    }

    /// Mean false-positive itemsets per case.
    pub fn mean_false_itemsets(&self) -> f64 {
        if self.cases.is_empty() {
            return 0.0;
        }
        self.cases.iter().map(|c| c.false_itemsets).sum::<usize>() as f64 / self.cases.len() as f64
    }

    /// Mean primary recall over cases where it is defined.
    pub fn mean_primary_recall(&self) -> f64 {
        let defined: Vec<f64> = self.cases.iter().filter_map(|c| c.primary_recall).collect();
        if defined.is_empty() {
            return 0.0;
        }
        defined.iter().sum::<f64>() / defined.len() as f64
    }
}

/// Run one case: build, synthesize the alarm, extract, validate.
pub fn run_case(
    scenario: &Scenario,
    class: CaseClass,
    primary: Option<usize>,
    extractor: &Extractor,
    validation: &ValidationConfig,
) -> CaseResult {
    let built = scenario.build();
    let alarm = synth_alarm(&built, primary, 0);
    let extraction = extractor.extract(&built.store, &alarm);
    let observed = built.store.query(alarm.window, &Filter::any());
    let truth = truth_set(&built.truth);
    let verdict = validate(&extraction, &observed, &truth, validation);

    let additional = primary
        .map(|p| verdict.matched_anomalies().iter().any(|&id| id != p))
        .unwrap_or(!verdict.matched_anomalies().is_empty());
    let primary_recall =
        primary.and_then(|p| verdict.recall.iter().find(|(id, _)| *id == p).map(|&(_, r)| r));

    CaseResult {
        name: scenario.name.clone(),
        class,
        kind: primary.map(|p| built.truth.anomalies[p].kind.label().to_string()),
        candidates: extraction.candidate_flows,
        itemsets: extraction.itemsets.len(),
        useful_itemsets: verdict.useful_itemsets,
        false_itemsets: verdict.false_itemsets,
        useful: verdict.is_useful(),
        additional,
        primary_recall,
    }
}

/// Experiment E1: the 31-case SWITCH campaign (unsampled, flow-support
/// configuration unless overridden).
pub fn run_switch_campaign(
    corpus: &CorpusConfig,
    extractor_config: ExtractorConfig,
) -> CampaignSummary {
    let extractor = Extractor::new(extractor_config);
    let validation = ValidationConfig::default();
    let cases = switch_corpus(corpus)
        .iter()
        .map(|s| run_case(s, CaseClass::Clean, Some(0), &extractor, &validation))
        .collect();
    CampaignSummary { cases }
}

/// Experiment E2: the 40-alarm GEANT campaign (1/100 sampled, dual
/// support configuration unless overridden).
pub fn run_geant_campaign(
    corpus: &CorpusConfig,
    extractor_config: ExtractorConfig,
) -> CampaignSummary {
    let extractor = Extractor::new(extractor_config);
    let validation = ValidationConfig::default();
    let cases = geant_corpus(corpus)
        .iter()
        .map(|case| run_case(&case.scenario, case.class, case.primary, &extractor, &validation))
        .collect();
    CampaignSummary { cases }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CorpusConfig {
        CorpusConfig { scale: 0.05, seed: 77 }
    }

    #[test]
    fn switch_campaign_small_scale_mostly_succeeds() {
        let summary = run_switch_campaign(&tiny(), ExtractorConfig::switch_paper());
        assert_eq!(summary.len(), 31);
        // At 5% scale the volumes are tiny; demand a strong majority, the
        // full-scale bench demands 31/31.
        assert!(
            summary.useful() >= 28,
            "useful {}/31: {:?}",
            summary.useful(),
            summary.cases.iter().filter(|c| !c.useful).map(|c| &c.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn geant_campaign_small_scale_shapes_hold() {
        let summary = run_geant_campaign(&tiny(), ExtractorConfig::geant_paper());
        assert_eq!(summary.len(), 40);
        assert!(summary.useful() >= 30, "useful {}/40", summary.useful());
        assert!(summary.failures() >= 1, "stealthy/false-alarm cases must fail");
        assert!(summary.additional() >= 5, "additional {}", summary.additional());
    }

    #[test]
    fn oracle_alarm_carries_portscan_shape() {
        let corpus = switch_corpus(&tiny());
        let built = corpus[0].build(); // port scan case
        let alarm = synth_alarm(&built, Some(0), 7);
        assert_eq!(alarm.id, 7);
        assert_eq!(alarm.hints.len(), 3, "{:?}", alarm.hints);
        assert_eq!(alarm.kind_hint.as_deref(), Some("port scan"));
    }

    #[test]
    fn alarm_without_primary_has_no_hints() {
        let corpus = switch_corpus(&tiny());
        let built = corpus[0].build();
        let alarm = synth_alarm(&built, None, 0);
        assert!(alarm.hints.is_empty());
    }

    #[test]
    fn truth_set_marks_alpha_benign() {
        let mut spec = AnomalySpec::template(
            AnomalyKind::AlphaFlow,
            "10.0.0.1".parse().unwrap(),
            "172.16.0.1".parse().unwrap(),
        );
        spec.packets = 100;
        let mut scenario = Scenario::new("t", 1, Backbone::Switch).with_anomaly(spec);
        scenario.background.flows = 100;
        let built = scenario.build();
        let ts = truth_set(&built.truth);
        assert_eq!(ts.entries.len(), 1);
        assert!(!ts.entries[0].malicious);
    }
}

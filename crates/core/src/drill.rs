//! Flow drill-down.
//!
//! The paper's GUI lets the operator "investigate the flows of any
//! returned itemset" — e.g. inspecting the raw flows revealed that the
//! Table 1 DDoS "was a TCP SYN flood and that it happened a few minutes
//! after the scan". This module answers that query: itemset → raw flows,
//! plus summary statistics an operator reads first.

use anomex_detect::alarm::Alarm;
use anomex_flow::record::{FlowRecord, TcpFlags};
use anomex_flow::store::{FlowStore, TimeRange};
use serde::{Deserialize, Serialize};

use crate::extract::ExtractedItemset;

/// Summary of the flows covered by one itemset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrillSummary {
    /// Covered flow count.
    pub flows: u64,
    /// Covered packet total.
    pub packets: u64,
    /// Covered byte total.
    pub bytes: u64,
    /// First flow start (epoch ms).
    pub first_ms: u64,
    /// Last flow end (epoch ms).
    pub last_ms: u64,
    /// Share of TCP flows that are SYN-only (the SYN-flood tell).
    pub syn_only_fraction: f64,
    /// Distinct source addresses.
    pub distinct_src_ips: usize,
    /// Distinct destination ports.
    pub distinct_dst_ports: usize,
}

impl DrillSummary {
    /// Summarize a set of flows (typically the output of [`drill`]).
    pub fn of(flows: &[FlowRecord]) -> DrillSummary {
        let mut s = DrillSummary {
            flows: flows.len() as u64,
            packets: 0,
            bytes: 0,
            first_ms: u64::MAX,
            last_ms: 0,
            syn_only_fraction: 0.0,
            distinct_src_ips: 0,
            distinct_dst_ports: 0,
        };
        let mut tcp = 0u64;
        let mut syn_only = 0u64;
        let mut srcs = std::collections::HashSet::new();
        let mut dports = std::collections::HashSet::new();
        for f in flows {
            s.packets += f.packets;
            s.bytes += f.bytes;
            s.first_ms = s.first_ms.min(f.start_ms);
            s.last_ms = s.last_ms.max(f.end_ms);
            if f.is_tcp() {
                tcp += 1;
                if f.tcp_flags.is_syn_only() {
                    syn_only += 1;
                }
            }
            srcs.insert(f.src_ip);
            dports.insert(f.dst_port);
        }
        if flows.is_empty() {
            s.first_ms = 0;
        }
        s.syn_only_fraction = if tcp > 0 { syn_only as f64 / tcp as f64 } else { 0.0 };
        s.distinct_src_ips = srcs.len();
        s.distinct_dst_ports = dports.len();
        s
    }

    /// One-line rendering for the console.
    pub fn describe(&self) -> String {
        format!(
            "{} flows, {} packets, {} bytes, span {}..{}, {:.0}% SYN-only, {} srcIPs, {} dstPorts",
            self.flows,
            self.packets,
            self.bytes,
            self.first_ms,
            self.last_ms,
            self.syn_only_fraction * 100.0,
            self.distinct_src_ips,
            self.distinct_dst_ports
        )
    }
}

/// Fetch the raw flows covered by `itemset` in the alarm window.
pub fn drill(store: &FlowStore, alarm: &Alarm, itemset: &ExtractedItemset) -> Vec<FlowRecord> {
    drill_window(store, alarm.window, itemset)
}

/// Fetch the raw flows covered by `itemset` in an arbitrary window
/// (operators often widen the window to find what happened "a few
/// minutes after").
pub fn drill_window(
    store: &FlowStore,
    window: TimeRange,
    itemset: &ExtractedItemset,
) -> Vec<FlowRecord> {
    let mut flows = store.query(window, &itemset.filter());
    flows.sort_by_key(|f| (f.start_ms, f.key()));
    flows
}

/// Is the covered traffic a TCP SYN flood? (The check the Table 1
/// narrative performs by eye.)
pub fn looks_like_syn_flood(summary: &DrillSummary) -> bool {
    summary.syn_only_fraction > 0.9 && summary.flows > 1 && summary.distinct_src_ips > 1
}

/// Accumulated-flag histogram over flows, for the console's flag view.
pub fn flag_histogram(flows: &[FlowRecord]) -> Vec<(TcpFlags, u64)> {
    let mut map = std::collections::HashMap::new();
    for f in flows {
        *map.entry(f.tcp_flags).or_insert(0u64) += 1;
    }
    let mut out: Vec<(TcpFlags, u64)> = map.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::SupportMetric;
    use anomex_flow::feature::FeatureItem;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn syn_flood_store() -> FlowStore {
        let store = FlowStore::new(60_000);
        for i in 0..100u32 {
            store.insert(
                FlowRecord::builder()
                    .time(1_000 + i as u64, 1_100 + i as u64)
                    .src(Ipv4Addr::from(0x64400000 + i), 3072)
                    .dst(ip("172.16.0.1"), 80)
                    .tcp_flags(TcpFlags::SYN)
                    .volume(2, 80)
                    .build(),
            );
        }
        // Benign complete flow to the same host, different port.
        store.insert(
            FlowRecord::builder()
                .time(1_000, 2_000)
                .src(ip("10.0.0.5"), 40_000)
                .dst(ip("172.16.0.1"), 443)
                .tcp_flags(TcpFlags::COMPLETE)
                .volume(10, 5_000)
                .build(),
        );
        store
    }

    fn flood_itemset() -> ExtractedItemset {
        ExtractedItemset {
            items: vec![FeatureItem::dst_ip(ip("172.16.0.1")), FeatureItem::dst_port(80)],
            flow_support: 100,
            packet_support: 200,
            found_by: vec![SupportMetric::Flows],
        }
    }

    #[test]
    fn drill_fetches_exactly_covered_flows() {
        let store = syn_flood_store();
        let alarm = Alarm::new(0, "t", TimeRange::new(0, 10_000));
        let flows = drill(&store, &alarm, &flood_itemset());
        assert_eq!(flows.len(), 100);
        assert!(flows.iter().all(|f| f.dst_port == 80));
    }

    #[test]
    fn drill_results_are_time_sorted() {
        let store = syn_flood_store();
        let alarm = Alarm::new(0, "t", TimeRange::new(0, 10_000));
        let flows = drill(&store, &alarm, &flood_itemset());
        assert!(flows.windows(2).all(|w| w[0].start_ms <= w[1].start_ms));
    }

    #[test]
    fn summary_detects_syn_flood() {
        let store = syn_flood_store();
        let alarm = Alarm::new(0, "t", TimeRange::new(0, 10_000));
        let flows = drill(&store, &alarm, &flood_itemset());
        let summary = DrillSummary::of(&flows);
        assert!(summary.syn_only_fraction > 0.99);
        assert_eq!(summary.distinct_src_ips, 100);
        assert!(looks_like_syn_flood(&summary));
    }

    #[test]
    fn summary_of_empty_is_zeroed() {
        let s = DrillSummary::of(&[]);
        assert_eq!(s.flows, 0);
        assert_eq!(s.first_ms, 0);
        assert!(!looks_like_syn_flood(&s));
    }

    #[test]
    fn benign_traffic_is_not_a_syn_flood() {
        let flows =
            vec![FlowRecord::builder().tcp_flags(TcpFlags::COMPLETE).volume(10, 1000).build()];
        assert!(!looks_like_syn_flood(&DrillSummary::of(&flows)));
    }

    #[test]
    fn flag_histogram_orders_by_count() {
        let store = syn_flood_store();
        let flows = store.query(TimeRange::all(), &anomex_flow::filter::Filter::any());
        let hist = flag_histogram(&flows);
        assert_eq!(hist[0].0, TcpFlags::SYN);
        assert_eq!(hist[0].1, 100);
    }

    #[test]
    fn widened_window_sees_later_traffic() {
        let store = syn_flood_store();
        store.insert(
            FlowRecord::builder()
                .time(500_000, 500_100)
                .src(ip("10.2.2.2"), 1111)
                .dst(ip("172.16.0.1"), 80)
                .volume(1, 40)
                .build(),
        );
        let narrow = drill_window(&store, TimeRange::new(0, 10_000), &flood_itemset());
        let wide = drill_window(&store, TimeRange::new(0, 600_000), &flood_itemset());
        assert_eq!(wide.len(), narrow.len() + 1);
    }
}

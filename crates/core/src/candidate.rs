//! Candidate flow selection.
//!
//! Step 1 of the paper's pipeline: "a detector raises an alarm for a time
//! interval and identifies related meta-data, such as affected IP
//! addresses or port numbers: this provides a set of candidate anomalous
//! flows". The candidate set is the union (logical OR) of the meta-data
//! hints over the alarm window — deliberately generous, since hints "can
//! miss part of an anomaly or may include a large number of
//! false-positive flows"; the miner separates structure from noise.

use anomex_detect::alarm::Alarm;
use anomex_flow::feature::{Feature, FeatureItem, FeatureValue};
use anomex_flow::filter::{CmpOp, Dir, Expr, Filter, Pred};
use anomex_flow::record::FlowRecord;
use anomex_flow::store::{FlowStore, TimeRange};

/// How candidate flows are selected from the alarm window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidatePolicy {
    /// Union of the meta-data hints (the paper's system). Falls back to
    /// the whole interval when the alarm carries no hints.
    HintUnion,
    /// Ignore hints, mine the whole interval (the ablation baseline of
    /// DESIGN.md §5: "candidate pre-filtering by meta-data union vs
    /// mining the whole interval").
    WholeInterval,
}

/// The filter corresponding to one hint (equality on its dimension).
fn hint_pred(hint: FeatureItem) -> Option<Pred> {
    Some(match (hint.feature, hint.value) {
        (Feature::SrcIp, FeatureValue::Ip(ip)) => Pred::Ip(Dir::Src, ip),
        (Feature::DstIp, FeatureValue::Ip(ip)) => Pred::Ip(Dir::Dst, ip),
        (Feature::SrcPort, FeatureValue::Port(p)) => Pred::Port(Dir::Src, CmpOp::Eq, p),
        (Feature::DstPort, FeatureValue::Port(p)) => Pred::Port(Dir::Dst, CmpOp::Eq, p),
        (Feature::Proto, FeatureValue::Proto(p)) => Pred::Proto(p),
        _ => return None,
    })
}

/// Build the candidate filter for an alarm under `policy`.
pub fn candidate_filter(alarm: &Alarm, policy: CandidatePolicy) -> Filter {
    if policy == CandidatePolicy::WholeInterval || alarm.hints.is_empty() {
        return Filter::any();
    }
    let mut expr: Option<Expr> = None;
    for &hint in &alarm.hints {
        let Some(pred) = hint_pred(hint) else { continue };
        let leaf = Expr::Pred(pred);
        expr = Some(match expr {
            None => leaf,
            Some(e) => e.or(leaf),
        });
    }
    match expr {
        None => Filter::any(),
        Some(e) => Filter::from_expr(e),
    }
}

/// Select the candidate flows of `alarm` from `store`.
pub fn candidates(store: &FlowStore, alarm: &Alarm, policy: CandidatePolicy) -> Vec<FlowRecord> {
    store.query(alarm.window, &candidate_filter(alarm, policy))
}

/// Select candidates from an in-memory slice (no store required).
pub fn candidates_from_slice(
    flows: &[FlowRecord],
    window: TimeRange,
    alarm: &Alarm,
    policy: CandidatePolicy,
) -> Vec<FlowRecord> {
    candidates_from_iter(flows, window, alarm, policy)
}

/// Select candidates from any in-memory record sequence — segmented
/// window storage (`Arc<[FlowRecord]>` runs chained in window order)
/// selects identically to one contiguous slice without ever
/// concatenating the segments.
pub fn candidates_from_iter<'a, I>(
    flows: I,
    window: TimeRange,
    alarm: &Alarm,
    policy: CandidatePolicy,
) -> Vec<FlowRecord>
where
    I: IntoIterator<Item = &'a FlowRecord>,
{
    let filter = candidate_filter(alarm, policy);
    flows.into_iter().filter(|f| window.overlaps(f) && filter.matches(f)).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn store() -> FlowStore {
        let store = FlowStore::new(60_000);
        // Scanner flow.
        store.insert(
            FlowRecord::builder()
                .time(1_000, 1_100)
                .src(ip("10.0.0.9"), 55_548)
                .dst(ip("172.16.0.1"), 1234)
                .build(),
        );
        // Victim-bound flow from elsewhere.
        store.insert(
            FlowRecord::builder()
                .time(2_000, 2_100)
                .src(ip("10.0.0.50"), 4_000)
                .dst(ip("172.16.0.1"), 80)
                .build(),
        );
        // Unrelated flow.
        store.insert(
            FlowRecord::builder()
                .time(3_000, 3_100)
                .src(ip("10.0.0.60"), 4_001)
                .dst(ip("172.16.0.200"), 443)
                .build(),
        );
        // Outside the window.
        store.insert(
            FlowRecord::builder()
                .time(900_000, 900_100)
                .src(ip("10.0.0.9"), 55_548)
                .dst(ip("172.16.0.1"), 80)
                .build(),
        );
        store
    }

    fn alarm(hints: Vec<FeatureItem>) -> Alarm {
        Alarm::new(0, "test", TimeRange::new(0, 10_000)).with_hints(hints)
    }

    #[test]
    fn union_keeps_any_hint_match() {
        let a =
            alarm(vec![FeatureItem::src_ip(ip("10.0.0.9")), FeatureItem::dst_ip(ip("172.16.0.1"))]);
        let got = candidates(&store(), &a, CandidatePolicy::HintUnion);
        // Scanner flow (src match) + victim flow (dst match); unrelated
        // and out-of-window flows excluded.
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn no_hints_falls_back_to_whole_interval() {
        let a = alarm(vec![]);
        let got = candidates(&store(), &a, CandidatePolicy::HintUnion);
        assert_eq!(got.len(), 3, "all in-window flows are candidates");
    }

    #[test]
    fn whole_interval_ignores_hints() {
        let a = alarm(vec![FeatureItem::src_ip(ip("10.0.0.9"))]);
        let got = candidates(&store(), &a, CandidatePolicy::WholeInterval);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn port_hints_select_by_direction() {
        let a = alarm(vec![FeatureItem::dst_port(80)]);
        let got = candidates(&store(), &a, CandidatePolicy::HintUnion);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].dst_port, 80);
    }

    #[test]
    fn slice_selection_matches_store_selection() {
        let st = store();
        let a = alarm(vec![FeatureItem::dst_ip(ip("172.16.0.1"))]);
        let from_store = candidates(&st, &a, CandidatePolicy::HintUnion);
        let from_slice =
            candidates_from_slice(&st.snapshot(), a.window, &a, CandidatePolicy::HintUnion);
        assert_eq!(from_store.len(), from_slice.len());
    }

    #[test]
    fn candidate_filter_is_printable_and_reparsable() {
        let a = alarm(vec![FeatureItem::src_ip(ip("10.0.0.9")), FeatureItem::dst_port(80)]);
        let filter = candidate_filter(&a, CandidatePolicy::HintUnion);
        assert!(Filter::parse(&filter.to_string()).is_ok(), "{}", filter);
    }
}

//! The extended-Apriori extraction step — the paper's core contribution.
//!
//! Given the candidate flows of an alarm, mine the top-k maximal itemsets
//! under **two support metrics** (flows and packets), with the
//! minimum-support threshold self-adjusted per metric
//! ("we extended Apriori to also compute the support of an itemset in
//! terms of packets in addition to flows … and added the capability of
//! automatically self-adjusting some of its configuration parameters").
//! Results from both passes are merged per itemset, annotated with both
//! supports, subsumption-filtered and ranked.

use anomex_detect::alarm::Alarm;
use anomex_fim::prelude::*;
use anomex_fim::Algorithm;
use anomex_flow::feature::FeatureItem;
use anomex_flow::record::FlowRecord;
use anomex_flow::store::FlowStore;
use serde::{Deserialize, Serialize};

use crate::candidate::{candidates, CandidatePolicy};
use crate::encode::{decode_itemset, itemset_filter, EncodedFlows, SupportMetric};

/// Extraction configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractorConfig {
    /// Target number of itemsets per support metric (the paper's GUI
    /// surfaces "the top-k itemsets with the highest support").
    pub k: usize,
    /// Never report an itemset backed by fewer flows than this.
    pub flow_floor: u64,
    /// Never report an itemset backed by fewer packets than this
    /// (only relevant when `packet_support` is on).
    pub packet_floor: u64,
    /// Mine with packet support in addition to flow support — the
    /// extension this paper adds over the IMC'09 technique.
    pub packet_support: bool,
    /// How candidates are selected from the alarm window.
    pub policy: CandidatePolicy,
    /// The mining algorithm. All three miners produce identical output;
    /// the default is the diffset Eclat fast path, with
    /// [`switch_paper`](ExtractorConfig::switch_paper) /
    /// [`geant_paper`](ExtractorConfig::geant_paper) pinning the paper's
    /// Apriori for fidelity runs.
    pub algorithm: Algorithm,
    /// Longest itemset (flows have 4 mining dimensions).
    pub max_len: usize,
    /// Self-tuning budget: mining rounds allowed per metric.
    pub max_rounds: usize,
}

impl Default for ExtractorConfig {
    fn default() -> Self {
        ExtractorConfig {
            k: 10,
            flow_floor: 8,
            packet_floor: 2_000,
            packet_support: true,
            policy: CandidatePolicy::HintUnion,
            algorithm: Algorithm::Eclat,
            max_len: 4,
            max_rounds: 24,
        }
    }
}

impl ExtractorConfig {
    /// The configuration of the paper's SWITCH/IMC'09 evaluation:
    /// flow support only (the packet extension did not exist yet),
    /// mined with the paper's own Apriori.
    pub fn switch_paper() -> ExtractorConfig {
        ExtractorConfig {
            packet_support: false,
            algorithm: Algorithm::Apriori,
            ..ExtractorConfig::default()
        }
    }

    /// The configuration of the paper's GEANT deployment: dual support,
    /// self-tuning enabled, mined with the paper's own Apriori.
    pub fn geant_paper() -> ExtractorConfig {
        ExtractorConfig { algorithm: Algorithm::Apriori, ..ExtractorConfig::default() }
    }
}

/// One extracted itemset with both supports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtractedItemset {
    /// The feature items present (absent dimensions are wildcards).
    pub items: Vec<FeatureItem>,
    /// Support in flow records among the candidates.
    pub flow_support: u64,
    /// Support in packets among the candidates.
    pub packet_support: u64,
    /// Which mining pass(es) surfaced it.
    pub found_by: Vec<SupportMetric>,
}

impl ExtractedItemset {
    /// Does `flow` carry every item of this itemset?
    pub fn covers(&self, flow: &FlowRecord) -> bool {
        self.items.iter().all(|i| i.matches(flow))
    }

    /// The drill-down filter selecting exactly the covered flows.
    pub fn filter(&self) -> anomex_flow::filter::Filter {
        itemset_filter(&self.items)
    }

    /// Wildcard-aware rendering: `srcIP dstIP srcPort dstPort` with `*`
    /// for absent dimensions (the Table 1 row format).
    pub fn pattern(&self) -> String {
        use anomex_flow::feature::Feature;
        let cell = |f: Feature| {
            self.items
                .iter()
                .find(|i| i.feature == f)
                .map(|i| i.value.to_string())
                .unwrap_or_else(|| "*".into())
        };
        format!(
            "{} {} {} {}",
            cell(Feature::SrcIp),
            cell(Feature::DstIp),
            cell(Feature::SrcPort),
            cell(Feature::DstPort)
        )
    }
}

/// Self-tuning telemetry of one mining pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuningInfo {
    /// Which metric the pass mined.
    pub metric: SupportMetric,
    /// The support threshold the search converged on.
    pub chosen_support: u64,
    /// Mining invocations spent.
    pub rounds: usize,
    /// Maximal itemsets available at the chosen threshold.
    pub total_found: usize,
}

/// The result of extracting one alarm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Extraction {
    /// Ranked itemsets (best evidence first).
    pub itemsets: Vec<ExtractedItemset>,
    /// Number of candidate flows mined.
    pub candidate_flows: usize,
    /// Packet total of the candidates.
    pub candidate_packets: u64,
    /// Per-metric tuning telemetry.
    pub tuning: Vec<TuningInfo>,
}

impl Extraction {
    /// True when nothing meaningful was extracted (the paper's 6% case).
    pub fn is_empty(&self) -> bool {
        self.itemsets.is_empty()
    }
}

/// The anomaly extractor.
#[derive(Debug, Clone)]
pub struct Extractor {
    config: ExtractorConfig,
}

impl Extractor {
    /// Extractor with the given configuration.
    pub fn new(config: ExtractorConfig) -> Extractor {
        assert!(config.k > 0, "k must be positive");
        Extractor { config }
    }

    /// Extractor with the paper's GEANT configuration.
    pub fn with_defaults() -> Extractor {
        Extractor::new(ExtractorConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &ExtractorConfig {
        &self.config
    }

    /// Extract the itemsets of `alarm` from `store`.
    pub fn extract(&self, store: &FlowStore, alarm: &Alarm) -> Extraction {
        let cands = candidates(store, alarm, self.config.policy);
        self.extract_from_candidates(&cands)
    }

    /// Extract the itemsets of `alarm` from a borrowed slice of window
    /// records — the streaming entry point, where the alarmed window's
    /// flows already sit in memory and no [`FlowStore`] query is needed.
    ///
    /// Candidate selection applies the same window-overlap + hint-union
    /// filter as [`Extractor::extract`], so over identical records both
    /// entry points mine identical candidate sets.
    pub fn extract_from_window(&self, window_flows: &[FlowRecord], alarm: &Alarm) -> Extraction {
        let cands = crate::candidate::candidates_from_slice(
            window_flows,
            alarm.window,
            alarm,
            self.config.policy,
        );
        self.extract_from_candidates(&cands)
    }

    /// Extract from a pre-selected candidate set. Encodes the candidates
    /// once (see [`EncodedFlows`]) and mines both support metrics from
    /// the shared matrix.
    pub fn extract_from_candidates(&self, cands: &[FlowRecord]) -> Extraction {
        self.extract_encoded(&EncodedFlows::encode(cands))
    }

    /// Extract from an already-encoded candidate set — the zero-encode
    /// path for callers that hold a reusable [`EncodedFlows`] (the
    /// streaming extractor re-mining one window under several alarms).
    pub fn extract_encoded(&self, encoded: &EncodedFlows) -> Extraction {
        let mut extraction = Extraction {
            itemsets: Vec::new(),
            candidate_flows: encoded.candidate_flows(),
            candidate_packets: encoded.candidate_packets(),
            tuning: Vec::new(),
        };
        if encoded.flow_matrix().is_empty() {
            return extraction;
        }

        let flow_txs = encoded.flow_matrix();
        let packet_txs = encoded.packet_matrix();

        let mut merged: Vec<ExtractedItemset> = Vec::new();
        let mut passes: Vec<(SupportMetric, &TransactionMatrix, u64)> =
            vec![(SupportMetric::Flows, flow_txs, self.config.flow_floor)];
        if self.config.packet_support {
            passes.push((SupportMetric::Packets, packet_txs, self.config.packet_floor));
        }

        for (metric, txs, floor) in passes {
            let result = mine_top_k(
                txs,
                &TopKConfig {
                    k: self.config.k,
                    floor: floor.max(1),
                    max_rounds: self.config.max_rounds,
                    max_len: self.config.max_len,
                    algorithm: self.config.algorithm,
                },
            );
            extraction.tuning.push(TuningInfo {
                metric,
                chosen_support: result.chosen_support,
                rounds: result.rounds,
                total_found: result.total_found,
            });
            for frequent in &result.itemsets {
                let items = decode_itemset(&frequent.itemset);
                if items.is_empty() {
                    continue;
                }
                if let Some(existing) = merged.iter_mut().find(|e| e.items == items) {
                    if !existing.found_by.contains(&metric) {
                        existing.found_by.push(metric);
                    }
                } else {
                    merged.push(ExtractedItemset {
                        items,
                        // Exact supports on both metrics, whichever pass
                        // found the itemset.
                        flow_support: flow_txs.support_of(&frequent.itemset),
                        packet_support: packet_txs.support_of(&frequent.itemset),
                        found_by: vec![metric],
                    });
                }
            }
        }

        // Cross-metric subsumption: the union of the two passes can
        // resurrect a subset next to its superset (e.g. `{dstIP}` from
        // the flow pass beside the full flood itemset from the packet
        // pass). Drop a subset only when a reported superset *explains*
        // it — carries (almost) the same support on either metric, the
        // closed-itemset criterion. An 8-support noise superset must NOT
        // displace a 90K-support itemset; the 1M-packet flood 4-itemset
        // rightly absorbs its `{dstIP}` shadow. This is also why Table 1
        // carries no bare `dstIP = victim` row: every row implies it and
        // together they explain its support.
        const EXPLAIN: f64 = 0.8;
        let mut keep = vec![true; merged.len()];
        for i in 0..merged.len() {
            for j in 0..merged.len() {
                if i == j || !keep[i] {
                    continue;
                }
                let (a, b) = (&merged[i], &merged[j]);
                let explains = b.flow_support as f64 >= EXPLAIN * a.flow_support as f64
                    || b.packet_support as f64 >= EXPLAIN * a.packet_support as f64;
                if a.items.len() < b.items.len()
                    && explains
                    && a.items.iter().all(|x| b.items.contains(x))
                {
                    keep[i] = false;
                }
            }
        }
        let mut itemsets: Vec<ExtractedItemset> =
            merged.into_iter().zip(keep).filter_map(|(e, k)| k.then_some(e)).collect();

        // Rank by the stronger of the two normalized supports, so a
        // 2-flow/1M-packet flood and a 300K-flow scan both rise to the top.
        let total_flows = extraction.candidate_flows.max(1) as f64;
        let total_packets = extraction.candidate_packets.max(1) as f64;
        let score = |e: &ExtractedItemset| -> f64 {
            let ff = e.flow_support as f64 / total_flows;
            let pf = e.packet_support as f64 / total_packets;
            ff.max(pf)
        };
        itemsets.sort_by(|a, b| {
            score(b)
                .partial_cmp(&score(a))
                .unwrap()
                .then(b.flow_support.cmp(&a.flow_support))
                .then(a.pattern().cmp(&b.pattern()))
        });
        itemsets.truncate(2 * self.config.k);
        extraction.itemsets = itemsets;
        extraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_detect::alarm::Alarm;
    use anomex_flow::store::TimeRange;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// 400 scan flows from one source + 50 benign noise flows.
    fn scan_candidates() -> Vec<FlowRecord> {
        let mut flows = Vec::new();
        for p in 1..=400u32 {
            flows.push(
                FlowRecord::builder()
                    .time(p as u64, p as u64 + 1)
                    .src(ip("10.0.0.9"), 55_548)
                    .dst(ip("172.16.0.1"), p as u16)
                    .volume(1, 44)
                    .build(),
            );
        }
        for i in 0..50u32 {
            flows.push(
                FlowRecord::builder()
                    .time(i as u64, i as u64 + 10)
                    .src(Ipv4Addr::from(0x0A000100 + i), 1024 + i as u16)
                    .dst(Ipv4Addr::from(0xAC100000 + (i % 5)), 80)
                    .volume(3, 1500)
                    .build(),
            );
        }
        flows
    }

    #[test]
    fn scan_extracts_scanner_itemset_first() {
        let ex = Extractor::with_defaults();
        let result = ex.extract_from_candidates(&scan_candidates());
        assert!(!result.is_empty());
        let top = &result.itemsets[0];
        assert!(top.covers(
            &FlowRecord::builder().src(ip("10.0.0.9"), 55_548).dst(ip("172.16.0.1"), 9).build()
        ));
        assert_eq!(top.flow_support, 400);
        // The scan pattern fixes src ip/port and dst ip but not dst port.
        assert!(top.pattern().ends_with('*'), "{}", top.pattern());
    }

    #[test]
    fn packet_support_surfaces_two_flow_flood() {
        // 2 flood flows with 500K packets each, hidden in 300 benign flows.
        let mut flows = Vec::new();
        for k in 0..2u64 {
            flows.push(
                FlowRecord::builder()
                    .time(k, k + 100)
                    .src(ip("10.9.9.9"), 4500)
                    .dst(ip("172.16.0.7"), 5060)
                    .proto(anomex_flow::record::Protocol::UDP)
                    .volume(500_000, 500_000 * 1000)
                    .build(),
            );
        }
        for i in 0..300u32 {
            flows.push(
                FlowRecord::builder()
                    .time(i as u64, i as u64 + 10)
                    .src(Ipv4Addr::from(0x0A000200 + i), 1024 + i as u16)
                    .dst(Ipv4Addr::from(0xAC100000 + (i % 50)), if i % 2 == 0 { 80 } else { 443 })
                    .volume(5, 2500)
                    .build(),
            );
        }

        // With packet support: the flood pair tops the ranking.
        let dual = Extractor::new(ExtractorConfig::geant_paper());
        let result = dual.extract_from_candidates(&flows);
        let top = &result.itemsets[0];
        assert_eq!(top.packet_support, 1_000_000, "flood itemset: {}", top.pattern());
        assert_eq!(top.flow_support, 2);
        assert!(top.found_by.contains(&SupportMetric::Packets));

        // Flow-support only: a 2-flow itemset cannot clear the floor —
        // the paper's motivating failure ("if an anomaly is not
        // characterized by a significant volume of flows, Apriori cannot
        // extract it").
        let flow_only = Extractor::new(ExtractorConfig::switch_paper());
        let result = flow_only.extract_from_candidates(&flows);
        assert!(
            !result.itemsets.iter().any(|e| e.covers(&flows[0]) && e.items.len() >= 2),
            "flow-only mining should miss the flood"
        );
    }

    #[test]
    fn empty_candidates_empty_extraction() {
        let ex = Extractor::with_defaults();
        let result = ex.extract_from_candidates(&[]);
        assert!(result.is_empty());
        assert_eq!(result.candidate_flows, 0);
        assert!(result.tuning.is_empty());
    }

    #[test]
    fn all_identical_flows_yield_one_full_itemset() {
        let flows: Vec<FlowRecord> = (0..100)
            .map(|i| {
                FlowRecord::builder()
                    .time(i, i + 1)
                    .src(ip("10.0.0.1"), 4000)
                    .dst(ip("172.16.0.1"), 80)
                    .volume(10, 1000)
                    .build()
            })
            .collect();
        let ex = Extractor::with_defaults();
        let result = ex.extract_from_candidates(&flows);
        assert_eq!(result.itemsets.len(), 1, "{:?}", result.itemsets);
        assert_eq!(result.itemsets[0].items.len(), 4);
        assert_eq!(result.itemsets[0].flow_support, 100);
        assert_eq!(result.itemsets[0].packet_support, 1_000);
    }

    #[test]
    fn tuning_reports_one_pass_per_metric() {
        let ex = Extractor::with_defaults();
        let result = ex.extract_from_candidates(&scan_candidates());
        let metrics: Vec<SupportMetric> = result.tuning.iter().map(|t| t.metric).collect();
        assert_eq!(metrics, vec![SupportMetric::Flows, SupportMetric::Packets]);
        assert!(result.tuning.iter().all(|t| t.rounds >= 1));
    }

    #[test]
    fn extract_uses_alarm_hints_against_store() {
        let store = FlowStore::new(60_000);
        for f in scan_candidates() {
            store.insert(f);
        }
        // Unrelated heavy traffic outside the hints.
        for i in 0..200u32 {
            store.insert(
                FlowRecord::builder()
                    .time(i as u64, i as u64 + 1)
                    .src(Ipv4Addr::from(0x0A330000 + i), 5000)
                    .dst(ip("172.16.99.99"), 25)
                    .volume(2, 120)
                    .build(),
            );
        }
        let alarm = Alarm::new(0, "test", TimeRange::new(0, 10_000))
            .with_hints(vec![FeatureItem::src_ip(ip("10.0.0.9"))]);
        let ex = Extractor::with_defaults();
        let result = ex.extract(&store, &alarm);
        assert_eq!(result.candidate_flows, 400, "hints must pre-filter candidates");
        assert_eq!(result.itemsets[0].flow_support, 400);
    }

    #[test]
    fn window_slice_extraction_matches_store_extraction() {
        let store = FlowStore::new(60_000);
        for f in scan_candidates() {
            store.insert(f);
        }
        let slice = store.snapshot();
        let alarm = Alarm::new(0, "test", TimeRange::new(0, 10_000))
            .with_hints(vec![FeatureItem::src_ip(ip("10.0.0.9"))]);
        let ex = Extractor::with_defaults();
        let from_store = ex.extract(&store, &alarm);
        let from_window = ex.extract_from_window(&slice, &alarm);
        assert_eq!(from_store.candidate_flows, from_window.candidate_flows);
        assert_eq!(from_store.itemsets, from_window.itemsets);
    }

    #[test]
    fn ranking_is_deterministic() {
        let ex = Extractor::with_defaults();
        let a = ex.extract_from_candidates(&scan_candidates());
        let b = ex.extract_from_candidates(&scan_candidates());
        assert_eq!(a, b);
    }

    #[test]
    fn pattern_renders_wildcards() {
        let e = ExtractedItemset {
            items: vec![FeatureItem::dst_ip(ip("172.16.0.1")), FeatureItem::dst_port(80)],
            flow_support: 1,
            packet_support: 1,
            found_by: vec![SupportMetric::Flows],
        };
        assert_eq!(e.pattern(), "* 172.16.0.1 * 80");
    }
}

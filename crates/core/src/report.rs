//! Table-1-style reporting.
//!
//! The paper presents extraction results as a table of itemsets with
//! wildcard columns and a support column ("List of itemsets found by our
//! system for a particular port scan detected by NetReflex"). This module
//! renders an [`Extraction`] in exactly that shape, plus the
//! machine-readable variant used by the console and the benches.

use anomex_flow::feature::Feature;
use serde::{Deserialize, Serialize};

use crate::extract::{ExtractedItemset, Extraction};

/// Pretty-print a support count the way the paper does (`312.59K`).
pub fn human_count(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}G", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// One row of the report table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportRow {
    /// srcIP column (`*` = wildcard).
    pub src_ip: String,
    /// dstIP column.
    pub dst_ip: String,
    /// srcPort column.
    pub src_port: String,
    /// dstPort column.
    pub dst_port: String,
    /// Flow support.
    pub flows: u64,
    /// Packet support.
    pub packets: u64,
}

impl ReportRow {
    /// Build the row of one extracted itemset.
    pub fn of(e: &ExtractedItemset) -> ReportRow {
        let cell = |f: Feature| {
            e.items
                .iter()
                .find(|i| i.feature == f)
                .map(|i| i.value.to_string())
                .unwrap_or_else(|| "*".into())
        };
        ReportRow {
            src_ip: cell(Feature::SrcIp),
            dst_ip: cell(Feature::DstIp),
            src_port: cell(Feature::SrcPort),
            dst_port: cell(Feature::DstPort),
            flows: e.flow_support,
            packets: e.packet_support,
        }
    }
}

/// Render the extraction as the paper's table:
///
/// ```text
/// srcIP           dstIP           srcPort  dstPort  #flows    #packets
/// X.191.64.165    Y.13.137.129    55548    *        312.59K   325.02K
/// ```
///
/// `scale` multiplies the support columns — set it to the sampling rate
/// to report wire-scale estimates from sampled data (NetFlow practice),
/// or 1 for raw observed counts.
pub fn render_table(extraction: &Extraction, scale: u64) -> String {
    let rows: Vec<ReportRow> = extraction.itemsets.iter().map(ReportRow::of).collect();
    render_rows(&rows, scale)
}

/// Render pre-built rows (used by benches that post-process rows).
pub fn render_rows(rows: &[ReportRow], scale: u64) -> String {
    let scale = scale.max(1);
    let mut table = Vec::with_capacity(rows.len() + 1);
    table.push([
        "srcIP".to_string(),
        "dstIP".to_string(),
        "srcPort".to_string(),
        "dstPort".to_string(),
        "#flows".to_string(),
        "#packets".to_string(),
    ]);
    for r in rows {
        table.push([
            r.src_ip.clone(),
            r.dst_ip.clone(),
            r.src_port.clone(),
            r.dst_port.clone(),
            human_count(r.flows * scale),
            human_count(r.packets * scale),
        ]);
    }
    let mut widths = [0usize; 6];
    for row in &table {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for row in &table {
        for (i, (w, cell)) in widths.iter().zip(row).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            out.extend(std::iter::repeat_n(' ', w - cell.len()));
        }
        // Trim the padding of the last column.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

/// A short operator summary: candidates, tuning, row count.
pub fn render_summary(extraction: &Extraction) -> String {
    let mut out = format!(
        "candidates: {} flows / {} packets; {} itemset(s)\n",
        human_count(extraction.candidate_flows as u64),
        human_count(extraction.candidate_packets),
        extraction.itemsets.len()
    );
    for t in &extraction.tuning {
        out.push_str(&format!(
            "  tuning[{}]: support -> {} ({} rounds, {} maximal itemsets)\n",
            t.metric,
            human_count(t.chosen_support),
            t.rounds,
            t.total_found
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::SupportMetric;
    use anomex_flow::feature::FeatureItem;

    fn itemset() -> ExtractedItemset {
        ExtractedItemset {
            items: vec![
                FeatureItem::src_ip("10.0.0.9".parse().unwrap()),
                FeatureItem::dst_ip("172.16.0.1".parse().unwrap()),
                FeatureItem::src_port(55_548),
            ],
            flow_support: 312_590,
            packet_support: 325_020,
            found_by: vec![SupportMetric::Flows],
        }
    }

    #[test]
    fn human_count_matches_paper_style() {
        assert_eq!(human_count(312_590), "312.59K");
        assert_eq!(human_count(37_190), "37.19K");
        assert_eq!(human_count(999), "999");
        assert_eq!(human_count(2_500_000), "2.50M");
        assert_eq!(human_count(3_100_000_000), "3.10G");
    }

    #[test]
    fn row_wildcards_absent_dimensions() {
        let row = ReportRow::of(&itemset());
        assert_eq!(row.src_ip, "10.0.0.9");
        assert_eq!(row.dst_port, "*");
        assert_eq!(row.flows, 312_590);
    }

    #[test]
    fn table_renders_header_and_rows() {
        let ex = Extraction {
            itemsets: vec![itemset()],
            candidate_flows: 400_000,
            candidate_packets: 500_000,
            tuning: vec![],
        };
        let t = render_table(&ex, 1);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("srcIP"));
        assert!(lines[1].contains("312.59K"), "{t}");
        assert!(lines[1].contains('*'), "{t}");
    }

    #[test]
    fn scale_multiplies_supports() {
        let ex = Extraction {
            itemsets: vec![itemset()],
            candidate_flows: 1,
            candidate_packets: 1,
            tuning: vec![],
        };
        let t = render_table(&ex, 100);
        assert!(t.contains("31.26M"), "{t}");
    }

    #[test]
    fn no_trailing_whitespace() {
        let ex = Extraction {
            itemsets: vec![itemset()],
            candidate_flows: 1,
            candidate_packets: 1,
            tuning: vec![],
        };
        for line in render_table(&ex, 1).lines() {
            assert_eq!(line, line.trim_end());
        }
    }

    #[test]
    fn summary_mentions_tuning() {
        let ex = Extraction {
            itemsets: vec![],
            candidate_flows: 10,
            candidate_packets: 100,
            tuning: vec![crate::extract::TuningInfo {
                metric: SupportMetric::Packets,
                chosen_support: 5_000,
                rounds: 7,
                total_found: 3,
            }],
        };
        let s = render_summary(&ex);
        assert!(s.contains("packets"), "{s}");
        assert!(s.contains("7 rounds"), "{s}");
    }
}

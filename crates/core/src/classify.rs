//! Heuristic classification of extracted itemsets.
//!
//! After extraction the operator (or the console's `classify` command)
//! wants a first guess at *what* each itemset is: the Table 1 narrative
//! labels its rows "port scan" and "DDoS … TCP SYN flood" from exactly
//! the signals encoded here — which dimensions are wildcarded, the
//! flow/packet balance, the flag mix and the fan-out of the drilled
//! flows.

use anomex_flow::feature::Feature;
use anomex_flow::record::Protocol;
use serde::{Deserialize, Serialize};

use crate::drill::DrillSummary;
use crate::extract::ExtractedItemset;

/// The label vocabulary of the classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ItemsetClass {
    /// One source sweeping ports on one target.
    PortScan,
    /// One source sweeping hosts on one port.
    NetworkScan,
    /// Many sources hitting one `host:port`, SYN-dominated.
    SynFlood,
    /// Many sources hitting one `host:port` over UDP.
    UdpDdos,
    /// Point-to-point high-packet UDP stream.
    UdpFlood,
    /// ICMP flood.
    IcmpFlood,
    /// Few huge flows between one pair — likely benign bulk transfer.
    AlphaFlow,
    /// No confident label.
    Unknown,
}

impl ItemsetClass {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ItemsetClass::PortScan => "port scan",
            ItemsetClass::NetworkScan => "network scan",
            ItemsetClass::SynFlood => "TCP SYN flood (DDoS)",
            ItemsetClass::UdpDdos => "UDP DDoS",
            ItemsetClass::UdpFlood => "point-to-point UDP flood",
            ItemsetClass::IcmpFlood => "ICMP flood",
            ItemsetClass::AlphaFlow => "alpha flow (bulk transfer)",
            ItemsetClass::Unknown => "unclassified",
        }
    }
}

impl std::fmt::Display for ItemsetClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Classify one itemset given the summary of its drilled flows and the
/// dominant protocol among them.
pub fn classify(
    itemset: &ExtractedItemset,
    summary: &DrillSummary,
    dominant_proto: Protocol,
) -> ItemsetClass {
    let has = |f: Feature| itemset.items.iter().any(|i| i.feature == f);
    let src_fixed = has(Feature::SrcIp);
    let dst_fixed = has(Feature::DstIp);
    let dport_fixed = has(Feature::DstPort);

    if summary.flows == 0 {
        return ItemsetClass::Unknown;
    }
    let packets_per_flow = summary.packets as f64 / summary.flows as f64;
    let bytes_per_flow = summary.bytes as f64 / summary.flows as f64;

    if dominant_proto == Protocol::ICMP && packets_per_flow > 50.0 {
        return ItemsetClass::IcmpFlood;
    }

    // Point-to-point UDP flood: both endpoints fixed, tiny flow count,
    // enormous packet rate — the paper's signature GEANT anomaly.
    if dominant_proto == Protocol::UDP
        && src_fixed
        && dst_fixed
        && summary.flows <= 20
        && packets_per_flow > 10_000.0
    {
        return ItemsetClass::UdpFlood;
    }

    // Alpha flow: one pair, few flows, huge byte volume, not scan-like.
    if src_fixed && dst_fixed && summary.flows <= 20 && bytes_per_flow > 10_000_000.0 {
        return ItemsetClass::AlphaFlow;
    }

    // Scans: tiny flows (probe packets), high fan-out on the swept axis.
    if src_fixed
        && dst_fixed
        && !dport_fixed
        && summary.distinct_dst_ports > 50
        && packets_per_flow < 10.0
    {
        return ItemsetClass::PortScan;
    }
    if src_fixed && !dst_fixed && dport_fixed && packets_per_flow < 10.0 {
        return ItemsetClass::NetworkScan;
    }

    // Distributed floods: victim-side fixed, source side wildcarded with
    // high fan-in.
    if !src_fixed && dst_fixed && dport_fixed && summary.distinct_src_ips > 20 {
        return match dominant_proto {
            Protocol::UDP => ItemsetClass::UdpDdos,
            Protocol::TCP if summary.syn_only_fraction > 0.8 => ItemsetClass::SynFlood,
            _ => ItemsetClass::Unknown,
        };
    }

    ItemsetClass::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::SupportMetric;
    use anomex_flow::feature::FeatureItem;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn itemset(items: Vec<FeatureItem>) -> ExtractedItemset {
        ExtractedItemset {
            items,
            flow_support: 1,
            packet_support: 1,
            found_by: vec![SupportMetric::Flows],
        }
    }

    fn summary(
        flows: u64,
        packets: u64,
        bytes: u64,
        syn: f64,
        srcs: usize,
        dports: usize,
    ) -> DrillSummary {
        DrillSummary {
            flows,
            packets,
            bytes,
            first_ms: 0,
            last_ms: 1000,
            syn_only_fraction: syn,
            distinct_src_ips: srcs,
            distinct_dst_ports: dports,
        }
    }

    #[test]
    fn port_scan_shape() {
        let it = itemset(vec![
            FeatureItem::src_ip(ip("10.0.0.9")),
            FeatureItem::dst_ip(ip("172.16.0.1")),
            FeatureItem::src_port(55_548),
        ]);
        let s = summary(10_000, 12_000, 500_000, 1.0, 1, 9_500);
        assert_eq!(classify(&it, &s, Protocol::TCP), ItemsetClass::PortScan);
    }

    #[test]
    fn network_scan_shape() {
        let it = itemset(vec![FeatureItem::src_ip(ip("10.0.0.9")), FeatureItem::dst_port(445)]);
        let s = summary(5_000, 5_000, 200_000, 1.0, 1, 1);
        assert_eq!(classify(&it, &s, Protocol::TCP), ItemsetClass::NetworkScan);
    }

    #[test]
    fn syn_flood_shape() {
        let it = itemset(vec![FeatureItem::dst_ip(ip("172.16.0.1")), FeatureItem::dst_port(80)]);
        let s = summary(37_000, 74_000, 3_000_000, 0.98, 30_000, 1);
        assert_eq!(classify(&it, &s, Protocol::TCP), ItemsetClass::SynFlood);
    }

    #[test]
    fn udp_ddos_shape() {
        let it = itemset(vec![FeatureItem::dst_ip(ip("172.16.0.1")), FeatureItem::dst_port(53)]);
        let s = summary(20_000, 80_000, 40_000_000, 0.0, 15_000, 1);
        assert_eq!(classify(&it, &s, Protocol::UDP), ItemsetClass::UdpDdos);
    }

    #[test]
    fn p2p_udp_flood_shape() {
        let it = itemset(vec![
            FeatureItem::src_ip(ip("10.9.9.9")),
            FeatureItem::dst_ip(ip("172.16.0.7")),
            FeatureItem::src_port(4500),
            FeatureItem::dst_port(5060),
        ]);
        let s = summary(3, 900_000, 1_000_000_000, 0.0, 1, 1);
        assert_eq!(classify(&it, &s, Protocol::UDP), ItemsetClass::UdpFlood);
    }

    #[test]
    fn alpha_flow_shape() {
        let it = itemset(vec![
            FeatureItem::src_ip(ip("10.1.1.1")),
            FeatureItem::dst_ip(ip("172.16.2.2")),
        ]);
        let s = summary(2, 500_000, 700_000_000, 0.0, 1, 1);
        assert_eq!(classify(&it, &s, Protocol::TCP), ItemsetClass::AlphaFlow);
    }

    #[test]
    fn icmp_flood_shape() {
        let it = itemset(vec![FeatureItem::src_ip(ip("10.1.1.1"))]);
        let s = summary(1_500, 300_000, 25_000_000, 0.0, 1, 1);
        assert_eq!(classify(&it, &s, Protocol::ICMP), ItemsetClass::IcmpFlood);
    }

    #[test]
    fn empty_summary_is_unknown() {
        let it = itemset(vec![FeatureItem::dst_port(80)]);
        let s = summary(0, 0, 0, 0.0, 0, 0);
        assert_eq!(classify(&it, &s, Protocol::TCP), ItemsetClass::Unknown);
    }

    #[test]
    fn complete_tcp_to_one_service_is_not_a_flood() {
        let it = itemset(vec![FeatureItem::dst_ip(ip("172.16.0.1")), FeatureItem::dst_port(80)]);
        let s = summary(10_000, 200_000, 90_000_000, 0.02, 9_000, 1);
        assert_eq!(classify(&it, &s, Protocol::TCP), ItemsetClass::Unknown);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ItemsetClass::SynFlood.to_string(), "TCP SYN flood (DDoS)");
        assert_eq!(ItemsetClass::Unknown.label(), "unclassified");
    }
}

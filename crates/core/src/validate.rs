//! Validation of extraction results against ground truth.
//!
//! The paper validated manually ("leveraged DANTE's experience in manual
//! anomaly investigation"). With generated traces the labels are exact,
//! so usefulness becomes a computable quantity:
//!
//! - an itemset is **useful** when the flows it covers are
//!   overwhelmingly labeled flows of a *malicious* anomaly (it points the
//!   operator at a real security incident);
//! - an itemset is a **false positive** otherwise (the "very few
//!   false-positive itemsets, which can be trivially filtered out");
//! - an anomaly is **recalled** when useful itemsets cover most of its
//!   observed flows.
//!
//! The module is generator-agnostic: labels arrive as a [`TruthSet`]
//! (flow-key sets + malicious flags), which `anomex-gen`'s ground truth
//! converts into trivially.

use std::collections::HashSet;

use anomex_flow::record::{FlowKey, FlowRecord};
use serde::{Deserialize, Serialize};

use crate::extract::Extraction;

/// One labeled anomaly, reduced to what validation needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TruthEntry {
    /// Stable id (the generator's anomaly id).
    pub id: usize,
    /// Exact 5-tuple keys of the anomaly's flows.
    pub keys: HashSet<FlowKey>,
    /// Whether an operator would treat it as a security incident
    /// (alpha flows are labeled but benign).
    pub malicious: bool,
}

/// All labels relevant to one alarm.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TruthSet {
    /// The labeled anomalies.
    pub entries: Vec<TruthEntry>,
}

impl TruthSet {
    /// Build from raw parts.
    pub fn new(entries: Vec<TruthEntry>) -> TruthSet {
        TruthSet { entries }
    }

    /// Ids of the malicious entries.
    pub fn malicious_ids(&self) -> Vec<usize> {
        self.entries.iter().filter(|e| e.malicious).map(|e| e.id).collect()
    }
}

/// Validation thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationConfig {
    /// Minimum fraction of an itemset's covered flows that must be
    /// malicious-labeled for the itemset to count as useful.
    pub useful_precision: f64,
    /// Minimum fraction of an anomaly's observed flows that useful
    /// itemsets must cover for the anomaly to count as recalled.
    pub recall_threshold: f64,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig { useful_precision: 0.8, recall_threshold: 0.5 }
    }
}

/// Verdict on one extracted itemset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ItemsetVerdict {
    /// Index into `extraction.itemsets`.
    pub index: usize,
    /// Observed flows the itemset covers in the alarm window.
    pub covered: usize,
    /// Covered flows that belong to a malicious anomaly.
    pub malicious_covered: usize,
    /// `malicious_covered / covered` (0 when nothing is covered).
    pub precision: f64,
    /// Malicious anomalies this itemset meaningfully covers (≥ 10% of
    /// the anomaly's observed flows).
    pub matched: Vec<usize>,
    /// Useful per [`ValidationConfig::useful_precision`].
    pub useful: bool,
}

/// The validation outcome for one alarm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Validation {
    /// Per-itemset verdicts, same order as the extraction.
    pub verdicts: Vec<ItemsetVerdict>,
    /// Number of useful itemsets.
    pub useful_itemsets: usize,
    /// Number of false-positive itemsets.
    pub false_itemsets: usize,
    /// `(anomaly id, recall)` for every malicious entry with observed flows.
    pub recall: Vec<(usize, f64)>,
    /// Malicious anomalies recalled above the threshold.
    pub recalled: Vec<usize>,
}

impl Validation {
    /// Did extraction succeed at all (≥ 1 useful itemset)?
    pub fn is_useful(&self) -> bool {
        self.useful_itemsets > 0
    }

    /// Ids of malicious anomalies that at least one useful itemset
    /// matches.
    pub fn matched_anomalies(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .verdicts
            .iter()
            .filter(|v| v.useful)
            .flat_map(|v| v.matched.iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Validate `extraction` against `truth`, over the observed flows of the
/// alarm window (`observed` = what the store returned for the window,
/// post-sampling).
pub fn validate(
    extraction: &Extraction,
    observed: &[FlowRecord],
    truth: &TruthSet,
    config: &ValidationConfig,
) -> Validation {
    // Pre-compute per-entry observed flow indices.
    let malicious: Vec<&TruthEntry> = truth.entries.iter().filter(|e| e.malicious).collect();
    let mut observed_per_entry: Vec<usize> = vec![0; malicious.len()];
    for f in observed {
        for (i, e) in malicious.iter().enumerate() {
            if e.keys.contains(&f.key()) {
                observed_per_entry[i] += 1;
            }
        }
    }

    let mut verdicts = Vec::with_capacity(extraction.itemsets.len());
    // Union coverage per malicious entry across useful itemsets.
    let mut covered_union: Vec<HashSet<FlowKey>> = vec![HashSet::new(); malicious.len()];

    for (index, itemset) in extraction.itemsets.iter().enumerate() {
        let mut covered = 0usize;
        let mut malicious_covered = 0usize;
        let mut per_entry = vec![0usize; malicious.len()];
        let mut touched: Vec<Vec<FlowKey>> = vec![Vec::new(); malicious.len()];
        for f in observed {
            if !itemset.covers(f) {
                continue;
            }
            covered += 1;
            let key = f.key();
            let mut is_malicious = false;
            for (i, e) in malicious.iter().enumerate() {
                if e.keys.contains(&key) {
                    per_entry[i] += 1;
                    touched[i].push(key);
                    is_malicious = true;
                }
            }
            if is_malicious {
                malicious_covered += 1;
            }
        }
        let precision = if covered > 0 { malicious_covered as f64 / covered as f64 } else { 0.0 };
        let matched: Vec<usize> = malicious
            .iter()
            .enumerate()
            .filter(|&(i, _)| {
                observed_per_entry[i] > 0
                    && per_entry[i] as f64 / observed_per_entry[i] as f64 >= 0.1
            })
            .map(|(_, e)| e.id)
            .collect();
        let useful = covered > 0 && precision >= config.useful_precision && !matched.is_empty();
        if useful {
            for (i, keys) in touched.into_iter().enumerate() {
                covered_union[i].extend(keys);
            }
        }
        verdicts.push(ItemsetVerdict {
            index,
            covered,
            malicious_covered,
            precision,
            matched,
            useful,
        });
    }

    let useful_itemsets = verdicts.iter().filter(|v| v.useful).count();
    let false_itemsets = verdicts.len() - useful_itemsets;

    let mut recall = Vec::new();
    let mut recalled = Vec::new();
    for (i, e) in malicious.iter().enumerate() {
        if observed_per_entry[i] == 0 {
            continue; // invisible after sampling: recall undefined
        }
        // Count distinct covered observed keys (multiple observed records
        // can share a key; key-level recall is the operator-relevant one).
        let observed_keys: HashSet<FlowKey> =
            observed.iter().map(FlowRecord::key).filter(|k| e.keys.contains(k)).collect();
        let r = covered_union[i].len() as f64 / observed_keys.len().max(1) as f64;
        recall.push((e.id, r));
        if r >= config.recall_threshold {
            recalled.push(e.id);
        }
    }

    Validation { verdicts, useful_itemsets, false_itemsets, recall, recalled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::SupportMetric;
    use crate::extract::ExtractedItemset;
    use anomex_flow::feature::FeatureItem;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn scan_flows() -> Vec<FlowRecord> {
        let mut flows: Vec<FlowRecord> = (1..=100u32)
            .map(|p| {
                FlowRecord::builder()
                    .time(p as u64, p as u64 + 1)
                    .src(ip("10.0.0.9"), 55_548)
                    .dst(ip("172.16.0.1"), p as u16)
                    .volume(1, 44)
                    .build()
            })
            .collect();
        for i in 0..20u32 {
            flows.push(
                FlowRecord::builder()
                    .time(i as u64, i as u64 + 5)
                    .src(Ipv4Addr::from(0x0A000100 + i), 2000)
                    .dst(ip("172.16.0.2"), 80)
                    .volume(3, 1000)
                    .build(),
            );
        }
        flows
    }

    fn scan_truth(flows: &[FlowRecord]) -> TruthSet {
        let keys: HashSet<FlowKey> =
            flows.iter().filter(|f| f.src_ip == ip("10.0.0.9")).map(|f| f.key()).collect();
        TruthSet::new(vec![TruthEntry { id: 0, keys, malicious: true }])
    }

    fn scan_itemset() -> ExtractedItemset {
        ExtractedItemset {
            items: vec![
                FeatureItem::src_ip(ip("10.0.0.9")),
                FeatureItem::dst_ip(ip("172.16.0.1")),
                FeatureItem::src_port(55_548),
            ],
            flow_support: 100,
            packet_support: 100,
            found_by: vec![SupportMetric::Flows],
        }
    }

    fn benign_itemset() -> ExtractedItemset {
        ExtractedItemset {
            items: vec![FeatureItem::dst_ip(ip("172.16.0.2")), FeatureItem::dst_port(80)],
            flow_support: 20,
            packet_support: 60,
            found_by: vec![SupportMetric::Flows],
        }
    }

    fn extraction(itemsets: Vec<ExtractedItemset>) -> Extraction {
        Extraction { itemsets, candidate_flows: 120, candidate_packets: 500, tuning: vec![] }
    }

    #[test]
    fn useful_itemset_recognized() {
        let flows = scan_flows();
        let truth = scan_truth(&flows);
        let v = validate(
            &extraction(vec![scan_itemset()]),
            &flows,
            &truth,
            &ValidationConfig::default(),
        );
        assert!(v.is_useful());
        assert_eq!(v.useful_itemsets, 1);
        assert_eq!(v.false_itemsets, 0);
        assert_eq!(v.matched_anomalies(), vec![0]);
        assert_eq!(v.recall.len(), 1);
        assert!(v.recall[0].1 > 0.99, "full recall expected: {}", v.recall[0].1);
        assert_eq!(v.recalled, vec![0]);
    }

    #[test]
    fn benign_itemset_is_false_positive() {
        let flows = scan_flows();
        let truth = scan_truth(&flows);
        let v = validate(
            &extraction(vec![scan_itemset(), benign_itemset()]),
            &flows,
            &truth,
            &ValidationConfig::default(),
        );
        assert_eq!(v.useful_itemsets, 1);
        assert_eq!(v.false_itemsets, 1);
        assert!(!v.verdicts[1].useful);
        assert_eq!(v.verdicts[1].precision, 0.0);
    }

    #[test]
    fn benign_truth_never_counts_as_useful() {
        let flows = scan_flows();
        // Same keys, but labeled benign (alpha-flow style).
        let keys: HashSet<FlowKey> =
            flows.iter().filter(|f| f.src_ip == ip("10.0.0.9")).map(|f| f.key()).collect();
        let truth = TruthSet::new(vec![TruthEntry { id: 0, keys, malicious: false }]);
        let v = validate(
            &extraction(vec![scan_itemset()]),
            &flows,
            &truth,
            &ValidationConfig::default(),
        );
        assert!(!v.is_useful(), "benign labels must not make itemsets useful");
    }

    #[test]
    fn empty_extraction_is_not_useful() {
        let flows = scan_flows();
        let truth = scan_truth(&flows);
        let v = validate(&extraction(vec![]), &flows, &truth, &ValidationConfig::default());
        assert!(!v.is_useful());
        assert_eq!(v.recall[0].1, 0.0);
    }

    #[test]
    fn invisible_anomaly_has_no_recall_entry() {
        let flows = scan_flows();
        let mut truth = scan_truth(&flows);
        // A second anomaly whose flows were entirely sampled away.
        truth.entries.push(TruthEntry {
            id: 1,
            keys: HashSet::from([FlowKey {
                src_ip: ip("10.5.5.5"),
                dst_ip: ip("172.16.9.9"),
                src_port: 1,
                dst_port: 2,
                proto: anomex_flow::record::Protocol::UDP,
            }]),
            malicious: true,
        });
        let v = validate(
            &extraction(vec![scan_itemset()]),
            &flows,
            &truth,
            &ValidationConfig::default(),
        );
        assert_eq!(v.recall.len(), 1, "only the visible anomaly is scored");
    }

    #[test]
    fn partial_coverage_counts_partially() {
        let flows = scan_flows();
        let truth = scan_truth(&flows);
        // An itemset pinning one scanned port covers 1/100 of the scan.
        let narrow = ExtractedItemset {
            items: vec![FeatureItem::src_ip(ip("10.0.0.9")), FeatureItem::dst_port(7)],
            flow_support: 1,
            packet_support: 1,
            found_by: vec![SupportMetric::Flows],
        };
        let v = validate(&extraction(vec![narrow]), &flows, &truth, &ValidationConfig::default());
        // Precise (covers only scan flows) but matches below the 10%
        // anomaly-coverage bar -> not useful.
        assert_eq!(v.verdicts[0].precision, 1.0);
        assert!(!v.verdicts[0].useful);
    }

    #[test]
    fn two_anomalies_matched_separately() {
        let mut flows = scan_flows();
        // Second incident: SYN flood on 172.16.0.9:80 from many sources.
        for i in 0..50u32 {
            flows.push(
                FlowRecord::builder()
                    .time(i as u64, i as u64 + 1)
                    .src(Ipv4Addr::from(0x64000000 + i), 3072)
                    .dst(ip("172.16.0.9"), 80)
                    .volume(2, 80)
                    .build(),
            );
        }
        let scan_keys: HashSet<FlowKey> =
            flows.iter().filter(|f| f.src_ip == ip("10.0.0.9")).map(|f| f.key()).collect();
        let flood_keys: HashSet<FlowKey> =
            flows.iter().filter(|f| f.dst_ip == ip("172.16.0.9")).map(|f| f.key()).collect();
        let truth = TruthSet::new(vec![
            TruthEntry { id: 0, keys: scan_keys, malicious: true },
            TruthEntry { id: 1, keys: flood_keys, malicious: true },
        ]);
        let flood_itemset = ExtractedItemset {
            items: vec![FeatureItem::dst_ip(ip("172.16.0.9")), FeatureItem::dst_port(80)],
            flow_support: 50,
            packet_support: 100,
            found_by: vec![SupportMetric::Flows],
        };
        let v = validate(
            &extraction(vec![scan_itemset(), flood_itemset]),
            &flows,
            &truth,
            &ValidationConfig::default(),
        );
        assert_eq!(v.matched_anomalies(), vec![0, 1]);
        assert_eq!(v.recalled.len(), 2);
    }
}

//! Flow ⇄ itemset encoding.
//!
//! "We model a flow as an itemset" (§1): each flow record becomes a
//! transaction over four items — its srcIP, dstIP, srcPort and dstPort
//! values. The paper's packet-support extension is a weighting choice on
//! the same transactions: weight 1 per flow, or `packets` per flow.
//!
//! Encoding goes straight into the columnar
//! [`TransactionMatrix`](anomex_fim::TransactionMatrix): rows stream into
//! flat buffers with **no per-flow heap allocation**, and the dual-metric
//! entry point ([`EncodedFlows`]) encodes the structure once and derives
//! the flow- and packet-weight views from the same CSR buffers (sharing
//! the bitset tid-list cache between both mining passes).

use anomex_fim::{
    DictMatrixBuilder, Item, ItemDictionary, Itemset, MatrixBuilder, TransactionMatrix,
};
use anomex_flow::feature::{Feature, FeatureItem, FeatureValue};
use anomex_flow::filter::{CmpOp, Dir, Expr, Filter, Pred};
use anomex_flow::record::FlowRecord;
use serde::{Deserialize, Serialize};

/// Which quantity an itemset's support counts — the axis of the paper's
/// "compute the support of an itemset in terms of packets in addition to
/// flows" extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SupportMetric {
    /// Transactions weighted 1 per flow record (classic Apriori).
    Flows,
    /// Transactions weighted by the flow's packet count.
    Packets,
    /// Transactions weighted by the flow's byte count — the third axis
    /// NetFlow tooling reports. The paper's extractor mines flows and
    /// packets; byte weighting is provided for custom pipelines (e.g.
    /// alpha-flow hunting, where bytes dominate both other metrics).
    Bytes,
}

impl std::fmt::Display for SupportMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SupportMetric::Flows => "flows",
            SupportMetric::Packets => "packets",
            SupportMetric::Bytes => "bytes",
        })
    }
}

/// Encode a feature item into an opaque mining item
/// (tag byte = feature, payload = raw value).
pub fn item_of(feature_item: FeatureItem) -> Item {
    Item::encode(feature_item.feature.tag(), feature_item.value.raw())
}

/// Decode a mining item back into a feature item.
///
/// Returns `None` for items that were not produced by [`item_of`]
/// (unknown tag or out-of-range payload).
pub fn feature_of(item: Item) -> Option<FeatureItem> {
    let feature = Feature::from_tag(item.tag())?;
    let value = FeatureValue::from_raw(feature, item.payload())?;
    FeatureItem::checked(feature, value)
}

/// The four mining items of one flow, as [`Item`]s.
pub fn items_of_flow(flow: &FlowRecord) -> Vec<Item> {
    flow.mining_items().iter().map(|fi| item_of(*fi)).collect()
}

fn metric_weight(flow: &FlowRecord, metric: SupportMetric) -> u64 {
    match metric {
        SupportMetric::Flows => 1,
        SupportMetric::Packets => flow.packets,
        SupportMetric::Bytes => flow.bytes,
    }
}

/// Encode flows into a columnar transaction matrix under the chosen
/// support metric.
///
/// Zero-weight records (possible after aggressive sampling arithmetic)
/// are kept for [`SupportMetric::Flows`] and dropped for the volume
/// metrics — a weight of zero can never contribute support and would
/// only slow the miner down. The encode itself performs no per-flow heap
/// allocation: each record's four items land directly in the matrix
/// builder's flat buffers.
pub fn encode_flows(flows: &[FlowRecord], metric: SupportMetric) -> TransactionMatrix {
    let mut builder = MatrixBuilder::with_capacity(flows.len(), 4);
    for f in flows {
        let weight = metric_weight(f, metric);
        if weight > 0 {
            builder.push_row(f.mining_items().iter().map(|&fi| item_of(fi)), weight);
        }
    }
    builder.build()
}

/// Persistent encode state reused across windows: the item dictionary
/// survives between calls to [`EncodedFlows::encode_warm`], so the
/// recurring item population (stable servers, popular ports) interns
/// once and every later window skips the per-alarm dictionary rebuild.
///
/// Epoch-based compaction: when the `u16` id space overflows mid-encode
/// the affected window falls back to a cold build (bit-identical output)
/// and the dictionary resets, starting a fresh epoch that re-warms
/// against the live item population.
#[derive(Debug, Default)]
pub struct EncodeState {
    dict: ItemDictionary,
}

impl EncodeState {
    /// Fresh state with an empty dictionary at epoch 0.
    pub fn new() -> EncodeState {
        EncodeState::default()
    }

    /// Items interned so far in the current epoch.
    pub fn interned(&self) -> usize {
        self.dict.len()
    }

    /// Completed compaction cycles.
    pub fn epoch(&self) -> u64 {
        self.dict.epoch()
    }

    /// Drain the dictionary's (hits, misses) counters accumulated since
    /// the last call — the `extract.dict_hits` / `extract.dict_misses`
    /// metric sources.
    pub fn take_stats(&mut self) -> (u64, u64) {
        self.dict.take_stats()
    }
}

/// One candidate set encoded once, mined under both of the paper's
/// support metrics.
///
/// The CSR structure (dictionary, rows, bitset tid-list cache) is built
/// a single time and shared between the flow-weight and packet-weight
/// views — re-mining the same window under the second metric, or at
/// another threshold of the top-k search, never re-encodes.
#[derive(Debug, Clone)]
pub struct EncodedFlows {
    flow_matrix: TransactionMatrix,
    packet_weights: Vec<u64>,
    /// Materialized on first use — a flow-support-only extraction never
    /// pays the packet view's support-counting pass.
    packet_matrix: std::sync::OnceLock<TransactionMatrix>,
    candidate_packets: u64,
}

impl EncodedFlows {
    /// Encode `flows` once; the packet-weight view is derived lazily
    /// from the same structure.
    pub fn encode(flows: &[FlowRecord]) -> EncodedFlows {
        let mut builder = MatrixBuilder::with_capacity(flows.len(), 4);
        for f in flows {
            builder.push_row(f.mining_items().iter().map(|&fi| item_of(fi)), 1);
        }
        let flow_matrix = builder.build();
        let packet_weights: Vec<u64> = flows.iter().map(|f| f.packets).collect();
        let candidate_packets = packet_weights.iter().sum();
        EncodedFlows {
            flow_matrix,
            packet_weights,
            packet_matrix: std::sync::OnceLock::new(),
            candidate_packets,
        }
    }

    /// Encode `flows` against a persistent dictionary: recurring items
    /// reuse their interned dense ids, so freezing the matrix skips the
    /// hash-count pass and dictionary sort a cold
    /// [`encode`](EncodedFlows::encode) pays per call. On `u16` id-space
    /// overflow the window silently falls back to a cold build and
    /// `state` starts a new epoch. Warm and cold encodes of the same
    /// flows mine bit-identically — only the dense-id numbering differs,
    /// and mined output is canonicalized in item space.
    pub fn encode_warm(flows: &[FlowRecord], state: &mut EncodeState) -> EncodedFlows {
        let mut builder = DictMatrixBuilder::with_capacity(&mut state.dict, flows.len(), 4);
        for f in flows {
            builder.push_row(f.mining_items().iter().map(|&fi| item_of(fi)), 1);
        }
        let Some(flow_matrix) = builder.build() else {
            state.dict.reset();
            return EncodedFlows::encode(flows);
        };
        let packet_weights: Vec<u64> = flows.iter().map(|f| f.packets).collect();
        let candidate_packets = packet_weights.iter().sum();
        EncodedFlows {
            flow_matrix,
            packet_weights,
            packet_matrix: std::sync::OnceLock::new(),
            candidate_packets,
        }
    }

    /// The flow-support view (weight 1 per record).
    pub fn flow_matrix(&self) -> &TransactionMatrix {
        &self.flow_matrix
    }

    /// The packet-support view (weight = packet count), sharing the
    /// flow view's CSR structure and bitset cache. Zero-packet rows stay
    /// in the structure but are inert (weight 0 never contributes
    /// support).
    pub fn packet_matrix(&self) -> &TransactionMatrix {
        self.packet_matrix
            .get_or_init(|| self.flow_matrix.with_weights(self.packet_weights.clone()))
    }

    /// Number of encoded candidate flows.
    pub fn candidate_flows(&self) -> usize {
        self.flow_matrix.len()
    }

    /// Packet total of the candidates.
    pub fn candidate_packets(&self) -> u64 {
        self.candidate_packets
    }
}

/// Decode a mined itemset into feature items, canonically ordered by
/// feature (srcIP, dstIP, srcPort, dstPort). Undecodable items are
/// dropped — they cannot occur for itemsets mined from [`encode_flows`]
/// output.
pub fn decode_itemset(itemset: &Itemset) -> Vec<FeatureItem> {
    let mut out: Vec<FeatureItem> = itemset.items().iter().filter_map(|&i| feature_of(i)).collect();
    out.sort_by_key(|fi| fi.feature.tag());
    out
}

/// The drill-down filter of an itemset: the conjunction of equality
/// predicates on every present dimension (absent dimensions = wildcard,
/// rendered `*` in Table-1 reports).
pub fn itemset_filter(items: &[FeatureItem]) -> Filter {
    let mut expr: Option<Expr> = None;
    for fi in items {
        let pred = match (fi.feature, fi.value) {
            (Feature::SrcIp, FeatureValue::Ip(ip)) => Pred::Ip(Dir::Src, ip),
            (Feature::DstIp, FeatureValue::Ip(ip)) => Pred::Ip(Dir::Dst, ip),
            (Feature::SrcPort, FeatureValue::Port(p)) => Pred::Port(Dir::Src, CmpOp::Eq, p),
            (Feature::DstPort, FeatureValue::Port(p)) => Pred::Port(Dir::Dst, CmpOp::Eq, p),
            (Feature::Proto, FeatureValue::Proto(p)) => Pred::Proto(p),
            // Kind mismatches cannot be built via FeatureItem::checked.
            _ => continue,
        };
        let leaf = Expr::Pred(pred);
        expr = Some(match expr {
            None => leaf,
            Some(e) => e.and(leaf),
        });
    }
    match expr {
        None => Filter::any(),
        Some(e) => Filter::from_expr(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn flow() -> FlowRecord {
        FlowRecord::builder()
            .src(ip("10.0.0.1"), 4242)
            .dst(ip("172.16.0.2"), 80)
            .volume(50, 4_000)
            .build()
    }

    #[test]
    fn item_roundtrip_every_feature() {
        for fi in [
            FeatureItem::src_ip(ip("203.0.113.7")),
            FeatureItem::dst_ip(ip("0.0.0.0")),
            FeatureItem::src_port(0),
            FeatureItem::dst_port(65_535),
        ] {
            assert_eq!(feature_of(item_of(fi)), Some(fi));
        }
    }

    #[test]
    fn feature_of_rejects_garbage_tag() {
        assert_eq!(feature_of(Item::encode(200, 1)), None);
    }

    #[test]
    fn flow_encodes_to_four_items() {
        let items = items_of_flow(&flow());
        assert_eq!(items.len(), 4);
        let decoded: Vec<FeatureItem> = items.iter().filter_map(|&i| feature_of(i)).collect();
        assert!(decoded.contains(&FeatureItem::src_ip(ip("10.0.0.1"))));
        assert!(decoded.contains(&FeatureItem::dst_port(80)));
    }

    #[test]
    fn flow_metric_weights_one() {
        let txs = encode_flows(&[flow(), flow()], SupportMetric::Flows);
        assert_eq!(txs.len(), 2);
        assert_eq!(txs.total_weight(), 2);
    }

    #[test]
    fn packet_metric_weights_packets() {
        let txs = encode_flows(&[flow()], SupportMetric::Packets);
        assert_eq!(txs.total_weight(), 50);
    }

    #[test]
    fn byte_metric_weights_bytes() {
        let txs = encode_flows(&[flow()], SupportMetric::Bytes);
        assert_eq!(txs.total_weight(), 4_000);
    }

    #[test]
    fn byte_mining_surfaces_alpha_flows() {
        // One huge transfer among many small flows: only the byte
        // weighting ranks it first.
        let mut flows = vec![FlowRecord::builder()
            .src(ip("10.7.7.7"), 33_000)
            .dst(ip("172.16.0.9"), 873)
            .volume(900, 1_300_000_000)
            .build()];
        for i in 0..200u32 {
            flows.push(
                FlowRecord::builder()
                    .src(Ipv4Addr::from(0x0A000300 + i), 1024 + i as u16)
                    .dst(ip("172.16.0.2"), 80)
                    .volume(50, 60_000)
                    .build(),
            );
        }
        let bytes = encode_flows(&flows, SupportMetric::Bytes);
        let alpha = Itemset::new(items_of_flow(&flows[0]));
        let web = Itemset::new(vec![item_of(FeatureItem::dst_port(80))]);
        assert!(bytes.support_of(&alpha) > bytes.support_of(&web));
        // ... while flow support says the opposite.
        let by_flows = encode_flows(&flows, SupportMetric::Flows);
        assert!(by_flows.support_of(&alpha) < by_flows.support_of(&web));
    }

    #[test]
    fn packet_metric_drops_zero_packet_records() {
        let mut f = flow();
        f.packets = 0;
        assert_eq!(encode_flows(&[f.clone()], SupportMetric::Packets).len(), 0);
        assert_eq!(encode_flows(&[f], SupportMetric::Flows).len(), 1);
    }

    #[test]
    fn decode_orders_by_feature() {
        let itemset = Itemset::new(vec![
            item_of(FeatureItem::dst_port(80)),
            item_of(FeatureItem::src_ip(ip("10.0.0.1"))),
        ]);
        let decoded = decode_itemset(&itemset);
        assert_eq!(decoded[0].feature, Feature::SrcIp);
        assert_eq!(decoded[1].feature, Feature::DstPort);
    }

    #[test]
    fn itemset_filter_matches_exactly_its_flows() {
        let items = vec![FeatureItem::src_ip(ip("10.0.0.1")), FeatureItem::dst_port(80)];
        let filter = itemset_filter(&items);
        assert!(filter.matches(&flow()));
        let mut other = flow();
        other.dst_port = 443;
        assert!(!filter.matches(&other));
        let mut other2 = flow();
        other2.src_ip = ip("10.0.0.9");
        assert!(!filter.matches(&other2));
    }

    #[test]
    fn empty_itemset_filter_matches_everything() {
        assert!(itemset_filter(&[]).matches(&flow()));
    }

    #[test]
    fn warm_encode_mines_bit_identically_to_cold_across_windows() {
        use anomex_fim::{mine, Algorithm, MinSupport, MiningConfig};
        let window = |salt: u32| -> Vec<FlowRecord> {
            let mut flows = Vec::new();
            for i in 0..60u32 {
                flows.push(
                    FlowRecord::builder()
                        .time(i as u64, i as u64 + 5)
                        .src(Ipv4Addr::from(0x0A00_0000 + (i % 7)), 40_000 + (i % 3) as u16)
                        .dst(Ipv4Addr::from(0xAC10_0000 + (salt % 2)), 80)
                        .volume(3 + i as u64, 900)
                        .build(),
                );
            }
            // A few items unique to this window, so later windows both
            // hit the dictionary and append to it.
            flows.push(
                FlowRecord::builder()
                    .src(Ipv4Addr::from(0xC0A8_0000 + salt), 55_000 + salt as u16)
                    .dst(ip("172.16.0.1"), 53)
                    .volume(9, 500)
                    .build(),
            );
            flows
        };
        let config = MiningConfig {
            algorithm: Algorithm::Eclat,
            min_support: MinSupport::Absolute(3),
            max_len: 4,
            threads: 1,
        };
        let mut state = EncodeState::new();
        for salt in 0..4u32 {
            let flows = window(salt);
            let warm = EncodedFlows::encode_warm(&flows, &mut state);
            let cold = EncodedFlows::encode(&flows);
            assert_eq!(warm.candidate_flows(), cold.candidate_flows());
            assert_eq!(warm.candidate_packets(), cold.candidate_packets());
            // Mined output is canonical in item space, so warm (dense
            // ids in insertion order) and cold (ids in item order) must
            // agree exactly — on both support metrics.
            assert_eq!(mine(warm.flow_matrix(), &config), mine(cold.flow_matrix(), &config));
            assert_eq!(mine(warm.packet_matrix(), &config), mine(cold.packet_matrix(), &config));
        }
        let (hits, misses) = state.take_stats();
        assert!(hits > misses, "later windows must mostly hit the warm dictionary");
        assert_eq!(state.epoch(), 0, "no overflow in this population");
    }

    #[test]
    fn warm_encode_state_reports_dictionary_traffic() {
        let mut state = EncodeState::new();
        let flows = vec![flow(), flow()];
        let _ = EncodedFlows::encode_warm(&flows, &mut state);
        let (hits, misses) = state.take_stats();
        assert_eq!(misses, 4, "four fresh items interned");
        assert_eq!(hits, 4, "second identical flow hits all four");
        assert_eq!(state.interned(), 4);
        let _ = EncodedFlows::encode_warm(&flows, &mut state);
        let (hits, misses) = state.take_stats();
        assert_eq!((hits, misses), (8, 0), "fully warm on the second window");
    }

    #[test]
    fn itemset_filter_roundtrips_through_language() {
        // The generated filter must speak the same language as the parser.
        let items =
            vec![FeatureItem::src_ip(ip("10.0.0.1")), FeatureItem::dst_ip(ip("172.16.0.2"))];
        let filter = itemset_filter(&items);
        let reparsed = Filter::parse(&filter.to_string()).expect("printable filter must parse");
        assert!(reparsed.matches(&flow()));
    }
}

//! # anomex-core
//!
//! The paper's contribution: automated extraction and summarization of
//! the traffic flows causing a network anomaly, from an alarm's time
//! interval and (possibly incomplete) feature meta-data.
//!
//! Pipeline (Figure 1 of the paper):
//!
//! ```text
//! alarm (detector / alarm DB)
//!   └─> candidate selection  — union of meta-data hints      [candidate]
//!        └─> itemset encoding — flow = 4-item transaction     [encode]
//!             └─> extended Apriori — dual support (flows +
//!                 packets), self-tuned min-support, top-k     [extract]
//!                  └─> ranked itemsets — Table-1 report       [report]
//!                       ├─> flow drill-down                   [drill]
//!                       ├─> classification heuristics         [classify]
//!                       └─> ground-truth validation           [validate]
//! ```
//!
//! ## Example
//!
//! ```
//! use anomex_core::prelude::*;
//! use anomex_detect::prelude::*;
//! use anomex_flow::prelude::*;
//!
//! // A store holding a small port scan.
//! let store = FlowStore::new(60_000);
//! for p in 1..=200u32 {
//!     store.insert(
//!         FlowRecord::builder()
//!             .time(p as u64, p as u64 + 1)
//!             .src("10.0.0.9".parse().unwrap(), 55548)
//!             .dst("172.16.0.1".parse().unwrap(), p as u16)
//!             .volume(1, 44)
//!             .build(),
//!     );
//! }
//! // The detector flagged the scanner's address.
//! let alarm = Alarm::new(0, "demo", TimeRange::new(0, 10_000))
//!     .with_hints(vec![FeatureItem::src_ip("10.0.0.9".parse().unwrap())]);
//!
//! let extraction = Extractor::with_defaults().extract(&store, &alarm);
//! assert_eq!(extraction.itemsets[0].flow_support, 200);
//! println!("{}", render_table(&extraction, 1));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod candidate;
pub mod classify;
pub mod drill;
pub mod encode;
pub mod extract;
pub mod report;
pub mod validate;

/// One-stop imports for downstream crates.
pub mod prelude {
    pub use crate::candidate::{
        candidate_filter, candidates, candidates_from_iter, candidates_from_slice, CandidatePolicy,
    };
    pub use crate::classify::{classify, ItemsetClass};
    pub use crate::drill::{
        drill, drill_window, flag_histogram, looks_like_syn_flood, DrillSummary,
    };
    pub use crate::encode::{
        decode_itemset, encode_flows, feature_of, item_of, items_of_flow, itemset_filter,
        EncodeState, EncodedFlows, SupportMetric,
    };
    pub use crate::extract::{
        ExtractedItemset, Extraction, Extractor, ExtractorConfig, TuningInfo,
    };
    pub use crate::report::{human_count, render_rows, render_summary, render_table, ReportRow};
    pub use crate::validate::{
        validate, ItemsetVerdict, TruthEntry, TruthSet, Validation, ValidationConfig,
    };
}

pub use prelude::*;

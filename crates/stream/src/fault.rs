//! Deterministic fault injection and the supervision plumbing built on
//! it.
//!
//! A [`FaultPlan`] names *injection points*: pipeline sites
//! ([`FaultSite`]) armed to misbehave on their Nth occurrence — a
//! worker panic at the Nth task, a shard ring that reports full, a
//! packet that fails to decode, an intake handle whose event-time
//! frontier suddenly jumps (flooding later records behind the
//! watermark). Plans are plain data, so a test can replay the same
//! failure schedule run after run and assert exact recovery
//! accounting.
//!
//! The whole machinery sits behind the `fault-inject` cargo feature.
//! Without it, [`FaultPlan`] is a zero-sized struct, every check
//! compiles to a constant `false`, and the production binary contains
//! no injection code at all — `fault_plan_is_noop_without_feature`
//! pins that. With it, plans are armed at
//! [`launch`](crate::pipeline::launch) into an [`ActiveFaults`] shared
//! by every worker; each site keeps a relaxed occurrence counter, so
//! firing is deterministic in *occurrence order* (the Nth task of a
//! FIFO worker, the Nth flush of a specific shard) even though threads
//! interleave freely.
//!
//! Supervision itself ([`Supervision`]) is **not** feature-gated:
//! workers always run under `catch_unwind`, restarts and failovers are
//! always available — the feature only controls whether faults can be
//! *provoked* on purpose.

use std::sync::Arc;

use anomex_obs::Counter;

/// A pipeline site a [`FaultPlan`] can arm.
///
/// Occurrence counting is per *site value*: `ShardPanic(0)` and
/// `ShardPanic(1)` count independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Panic the given shard worker at the start of its Nth drained
    /// batch.
    ShardPanic(usize),
    /// Panic the given detector-pool worker on its Nth dispatched
    /// window.
    DetectorPanic(usize),
    /// Panic the extraction worker on its Nth dispatched window.
    ExtractPanic,
    /// Fail the Nth NetFlow packet decode on an intake handle.
    DecodeError,
    /// Report the given shard's ring as saturated on the handle's Nth
    /// flush to it (exercises [`OverloadPolicy::Shed`] deterministically).
    ///
    /// [`OverloadPolicy::Shed`]: crate::pipeline::OverloadPolicy::Shed
    RingFull(usize),
    /// Jump the intake handle's event-time frontier forward by the
    /// planned amount on its Nth pushed record — every record older
    /// than the new watermark then floods in late.
    LateFlood,
}

#[cfg(feature = "fault-inject")]
mod armed {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// One armed injection point: fire at the `at`-th occurrence of
    /// `site` (1-based), once or on every occurrence from there on.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(super) struct FaultPoint {
        pub(super) site: FaultSite,
        pub(super) at: u64,
        pub(super) repeat: bool,
        /// Site parameter (today: the `LateFlood` frontier jump, ms).
        pub(super) param: u64,
    }

    /// A deterministic schedule of injection points (`fault-inject`
    /// build). Plain data: clone it, keep it in a test table, replay
    /// it — the same plan over the same input yields the same faults.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct FaultPlan {
        pub(super) points: Vec<FaultPoint>,
    }

    impl FaultPlan {
        /// An empty plan (injects nothing).
        pub fn new() -> FaultPlan {
            FaultPlan::default()
        }

        /// Arm `site` to fire exactly once, at its `at`-th occurrence
        /// (1-based).
        #[must_use]
        pub fn once(mut self, site: FaultSite, at: u64) -> FaultPlan {
            self.points.push(FaultPoint { site, at: at.max(1), repeat: false, param: 0 });
            self
        }

        /// Arm `site` to fire on every occurrence from the `at`-th on
        /// (1-based) — the "panics repeatedly" schedules that drive
        /// quarantine and pool failover.
        #[must_use]
        pub fn repeat_from(mut self, site: FaultSite, at: u64) -> FaultPlan {
            self.points.push(FaultPoint { site, at: at.max(1), repeat: true, param: 0 });
            self
        }

        /// Arm a late-arrival flood: on the handle's `at`-th pushed
        /// record, jump its event-time frontier `advance_ms` forward.
        #[must_use]
        pub fn late_flood(mut self, at: u64, advance_ms: u64) -> FaultPlan {
            self.points.push(FaultPoint {
                site: FaultSite::LateFlood,
                at: at.max(1),
                repeat: false,
                param: advance_ms,
            });
            self
        }

        /// A small pseudo-random plan derived from `seed` (xorshift —
        /// no process entropy, so the same seed always arms the same
        /// points). Used by the chaos suite to sweep many distinct but
        /// reproducible failure schedules.
        pub fn seeded(seed: u64, shards: usize, detector_workers: usize) -> FaultPlan {
            let mut state = seed | 1;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut plan = FaultPlan::new();
            let n_points = 1 + (next() % 3) as usize;
            for _ in 0..n_points {
                let at = 1 + next() % 6;
                let site = match next() % 4 {
                    0 if shards > 0 => FaultSite::ShardPanic((next() % shards as u64) as usize),
                    1 if detector_workers > 0 => {
                        FaultSite::DetectorPanic((next() % detector_workers as u64) as usize)
                    }
                    2 => FaultSite::ExtractPanic,
                    _ => FaultSite::DecodeError,
                };
                plan =
                    if next() % 3 == 0 { plan.repeat_from(site, at) } else { plan.once(site, at) };
            }
            plan
        }

        /// True when the plan arms nothing.
        pub fn is_empty(&self) -> bool {
            self.points.is_empty()
        }
    }

    /// A launched plan: one relaxed occurrence counter per armed
    /// point, shared by every pipeline thread.
    #[derive(Debug)]
    pub(crate) struct ActiveFaults {
        points: Vec<(FaultPoint, AtomicU64)>,
        injected: Counter,
    }

    impl ActiveFaults {
        pub(crate) fn new(plan: &FaultPlan, injected: Counter) -> Arc<ActiveFaults> {
            Arc::new(ActiveFaults {
                points: plan.points.iter().map(|p| (*p, AtomicU64::new(0))).collect(),
                injected,
            })
        }

        /// Count one occurrence of `site`; true when an armed point
        /// fires on it. Counting is atomic, so concurrent sites (one
        /// counter per distinct site value) stay exact.
        pub(crate) fn fire(&self, site: FaultSite) -> bool {
            let mut fired = false;
            for (point, seen) in &self.points {
                if point.site != site {
                    continue;
                }
                let occurrence = seen.fetch_add(1, Ordering::Relaxed) + 1;
                if occurrence == point.at || (point.repeat && occurrence > point.at) {
                    self.injected.inc();
                    fired = true;
                }
            }
            fired
        }

        /// Count one [`FaultSite::LateFlood`] occurrence; the frontier
        /// jump (ms) when it fires.
        pub(crate) fn late_flood(&self) -> Option<u64> {
            let mut advance = None;
            for (point, seen) in &self.points {
                if point.site != FaultSite::LateFlood {
                    continue;
                }
                let occurrence = seen.fetch_add(1, Ordering::Relaxed) + 1;
                if occurrence == point.at || (point.repeat && occurrence > point.at) {
                    self.injected.inc();
                    advance = Some(advance.unwrap_or(0).max(point.param));
                }
            }
            advance
        }
    }
}

#[cfg(feature = "fault-inject")]
pub(crate) use armed::ActiveFaults;
#[cfg(feature = "fault-inject")]
pub use armed::FaultPlan;

#[cfg(not(feature = "fault-inject"))]
mod noop {
    use super::*;

    /// A deterministic schedule of injection points. **This build has
    /// the `fault-inject` feature off**: the plan is zero-sized, every
    /// builder is a no-op and every check compiles to `false` — the
    /// production pipeline contains no injection code.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct FaultPlan;

    impl FaultPlan {
        /// An empty plan (injects nothing).
        pub fn new() -> FaultPlan {
            FaultPlan
        }

        /// No-op without the `fault-inject` feature.
        #[must_use]
        pub fn once(self, _site: FaultSite, _at: u64) -> FaultPlan {
            self
        }

        /// No-op without the `fault-inject` feature.
        #[must_use]
        pub fn repeat_from(self, _site: FaultSite, _at: u64) -> FaultPlan {
            self
        }

        /// No-op without the `fault-inject` feature.
        #[must_use]
        pub fn late_flood(self, _at: u64, _advance_ms: u64) -> FaultPlan {
            self
        }

        /// No-op without the `fault-inject` feature (always empty).
        pub fn seeded(_seed: u64, _shards: usize, _detector_workers: usize) -> FaultPlan {
            FaultPlan
        }

        /// Always true without the `fault-inject` feature.
        pub fn is_empty(&self) -> bool {
            true
        }
    }

    /// Zero-sized stand-in; [`fire`](ActiveFaults::fire) is a constant
    /// `false` the optimizer erases.
    #[derive(Debug)]
    pub(crate) struct ActiveFaults;

    impl ActiveFaults {
        pub(crate) fn new(_plan: &FaultPlan, _injected: Counter) -> Arc<ActiveFaults> {
            Arc::new(ActiveFaults)
        }

        #[inline(always)]
        pub(crate) fn fire(&self, _site: FaultSite) -> bool {
            false
        }

        #[inline(always)]
        pub(crate) fn late_flood(&self) -> Option<u64> {
            None
        }
    }
}

#[cfg(not(feature = "fault-inject"))]
pub(crate) use noop::ActiveFaults;
#[cfg(not(feature = "fault-inject"))]
pub use noop::FaultPlan;

/// The poisoned-result sentinel a supervised worker sends (instead of a
/// result) when its task panicked, just before the thread exits. The
/// supervisor receiving one knows the front in-flight task failed and
/// the worker is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WorkerPoisoned;

/// Restarts a supervised pool grants itself before failing over to the
/// inline path. Small on purpose: a fault that keeps recurring is a
/// deterministic bug, and the inline path (with per-slot isolation) is
/// the safer place to limp along in.
pub(crate) const MAX_POOL_RESTARTS: u32 = 3;

/// Times one extraction task may panic its worker before the window is
/// quarantined (skipped and reported) instead of retried.
pub(crate) const MAX_TASK_ATTEMPTS: u32 = 2;

/// Exponential backoff before the `n`-th restart (1-based): 5, 10, 20,
/// 40 ... capped at 160 ms. Keeps a crash-looping worker from spinning
/// the control thread while staying short enough for tests.
pub(crate) fn restart_backoff(restart: u32) {
    let ms = 5u64 << (restart.saturating_sub(1)).min(5);
    std::thread::sleep(std::time::Duration::from_millis(ms));
}

/// The supervision handle bundle a pool (or the inline bank) reports
/// recovery through: the armed fault plan plus the `fault.*` /
/// `degraded.*` counters. Cloned from `PipelineMetrics` at launch;
/// [`standalone`](Supervision::standalone) for pools built outside a
/// pipeline (unit tests, direct library use).
#[derive(Debug, Clone)]
pub(crate) struct Supervision {
    pub(crate) faults: Arc<ActiveFaults>,
    /// `fault.worker_panics`: panics caught by any supervisor.
    pub(crate) worker_panics: Counter,
    /// `degraded.*.restarts`: workers (or inline slots) rebuilt fresh.
    pub(crate) restarts: Counter,
    /// `degraded.*.failovers`: pools that fell back to the inline path.
    pub(crate) failovers: Counter,
    /// `degraded.quarantined_windows`: windows skipped after repeated
    /// extraction panics.
    pub(crate) quarantined: Counter,
    /// Restart budget before failover ([`MAX_POOL_RESTARTS`] by
    /// default).
    pub(crate) max_restarts: u32,
}

impl Supervision {
    /// Supervision with live standalone counters and no armed faults —
    /// for pools constructed outside a pipeline launch.
    pub(crate) fn standalone() -> Supervision {
        Supervision {
            faults: ActiveFaults::new(&FaultPlan::new(), Counter::standalone()),
            worker_panics: Counter::standalone(),
            restarts: Counter::standalone(),
            failovers: Counter::standalone(),
            quarantined: Counter::standalone(),
            max_restarts: MAX_POOL_RESTARTS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "fault-inject"))]
    #[test]
    fn fault_plan_is_noop_without_feature() {
        // The default build carries no injection code: the plan is
        // zero-sized and armed checks are constant-false.
        assert_eq!(std::mem::size_of::<FaultPlan>(), 0);
        let plan = FaultPlan::new()
            .once(FaultSite::ExtractPanic, 1)
            .repeat_from(FaultSite::ShardPanic(0), 1)
            .late_flood(1, 60_000);
        assert!(plan.is_empty());
        let active = ActiveFaults::new(&plan, Counter::standalone());
        assert!(!active.fire(FaultSite::ExtractPanic));
        assert_eq!(active.late_flood(), None);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn armed_points_fire_on_exact_occurrences() {
        let injected = Counter::standalone();
        let plan = FaultPlan::new()
            .once(FaultSite::DetectorPanic(1), 3)
            .repeat_from(FaultSite::ExtractPanic, 2)
            .late_flood(2, 45_000);
        assert!(!plan.is_empty());
        let active = ActiveFaults::new(&plan, injected.clone());
        // `once` at the 3rd occurrence, per site value.
        assert!(!active.fire(FaultSite::DetectorPanic(1)));
        assert!(!active.fire(FaultSite::DetectorPanic(0)), "other worker never armed");
        assert!(!active.fire(FaultSite::DetectorPanic(1)));
        assert!(active.fire(FaultSite::DetectorPanic(1)));
        assert!(!active.fire(FaultSite::DetectorPanic(1)), "once means once");
        // `repeat_from` fires from the 2nd occurrence on.
        assert!(!active.fire(FaultSite::ExtractPanic));
        assert!(active.fire(FaultSite::ExtractPanic));
        assert!(active.fire(FaultSite::ExtractPanic));
        // Late flood hands back its parameter exactly once here.
        assert_eq!(active.late_flood(), None);
        assert_eq!(active.late_flood(), Some(45_000));
        assert_eq!(active.late_flood(), None);
        assert_eq!(injected.get(), 4, "every firing counts on fault.injected");
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn seeded_plans_are_reproducible_and_distinct() {
        let a = FaultPlan::seeded(7, 2, 2);
        let b = FaultPlan::seeded(7, 2, 2);
        assert_eq!(a, b, "same seed, same plan");
        assert!(!a.is_empty());
        let all_same = (0..16u64).all(|s| FaultPlan::seeded(s, 2, 2) == a);
        assert!(!all_same, "seeds must actually vary the schedule");
    }
}

//! Best-effort CPU affinity for shard workers.
//!
//! Pinning each shard worker to one core keeps its window state and
//! ring-channel slots cache-resident instead of migrating between
//! cores under scheduler pressure — worth single-digit percents on a
//! loaded multicore host, nothing on an idle one. Only Linux is
//! supported (`sched_setaffinity`); everywhere else
//! [`pin_current_thread`] is a documented no-op returning `false`.
//! Failures are never fatal: a mask the kernel rejects (for example
//! under a restricted cpuset) leaves the thread where it was.

/// Pin the calling thread to `core` (0-based). Returns whether the
/// kernel accepted the mask; `false` on unsupported platforms, cores
/// beyond the mask width, or kernel rejection.
pub fn pin_current_thread(core: usize) -> bool {
    imp::pin(core)
}

#[cfg(target_os = "linux")]
mod imp {
    /// 1024-bit CPU mask — the glibc `cpu_set_t` width.
    const MASK_WORDS: usize = 16;

    extern "C" {
        /// libc wrapper for the `sched_setaffinity` syscall; `pid == 0`
        /// targets the calling thread.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    pub(super) fn pin(core: usize) -> bool {
        if core >= MASK_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[core / 64] |= 1u64 << (core % 64);
        // SAFETY: `mask` is a live, properly aligned buffer of exactly
        // `cpusetsize` bytes that the kernel only reads, and pid 0
        // addresses the calling thread, so no other thread's scheduler
        // state is touched.
        unsafe { sched_setaffinity(0, MASK_WORDS * 8, mask.as_ptr()) == 0 }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub(super) fn pin(_core: usize) -> bool {
        false // unsupported platform: documented no-op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(target_os = "linux")]
    #[test]
    fn pinning_to_core_zero_succeeds() {
        assert!(pin_current_thread(0), "core 0 always exists");
    }

    #[test]
    fn pinning_beyond_the_mask_width_is_refused() {
        assert!(!pin_current_thread(1 << 20));
    }
}

//! Event-time tumbling windows with watermarks.
//!
//! Each ingest shard owns a [`ShardWindows`]: records are assigned to
//! the tumbling window containing their **start timestamp** (the same
//! NetFlow convention as `IntervalSeries::cut`), windows close when the
//! event-time watermark passes their end, and records arriving behind
//! the watermark are counted as late and dropped. The single
//! [`WindowManager`] downstream merges the per-shard partials and emits
//! gapless, in-order [`ClosedWindow`]s — deterministically, regardless
//! of how shard messages interleave, because a window is only emitted
//! once every shard's watermark frontier has passed it and partials are
//! always folded in shard order.

use std::collections::BTreeMap;
use std::sync::Arc;

use anomex_detect::interval::IntervalStat;
use anomex_flow::record::FlowRecord;
use anomex_flow::store::TimeRange;

/// Tumbling-window grid parameters shared by every shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Window width in milliseconds (the detection interval).
    pub width_ms: u64,
    /// Replay span. When set, the grid is anchored at `span.from_ms`,
    /// records outside the span are rejected, and a final flush emits
    /// exactly `span.intervals(width_ms)` windows — mirroring the batch
    /// pipeline's `IntervalSeries::cut`. When `None` the grid is
    /// anchored at epoch 0 and runs open-ended.
    pub span: Option<TimeRange>,
}

impl WindowConfig {
    /// Grid origin: the start of window 0.
    pub fn origin_ms(&self) -> u64 {
        self.span.map_or(0, |s| s.from_ms)
    }

    /// Number of windows when the span is bounded.
    pub fn window_count(&self) -> Option<u64> {
        self.span.map(|s| s.len_ms().div_ceil(self.width_ms))
    }

    /// The time range of window `index` (last span window clipped, like
    /// `TimeRange::intervals`).
    pub fn range_of(&self, index: u64) -> TimeRange {
        let mut range = TimeRange::window_at(index, self.origin_ms(), self.width_ms);
        if let Some(span) = self.span {
            range.to_ms = range.to_ms.min(span.to_ms);
        }
        range
    }
}

/// One shard's partial of one closed window.
///
/// The record segment is frozen into an `Arc` slice **on the shard
/// thread** at close time: from here on, merging, retention and
/// extraction snapshots only ever clone the `Arc`, never the records.
#[derive(Debug, Clone)]
pub struct WindowShard {
    /// Which shard produced it.
    pub shard: usize,
    /// Window index on the grid.
    pub index: u64,
    /// Partial interval summary over this shard's records.
    pub stat: IntervalStat,
    /// This shard's records of the window, in arrival order.
    pub records: Arc<[FlowRecord]>,
}

/// A window still accumulating records on its shard.
#[derive(Debug)]
struct OpenWindow {
    stat: IntervalStat,
    records: Vec<FlowRecord>,
}

/// Per-shard window state: open windows plus the closed frontier.
#[derive(Debug)]
pub struct ShardWindows {
    shard: usize,
    config: WindowConfig,
    open: BTreeMap<u64, OpenWindow>,
    /// First window index not yet closed on this shard.
    frontier: u64,
    late_dropped: u64,
    out_of_span: u64,
}

impl ShardWindows {
    /// Empty window state for `shard`.
    ///
    /// # Panics
    /// Panics if the configured width is zero.
    pub fn new(shard: usize, config: WindowConfig) -> ShardWindows {
        assert!(config.width_ms > 0, "window width must be positive");
        ShardWindows {
            shard,
            config,
            open: BTreeMap::new(),
            frontier: 0,
            late_dropped: 0,
            out_of_span: 0,
        }
    }

    /// Records dropped for arriving behind the watermark.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Records rejected for falling outside the configured span.
    pub fn out_of_span(&self) -> u64 {
        self.out_of_span
    }

    /// First window index not yet closed.
    pub fn frontier(&self) -> u64 {
        self.frontier
    }

    /// Account one record; `false` when it was dropped (late or out of
    /// span).
    pub fn push(&mut self, record: FlowRecord) -> bool {
        let Some(index) =
            TimeRange::window_index(record.start_ms, self.config.origin_ms(), self.config.width_ms)
        else {
            self.out_of_span += 1;
            return false;
        };
        if self.config.window_count().is_some_and(|count| index >= count) {
            self.out_of_span += 1;
            return false;
        }
        if index < self.frontier {
            self.late_dropped += 1;
            return false;
        }
        let config = &self.config;
        let slot = self.open.entry(index).or_insert_with(|| OpenWindow {
            stat: IntervalStat::empty(config.range_of(index)),
            records: Vec::new(),
        });
        slot.stat.add(&record);
        slot.records.push(record);
        true
    }

    /// Advance the watermark to `watermark_ms` event time, closing and
    /// returning every window whose end it passed (in index order).
    pub fn close_up_to(&mut self, watermark_ms: u64) -> Vec<WindowShard> {
        let origin = self.config.origin_ms();
        let mut target = watermark_ms.saturating_sub(origin) / self.config.width_ms;
        if let Some(count) = self.config.window_count() {
            target = target.min(count);
        }
        self.close_to_target(target)
    }

    /// Stream end: close every remaining window and seal the shard (the
    /// frontier jumps to `u64::MAX`, so any further record is late).
    pub fn flush(&mut self) -> Vec<WindowShard> {
        self.close_to_target(u64::MAX)
    }

    fn close_to_target(&mut self, target: u64) -> Vec<WindowShard> {
        if target <= self.frontier {
            return Vec::new();
        }
        self.frontier = target;
        let still_open = self.open.split_off(&target);
        let closed = std::mem::replace(&mut self.open, still_open);
        closed
            .into_iter()
            .map(|(index, w)| WindowShard {
                shard: self.shard,
                index,
                stat: w.stat,
                // Freeze here, on the shard thread: downstream hand-offs
                // (merge, retention, extraction snapshot) are Arc clones.
                records: w.records.into(),
            })
            .collect()
    }
}

/// The records of one closed window: per-shard `Arc` segments in shard
/// order, iterated as one logical sequence.
///
/// Cloning a `WindowRecords` clones the segment `Arc`s only — a
/// retained window can be snapshotted for an asynchronous extraction
/// task at the cost of a few pointer bumps, whatever the horizon holds.
/// Iteration order (segment by segment, arrival order within each) is
/// exactly the order the old contiguous vector had.
#[derive(Debug, Clone, Default)]
pub struct WindowRecords {
    segments: Vec<Arc<[FlowRecord]>>,
    len: usize,
}

impl WindowRecords {
    /// No records, no segments.
    pub fn new() -> WindowRecords {
        WindowRecords::default()
    }

    /// Total records across every segment.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one shard's segment (empty segments are dropped).
    pub fn push_segment(&mut self, segment: Arc<[FlowRecord]>) {
        self.len += segment.len();
        if !segment.is_empty() {
            self.segments.push(segment);
        }
    }

    /// The underlying segments, in shard order.
    pub fn segments(&self) -> &[Arc<[FlowRecord]>] {
        &self.segments
    }

    /// Iterate every record in shard order.
    pub fn iter(&self) -> impl Iterator<Item = &FlowRecord> + '_ {
        self.segments.iter().flat_map(|s| s.iter())
    }

    /// Materialize one contiguous vector (tests and batch comparisons).
    pub fn to_vec(&self) -> Vec<FlowRecord> {
        self.iter().cloned().collect()
    }
}

impl From<Vec<FlowRecord>> for WindowRecords {
    fn from(records: Vec<FlowRecord>) -> WindowRecords {
        let mut out = WindowRecords::new();
        out.push_segment(records.into());
        out
    }
}

impl From<Arc<[FlowRecord]>> for WindowRecords {
    fn from(segment: Arc<[FlowRecord]>) -> WindowRecords {
        let mut out = WindowRecords::new();
        out.push_segment(segment);
        out
    }
}

impl<'a> IntoIterator for &'a WindowRecords {
    type Item = &'a FlowRecord;
    type IntoIter = std::iter::FlatMap<
        std::slice::Iter<'a, Arc<[FlowRecord]>>,
        std::slice::Iter<'a, FlowRecord>,
        fn(&'a Arc<[FlowRecord]>) -> std::slice::Iter<'a, FlowRecord>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.segments.iter().flat_map(|s| s.iter())
    }
}

/// One fully-merged window, every shard's records included.
#[derive(Debug, Clone)]
pub struct ClosedWindow {
    /// Window index on the grid.
    pub index: u64,
    /// The window's time range.
    pub range: TimeRange,
    /// Merged interval summary (detector input).
    pub stat: IntervalStat,
    /// Merged records in shard order (extraction input).
    pub records: WindowRecords,
}

/// Cross-shard merger: collects [`WindowShard`]s and per-shard watermark
/// frontiers, emits [`ClosedWindow`]s gapless and in order once every
/// shard has passed them.
#[derive(Debug)]
pub struct WindowManager {
    shards: usize,
    config: WindowConfig,
    frontiers: Vec<u64>,
    pending: BTreeMap<u64, Vec<Option<WindowShard>>>,
    /// Next index to emit; `None` until the first emittable window is
    /// known (open-ended streams have no natural first window).
    next_emit: Option<u64>,
}

impl WindowManager {
    /// Merger over `shards` upstream shards.
    ///
    /// # Panics
    /// Panics if `shards` is zero or the configured width is zero.
    pub fn new(shards: usize, config: WindowConfig) -> WindowManager {
        assert!(shards > 0, "shard count must be positive");
        assert!(config.width_ms > 0, "window width must be positive");
        WindowManager {
            shards,
            config,
            frontiers: vec![0; shards],
            pending: BTreeMap::new(),
            next_emit: None,
        }
    }

    /// Accept one shard's report: its closed windows plus its new
    /// frontier. Returns every window that became globally closed.
    ///
    /// Equivalent to [`stage`](WindowManager::stage) followed by
    /// [`drain`](WindowManager::drain); callers holding a batch of
    /// reports should stage them all and drain once.
    pub fn offer(
        &mut self,
        from_shard: usize,
        frontier: u64,
        windows: Vec<WindowShard>,
    ) -> Vec<ClosedWindow> {
        self.stage(from_shard, frontier, windows);
        self.emit()
    }

    /// File one shard's report — partials plus its new frontier —
    /// without scanning for emittable windows. Staging a run of
    /// reports and [`drain`](WindowManager::drain)ing once amortizes
    /// the frontier scan and the emission walk over the whole batch,
    /// and hands downstream one large run of ready windows instead of
    /// many short ones. Staging order never matters: partials are
    /// keyed by (window, shard) and frontiers only ratchet forward, so
    /// any interleaving drains to the identical window sequence.
    pub fn stage(&mut self, from_shard: usize, frontier: u64, windows: Vec<WindowShard>) {
        for w in windows {
            debug_assert_eq!(w.shard, from_shard, "shard partial routed to wrong slot");
            let shards = self.shards;
            let slots = self.pending.entry(w.index).or_insert_with(|| {
                let mut v = Vec::with_capacity(shards);
                v.resize_with(shards, || None);
                v
            });
            slots[from_shard] = Some(w);
        }
        self.frontiers[from_shard] = self.frontiers[from_shard].max(frontier);
    }

    /// Emit every window that became globally closed since the last
    /// drain (gapless, in index order).
    pub fn drain(&mut self) -> Vec<ClosedWindow> {
        self.emit()
    }

    /// Permanently remove a dead shard from the merge frontier: its
    /// slot stops gating the min-over-shards emission, so the
    /// survivors' windows keep flowing. Partials the shard already
    /// staged still merge; everything it would have contributed from
    /// here on is simply absent (the supervision layer reports that
    /// gap — see `PipelineHealth::shard_deaths`).
    pub fn retire_shard(&mut self, shard: usize) {
        // Equivalent to a final report at an infinite frontier, which
        // is exactly how a healthy shard leaves the stream at flush.
        self.stage(shard, u64::MAX, Vec::new());
    }

    /// Stream end: emit everything left. Callers must first [`offer`]
    /// every shard's flush report (frontier `u64::MAX`), or trailing
    /// windows stay unemitted.
    ///
    /// [`offer`]: WindowManager::offer
    pub fn finish(&mut self) -> Vec<ClosedWindow> {
        self.emit()
    }

    fn emit(&mut self) -> Vec<ClosedWindow> {
        let global = *self.frontiers.iter().min().expect("at least one shard");
        if self.next_emit.is_none() {
            self.next_emit = match self.config.window_count() {
                // Bounded replay: the grid starts at window 0 no matter
                // where the first record lands.
                Some(_) => Some(0),
                // Open-ended: start at the first occupied window.
                None => self.pending.keys().next().copied().filter(|&k| k < global),
            };
        }
        let Some(mut idx) = self.next_emit else {
            return Vec::new();
        };
        // Emission ceiling: the global frontier, capped for open-ended
        // streams at the last occupied window (an infinite tail of empty
        // windows is meaningless without a span).
        let end = match self.config.window_count() {
            Some(count) => global.min(count),
            None => match self.pending.keys().next_back() {
                Some(&last) => global.min(last + 1),
                None => idx,
            },
        };
        let mut out = Vec::new();
        while idx < end {
            let range = self.config.range_of(idx);
            // Move the first occupied partial instead of merging it
            // into an empty summary: for single-shard pipelines (and
            // any window only one shard touched) the whole window —
            // distribution maps and record segment — transfers without
            // copying a single entry. Additional shards contribute
            // their segment by Arc move, never by record copy.
            let mut merged: Option<(IntervalStat, WindowRecords)> = None;
            if let Some(slots) = self.pending.remove(&idx) {
                for shard in slots.into_iter().flatten() {
                    match &mut merged {
                        None => {
                            debug_assert_eq!(shard.stat.range, range, "partial on wrong grid");
                            merged = Some((shard.stat, shard.records.into()));
                        }
                        Some((stat, records)) => {
                            stat.merge(&shard.stat);
                            records.push_segment(shard.records);
                        }
                    }
                }
            }
            let (stat, records) =
                merged.unwrap_or_else(|| (IntervalStat::empty(range), WindowRecords::new()));
            out.push(ClosedWindow { index: idx, range, stat, records });
            idx += 1;
        }
        self.next_emit = Some(idx);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn rec(start_ms: u64, salt: u32) -> FlowRecord {
        FlowRecord::builder()
            .time(start_ms, start_ms + 10)
            .src(Ipv4Addr::from(0x0A00_0000 + salt), 1_000 + (salt % 500) as u16)
            .dst(Ipv4Addr::from(0xAC10_0001), 80)
            .volume(2, 120)
            .build()
    }

    fn bounded(width: u64, span_ms: u64) -> WindowConfig {
        WindowConfig { width_ms: width, span: Some(TimeRange::new(0, span_ms)) }
    }

    #[test]
    fn shard_assigns_by_start_and_closes_on_watermark() {
        let mut sw = ShardWindows::new(0, bounded(100, 1_000));
        assert!(sw.push(rec(5, 1)));
        assert!(sw.push(rec(99, 2)));
        assert!(sw.push(rec(100, 3)));
        // Watermark 200: both [0,100) and [100,200) are complete.
        let closed = sw.close_up_to(200);
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].index, 0);
        assert_eq!(closed[0].records.len(), 2);
        assert_eq!(closed[1].index, 1);
        assert_eq!(closed[1].records.len(), 1);
        assert_eq!(sw.frontier(), 2);
        // A watermark that does not advance closes nothing further.
        let more = sw.close_up_to(200);
        assert!(more.is_empty());
    }

    #[test]
    fn late_records_are_dropped_and_counted() {
        let mut sw = ShardWindows::new(0, bounded(100, 1_000));
        sw.push(rec(150, 1));
        sw.close_up_to(200); // frontier passes window 0 and 1
        assert!(!sw.push(rec(50, 2)), "behind the watermark");
        assert_eq!(sw.late_dropped(), 1);
        assert!(sw.push(rec(250, 3)), "ahead of the watermark");
    }

    #[test]
    fn out_of_span_records_are_rejected() {
        let mut sw = ShardWindows::new(0, bounded(100, 300));
        assert!(!sw.push(rec(300, 1)), "at span end");
        assert!(!sw.push(rec(5_000, 2)), "far past span");
        assert_eq!(sw.out_of_span(), 2);
        let mut anchored = ShardWindows::new(
            0,
            WindowConfig { width_ms: 100, span: Some(TimeRange::new(500, 900)) },
        );
        assert!(!anchored.push(rec(400, 3)), "before span origin");
        assert_eq!(anchored.out_of_span(), 1);
    }

    #[test]
    fn flush_closes_everything_and_seals() {
        let mut sw = ShardWindows::new(0, bounded(100, 1_000));
        sw.push(rec(50, 1));
        sw.push(rec(950, 2));
        let closed = sw.flush();
        assert_eq!(closed.len(), 2);
        assert_eq!(sw.frontier(), u64::MAX);
        assert!(!sw.push(rec(999, 3)), "sealed shard drops everything");
    }

    #[test]
    fn manager_emits_in_order_with_gap_fill_regardless_of_arrival() {
        // Two shards; windows 0..5 over a 500ms span. Shard 0 owns
        // records in windows 0 and 3, shard 1 in window 1. Offer the
        // reports in both orders; the emitted sequence must be identical.
        let run = |first_shard: usize| {
            let config = bounded(100, 500);
            let mut shard0 = ShardWindows::new(0, config);
            let mut shard1 = ShardWindows::new(1, config);
            shard0.push(rec(10, 1));
            shard0.push(rec(310, 2));
            shard1.push(rec(110, 3));
            let f0 = {
                let w = shard0.flush();
                (0usize, u64::MAX, w)
            };
            let f1 = {
                let w = shard1.flush();
                (1usize, u64::MAX, w)
            };
            let mut manager = WindowManager::new(2, config);
            let mut emitted = Vec::new();
            let (a, b) = if first_shard == 0 { (f0, f1) } else { (f1, f0) };
            emitted.extend(manager.offer(a.0, a.1, a.2));
            emitted.extend(manager.offer(b.0, b.1, b.2));
            emitted.extend(manager.finish());
            emitted
        };
        let forward = run(0);
        let backward = run(1);
        assert_eq!(forward.len(), 5, "bounded span must emit every window");
        let summarize = |ws: &[ClosedWindow]| -> Vec<(u64, u64)> {
            ws.iter().map(|w| (w.index, w.stat.flows)).collect()
        };
        assert_eq!(summarize(&forward), summarize(&backward));
        assert_eq!(summarize(&forward), vec![(0, 1), (1, 1), (2, 0), (3, 1), (4, 0)]);
        for w in &forward {
            assert_eq!(w.records.len() as u64, w.stat.flows);
        }
    }

    #[test]
    fn merged_window_snapshots_share_shard_records() {
        // The zero-clone invariant behind the extraction pool hand-off:
        // the cross-shard merge moves each shard's frozen `Arc` segment
        // into the emitted window, and cloning the window (what a pool
        // dispatch snapshot does) bumps refcounts without copying a
        // single FlowRecord.
        let config = bounded(100, 1_000);
        let mut shard0 = ShardWindows::new(0, config);
        let mut shard1 = ShardWindows::new(1, config);
        shard0.push(rec(5, 1));
        shard0.push(rec(10, 2));
        shard1.push(rec(20, 3));
        let from0 = shard0.close_up_to(100);
        let from1 = shard1.close_up_to(100);
        let arc0 = Arc::clone(&from0[0].records);
        let arc1 = Arc::clone(&from1[0].records);

        let mut manager = WindowManager::new(2, config);
        manager.stage(0, shard0.frontier(), from0);
        manager.stage(1, shard1.frontier(), from1);
        let merged = manager.drain();
        assert_eq!(merged.len(), 1);
        let window = &merged[0];
        assert_eq!(window.records.len(), 3);
        let segments = window.records.segments();
        assert_eq!(segments.len(), 2, "one segment per contributing shard");
        assert!(segments.iter().any(|s| Arc::ptr_eq(s, &arc0)), "shard 0 records were copied");
        assert!(segments.iter().any(|s| Arc::ptr_eq(s, &arc1)), "shard 1 records were copied");

        let snapshot = window.clone();
        for (original, cloned) in segments.iter().zip(snapshot.records.segments()) {
            assert!(Arc::ptr_eq(original, cloned), "snapshot deep-copied a segment");
        }
    }

    #[test]
    fn staged_bulk_drain_matches_per_offer_emission() {
        // The batched control-loop path (stage every queued report,
        // drain once) must emit exactly what per-report offers emit,
        // whatever order the reports are staged in.
        let config = bounded(100, 500);
        let reports = || {
            let mut shard0 = ShardWindows::new(0, config);
            let mut shard1 = ShardWindows::new(1, config);
            shard0.push(rec(10, 1));
            shard0.push(rec(310, 2));
            shard1.push(rec(110, 3));
            shard1.push(rec(320, 4));
            let mid0 = shard0.close_up_to(200);
            let mid1 = shard1.close_up_to(200);
            vec![
                (0usize, shard0.frontier(), mid0),
                (1usize, shard1.frontier(), mid1),
                (0usize, u64::MAX, shard0.flush()),
                (1usize, u64::MAX, shard1.flush()),
            ]
        };
        let summarize = |ws: &[ClosedWindow]| -> Vec<(u64, u64)> {
            ws.iter().map(|w| (w.index, w.stat.flows)).collect()
        };

        let mut per_offer = WindowManager::new(2, config);
        let mut expected = Vec::new();
        for (shard, frontier, windows) in reports() {
            expected.extend(per_offer.offer(shard, frontier, windows));
        }
        expected.extend(per_offer.finish());
        assert_eq!(summarize(&expected), vec![(0, 1), (1, 1), (2, 0), (3, 2), (4, 0)]);

        for reversed in [false, true] {
            let mut batch = reports();
            if reversed {
                batch.reverse();
            }
            let mut manager = WindowManager::new(2, config);
            for (shard, frontier, windows) in batch {
                manager.stage(shard, frontier, windows);
            }
            let mut drained = manager.drain();
            drained.extend(manager.finish());
            assert_eq!(summarize(&drained), summarize(&expected), "reversed={reversed}");
            for (a, b) in drained.iter().zip(&expected) {
                assert_eq!(a.range, b.range);
                assert_eq!(a.records.len(), b.records.len());
            }
        }
    }

    #[test]
    fn manager_waits_for_slowest_shard() {
        let config = bounded(100, 500);
        let mut manager = WindowManager::new(2, config);
        let mut shard0 = ShardWindows::new(0, config);
        shard0.push(rec(10, 1));
        let closed = shard0.close_up_to(200);
        // Shard 0 passed window 0, shard 1 has not reported: no emission.
        assert!(manager.offer(0, shard0.frontier(), closed).is_empty());
        // Shard 1 catches up: window 0 (and the empty window 1) emit.
        let emitted = manager.offer(1, 2, Vec::new());
        assert_eq!(emitted.len(), 2);
        assert_eq!(emitted[0].stat.flows, 1);
        assert_eq!(emitted[1].stat.flows, 0);
    }

    #[test]
    fn open_ended_stream_starts_at_first_occupied_window() {
        let config = WindowConfig { width_ms: 100, span: None };
        let mut manager = WindowManager::new(1, config);
        let mut sw = ShardWindows::new(0, config);
        sw.push(rec(720, 1)); // window 7
        sw.push(rec(930, 2)); // window 9
        let windows = sw.flush();
        let mut emitted = manager.offer(0, sw.frontier(), windows);
        emitted.extend(manager.finish());
        let indices: Vec<u64> = emitted.iter().map(|w| w.index).collect();
        assert_eq!(indices, vec![7, 8, 9], "gap filled, no leading empties");
        assert_eq!(emitted[1].stat.flows, 0);
    }

    #[test]
    fn clipped_last_window_matches_batch_intervals() {
        let span = TimeRange::new(0, 250);
        let config = WindowConfig { width_ms: 100, span: Some(span) };
        assert_eq!(config.window_count(), Some(3));
        let batch = span.intervals(100);
        for (i, expected) in batch.iter().enumerate() {
            assert_eq!(config.range_of(i as u64), *expected);
        }
    }
}

//! The assembled pipeline: sharded ingest workers, one merge/detect/
//! extract control thread, and a subscriber channel of reports.
//!
//! ```text
//! IngestHandle(s) ──(bounded ring, by flow-key shard, batched
//!       │            send_many/recv_many)──> shard worker 0..N   [ShardWindows]
//!       └── shared watermark (min over live handles) ──────────>│ closed shard windows
//!                                                               v
//!                                            control thread  [WindowManager]
//!                                                               │ gapless ClosedWindows
//!                                                               v
//!                                               [DetectorBank] ─> merged EnsembleAlarms
//!                                                               v
//!                                        [ContinuousExtractor] ─> StreamReports
//!                                                               v
//!                                               subscriber Receiver<StreamReport>
//! ```
//!
//! Every channel along the record path is bounded, so a slow miner
//! backpressures through the workers into [`IngestHandle::push`] rather
//! than buffering without limit. The report channel is bounded too, but
//! with a **drop-and-count** policy instead of backpressure: reports are
//! `try_send`-ed, a full queue drops the report and bumps
//! [`StreamStats::reports_dropped`], and the next delivered report
//! carries the cumulative drop count in
//! [`StreamReport::dropped_before`] — so a lazy subscriber can never
//! deadlock the pipeline against [`IngestHandle::finish`], yet sees the
//! size of any gap it caused.
//!
//! The ingest side lives in [`crate::ingest`]: per-shard flush buffers
//! batched over the lock-free channel, and any number of concurrent
//! [`IngestHandle`]s sharing one watermark table.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use anomex_core::extract::ExtractorConfig;
use anomex_flow::record::FlowRecord;
use anomex_flow::store::TimeRange;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use serde::{Deserialize, Serialize};

use crate::detector::{DetectorBank, DetectorCounters, DetectorPool, DetectorRegistry};
use crate::fault::{ActiveFaults, FaultPlan, FaultSite, Supervision, MAX_POOL_RESTARTS};
use crate::ingest::{PipelineCore, PipelineJoin};
use crate::metrics::{MetricsConfig, MetricsReport, PipelineMetrics};
use crate::report::{
    supervised_push, ContinuousExtractor, ExtractionPool, FaultKind, FaultNotice, RebuildSpec,
    StreamReport,
};
use crate::window::{ShardWindows, WindowConfig, WindowManager, WindowShard};
use anomex_obs::stage_timer;

pub use crate::ingest::IngestHandle;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Ingest worker threads; records are routed by 5-tuple shard.
    pub shards: usize,
    /// Capacity of each bounded channel on the record path — the
    /// backpressure depth.
    pub queue_depth: usize,
    /// Records buffered per shard in each [`IngestHandle`] before one
    /// batched `send_many` hands them to the worker; the sender-side
    /// amortization knob (1 = unbatched).
    pub ingest_batch: usize,
    /// Bounded out-of-orderness: the watermark trails the maximum event
    /// time seen by this much. Records older than the watermark are
    /// dropped (and counted) as late.
    pub lateness_ms: u64,
    /// Broadcast a watermark to every shard after this many records
    /// (per handle). Also the flush cadence for lightly-loaded shard
    /// buffers, so it bounds batching latency.
    pub watermark_every: usize,
    /// Replay span; see [`WindowConfig::span`]. `None` = open-ended.
    pub span: Option<TimeRange>,
    /// Capacity of the bounded subscriber (report) channel. A full
    /// queue drops reports (counted in [`StreamStats::reports_dropped`])
    /// rather than stalling detection.
    pub report_queue: usize,
    /// The detector bank judging each closed window: one or many
    /// detectors (an ensemble), every entry on the same interval.
    pub detectors: DetectorRegistry,
    /// Detector-bank worker threads. `0` (the default) runs every
    /// detector inline on the control thread; `n > 0` fans the bank
    /// across `n` workers (clamped to the detector count) with the
    /// deterministic control-side merge — output is bit-identical
    /// either way, so this is purely a throughput knob for wide
    /// ensembles on multi-core hosts.
    pub detector_workers: usize,
    /// Extraction worker threads. `0` (the default) mines every alarm
    /// inline on the control thread; `n > 0` moves the whole
    /// extraction stage (retention horizon, encoding, mining) onto a
    /// dedicated worker so an alarmed window no longer stalls merge,
    /// detection and watermark progress for the mining time. Output is
    /// bit-identical either way: one FIFO worker preserves window
    /// order exactly. Values above 1 are clamped to 1 — window-order
    /// determinism requires a single sequencer; the field is sized for
    /// a future re-sequencing fan-out.
    pub extraction_workers: usize,
    /// Pin each shard worker to a core (`shard % available cores`).
    /// Linux only, best effort: a mask the kernel rejects is ignored
    /// (see [`crate::affinity`]). Off by default — pinning steadies
    /// multicore throughput but penalizes oversubscribed hosts, so the
    /// scaling bench opts in explicitly.
    pub pin_shards: bool,
    /// Extraction parameters applied on every alarm.
    pub extractor: ExtractorConfig,
    /// Closed windows retained for extraction (candidate horizon).
    ///
    /// Candidate selection matches the batch store's overlap query
    /// only for flows still resident: size this so
    /// `retain_windows * interval_ms` exceeds the longest flow
    /// duration on the wire, or flows that started before the horizon
    /// (but still overlap the alarmed window) are missing from the
    /// mined candidates.
    pub retain_windows: usize,
    /// Telemetry: whether the timing layer records, and how often a
    /// [`MetricsReport`] is emitted. Counters (everything surfaced in
    /// [`StreamStats`]) are live regardless, so disabling telemetry
    /// never changes the run's statistics or reports.
    pub metrics: MetricsConfig,
    /// What ingest does when a shard's bounded queue stays full; see
    /// [`OverloadPolicy`]. Backpressure (lossless) by default.
    pub overload: OverloadPolicy,
    /// Deterministic fault-injection schedule (`fault-inject` feature;
    /// a zero-sized no-op otherwise). Empty by default: inject nothing.
    pub faults: FaultPlan,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            shards: 2,
            queue_depth: 1_024,
            ingest_batch: 64,
            lateness_ms: 30_000,
            watermark_every: 256,
            span: None,
            report_queue: 1_024,
            detectors: DetectorRegistry::kl(anomex_detect::kl::KlConfig::default()),
            detector_workers: 0,
            extraction_workers: 0,
            pin_shards: false,
            extractor: ExtractorConfig::default(),
            retain_windows: 2,
            metrics: MetricsConfig::default(),
            overload: OverloadPolicy::Backpressure,
            faults: FaultPlan::new(),
        }
    }
}

/// Ingest behavior when a shard worker's bounded queue stays full —
/// the graceful-degradation knob for overload.
///
/// Backpressure is lossless and the right default for replay and
/// archival workloads. Live collectors that must keep absorbing the
/// wire pick [`Shed`](OverloadPolicy::Shed): a flush that cannot hand
/// its batch over within the bound drops the remaining records and
/// counts them — globally on `degraded.shed_records`, per shard on
/// `degraded.shed_records.<shard>`, and in
/// [`PipelineHealth::per_shard_shed`] — so overload is visible and
/// exactly accounted, never silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Block the pushing thread until the shard drains (lossless).
    #[default]
    Backpressure,
    /// Retry a full queue up to `max_queue_delay` per flush, then shed
    /// the records still unsent.
    Shed {
        /// Longest time one flush may spend retrying a full shard
        /// queue before shedding the rest of its batch.
        max_queue_delay: Duration,
    },
}

/// Degradation counters for one pipeline run — the supervision
/// layer's read-back view, carried in [`StreamStats::health`]. All
/// zeros ([`healthy`](PipelineHealth::healthy)) on a clean run.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PipelineHealth {
    /// Worker panics caught by any supervisor (`fault.worker_panics`).
    pub worker_panics: u64,
    /// Shard workers that died; their traffic after death was lost and
    /// the run ended with a terminal [`FaultNotice`]
    /// (`fault.shard_deaths`).
    pub shard_deaths: u64,
    /// Detector-pool seats rebuilt after a panic, plus inline bank
    /// slots rebuilt (`degraded.detect.restarts`).
    pub detector_restarts: u64,
    /// Detector pools that fell back to the inline bank
    /// (`degraded.detect.failovers`).
    pub detector_failovers: u64,
    /// Extraction workers rebuilt after a panic
    /// (`degraded.extract.restarts`).
    pub extraction_restarts: u64,
    /// Extraction pools that fell back to the inline extractor
    /// (`degraded.extract.failovers`).
    pub extraction_failovers: u64,
    /// Windows whose extraction was skipped (reported as in-band
    /// [`FaultNotice`]s) after repeated panics
    /// (`degraded.quarantined_windows`).
    pub quarantined_windows: u64,
    /// Records shed under [`OverloadPolicy::Shed`], total
    /// (`degraded.shed_records`).
    pub shed_records: u64,
    /// Exact shed accounting per shard; only shards that actually shed
    /// appear, so shard count alone never changes the value.
    pub per_shard_shed: Vec<ShardShed>,
    /// Control threads that died; statistics were recovered from the
    /// metrics registry (`fault.control_panics`).
    pub control_panics: u64,
}

impl PipelineHealth {
    /// True when nothing degraded: no caught panic, no shed record, no
    /// quarantined window, no dead thread.
    pub fn healthy(&self) -> bool {
        *self == PipelineHealth::default()
    }
}

/// One shard's shed-record count (see [`PipelineHealth::per_shard_shed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardShed {
    /// Shard index.
    pub shard: usize,
    /// Records this shard's flushes shed.
    pub records: u64,
}

impl StreamConfig {
    /// The tumbling-window grid the configuration implies.
    ///
    /// # Panics
    /// Panics when the detector registry is empty or its entries
    /// disagree on the detection interval.
    pub fn window_config(&self) -> WindowConfig {
        WindowConfig { width_ms: self.detectors.interval_ms(), span: self.span }
    }
}

/// Counters accumulated over one pipeline run.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StreamStats {
    /// Records accepted by [`IngestHandle::push`] across every handle
    /// (including ones later dropped as late).
    pub ingested: u64,
    /// NetFlow packets that failed to decode.
    pub decode_errors: u64,
    /// Records that could not be handed to a shard worker because its
    /// channel disconnected mid-run (a worker died): lost traffic that
    /// previously vanished silently.
    pub send_failures: u64,
    /// Records dropped behind the watermark.
    pub late_dropped: u64,
    /// Records outside the configured span.
    pub out_of_span: u64,
    /// Windows closed and fed to the detector bank.
    pub windows: u64,
    /// Merged alarms the detector bank raised (flagged windows; a
    /// window several detectors flag counts once).
    pub alarms: u64,
    /// Per-detector windows/alarms, in bank order — the pre-merge
    /// attribution.
    pub per_detector: Vec<DetectorCounters>,
    /// Reports produced by the extractor (delivered or dropped).
    pub reports: u64,
    /// Reports dropped because the bounded subscriber channel was full.
    pub reports_dropped: u64,
    /// Supervision read-back: caught panics, restarts, failovers, shed
    /// and quarantined work. All zeros on a clean run.
    pub health: PipelineHealth,
}

pub(crate) enum ShardMsg {
    Record(FlowRecord),
    Watermark(u64),
    Flush,
}

enum CtrlMsg {
    Report {
        shard: usize,
        frontier: u64,
        windows: Vec<WindowShard>,
    },
    Done {
        late_dropped: u64,
        out_of_span: u64,
    },
    /// The shard's worker died (its panic was caught by the spawn
    /// harness): retire it from the merge frontier so the stream keeps
    /// emitting, and end the run with a terminal fault notice.
    Fault {
        shard: usize,
    },
}

/// Launch the pipeline; returns the ingest handle and the subscriber
/// end of the report channel. Clone or [`IngestHandle::split`] the
/// handle for multi-socket intake.
///
/// # Panics
/// Panics if `shards` is zero, the detector registry is empty or
/// mixed-interval, or the detection interval is zero.
pub fn launch(config: StreamConfig) -> (IngestHandle, Receiver<StreamReport>) {
    assert!(config.shards > 0, "shard count must be positive");
    assert!(!config.detectors.is_empty(), "detector registry must hold at least one detector");
    let window_config = config.window_config();

    let metrics = Arc::new(PipelineMetrics::new(&config.metrics));
    let faults = ActiveFaults::new(&config.faults, metrics.fault_injected.clone());
    let (ctrl_tx, ctrl_rx) = bounded::<CtrlMsg>(config.queue_depth);
    let (report_tx, report_rx) = bounded::<StreamReport>(config.report_queue.max(1));
    let (metrics_tx, metrics_rx) = bounded::<MetricsReport>(config.metrics.report_queue.max(1));

    let mut senders = Vec::with_capacity(config.shards);
    let mut workers = Vec::with_capacity(config.shards);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for shard in 0..config.shards {
        let (tx, rx) = bounded::<ShardMsg>(config.queue_depth);
        senders.push(tx);
        let ctrl = ctrl_tx.clone();
        let worker_metrics = Arc::clone(&metrics);
        let worker_faults = Arc::clone(&faults);
        let pin = config.pin_shards;
        workers.push(
            std::thread::Builder::new()
                .name(format!("anomex-shard-{shard}"))
                .spawn(move || {
                    if pin {
                        // Best effort: keep this shard's window state
                        // and ring slots cache-resident on one core.
                        let _ = crate::affinity::pin_current_thread(shard % cores);
                    }
                    // The supervision harness: a panicking shard (a bug
                    // in windowing, or an injected ShardPanic) must not
                    // hang the pipeline. Its windowed state is
                    // unrecoverable — per-shard windows cannot be
                    // rebuilt from nothing — so the worker is not
                    // restarted; the control loop retires the shard
                    // from the merge frontier and ends the run with a
                    // terminal fault notice.
                    let dead = catch_unwind(AssertUnwindSafe(|| {
                        shard_worker(
                            shard,
                            &rx,
                            &ctrl,
                            window_config,
                            &worker_metrics,
                            &worker_faults,
                        )
                    }))
                    .is_err();
                    if dead {
                        worker_metrics.worker_panics.inc();
                        worker_metrics.shard_deaths.inc();
                        let _ = ctrl.send(CtrlMsg::Fault { shard });
                    }
                })
                .expect("spawn shard worker"),
        );
    }
    drop(ctrl_tx);
    if let Some(cap) = senders[0].capacity() {
        metrics.channel_capacity.set(cap as u64);
    }

    let (shards, lateness_ms, watermark_every, ingest_batch, overload) = (
        config.shards,
        config.lateness_ms,
        config.watermark_every,
        config.ingest_batch,
        config.overload,
    );
    let control_metrics = Arc::clone(&metrics);
    let control_faults = Arc::clone(&faults);
    let control = std::thread::Builder::new()
        .name("anomex-stream-control".into())
        .spawn(move || {
            control_loop(
                config,
                window_config,
                ctrl_rx,
                report_tx,
                control_metrics,
                metrics_tx,
                control_faults,
            )
        })
        .expect("spawn control thread");

    let core = Arc::new(PipelineCore::new(
        senders,
        lateness_ms,
        PipelineJoin { workers, control },
        metrics,
        metrics_rx,
        overload,
        faults,
    ));
    let handle = IngestHandle::launch_first(core, shards, ingest_batch, watermark_every);
    (handle, report_rx)
}

/// Messages a shard worker drains per `recv_many` call. Pairs with the
/// ingest side's `send_many` batches so both ends of the ring amortize
/// their synchronization on the ~1M records/sec path.
const SHARD_RECV_BATCH: usize = 256;

/// Windows the control thread may dispatch to the detector pool ahead
/// of collecting verdicts (per worker). Windows are rare relative to
/// records, so a small bound suffices to keep every worker busy across
/// a ready run while capping the buffered `IntervalStat` clones.
const DETECT_POOL_QUEUE: usize = 64;

/// Shard reports the control thread coalesces into one bulk
/// stage/drain pass before merging. Bounds how long a sustained report
/// firehose can postpone window emission.
const CTRL_COALESCE: usize = 128;

/// Windows the control thread may queue to the extraction worker ahead
/// of it (window snapshots are Arc-segment clones, so the buffered
/// cost per queued window is a few pointers plus the alarm list).
const EXTRACT_POOL_QUEUE: usize = 64;

/// One ingest shard: windows its records, closes them on watermarks.
/// Runs under the spawn harness's `catch_unwind` — a panic here is
/// caught, counted, and reported as a [`CtrlMsg::Fault`].
fn shard_worker(
    shard: usize,
    rx: &Receiver<ShardMsg>,
    ctrl: &Sender<CtrlMsg>,
    config: WindowConfig,
    metrics: &PipelineMetrics,
    faults: &ActiveFaults,
) {
    let mut windows = ShardWindows::new(shard, config);
    let mut batch: Vec<ShardMsg> = Vec::with_capacity(SHARD_RECV_BATCH);
    'recv: while rx.recv_many(&mut batch, SHARD_RECV_BATCH) > 0 {
        if faults.fire(FaultSite::ShardPanic(shard)) {
            panic!("fault-inject: shard worker panic");
        }
        if metrics.timing() {
            metrics.recv_batch.record(batch.len() as u64);
            metrics.shard_queue_depth.record(rx.len() as u64);
        }
        // Times the whole drained batch: window pushes, watermark
        // closes and control sends — a stall on the control channel is
        // downstream backpressure and deliberately shows up here.
        stage_timer!(metrics.shard_apply);
        for msg in batch.drain(..) {
            match msg {
                ShardMsg::Record(record) => {
                    windows.push(record);
                }
                ShardMsg::Watermark(watermark_ms) => {
                    let frontier_before = windows.frontier();
                    let closed = windows.close_up_to(watermark_ms);
                    if closed.is_empty() && windows.frontier() == frontier_before {
                        // Stale watermark (multi-handle intake repeats
                        // them): nothing closed, frontier unmoved — the
                        // manager needs no report.
                        continue;
                    }
                    let report =
                        CtrlMsg::Report { shard, frontier: windows.frontier(), windows: closed };
                    if ctrl.send(report).is_err() {
                        return; // control thread gone; nothing left to do
                    }
                }
                ShardMsg::Flush => break 'recv,
            }
        }
    }
    // Flush (or every ingest handle dropped): close everything and seal.
    let closed = windows.flush();
    let _ = ctrl.send(CtrlMsg::Report { shard, frontier: windows.frontier(), windows: closed });
    let _ = ctrl.send(CtrlMsg::Done {
        late_dropped: windows.late_dropped(),
        out_of_span: windows.out_of_span(),
    });
}

/// Snapshot the registry and `try_send` it on the metrics channel —
/// drop-on-full, like the report channel: telemetry never stalls the
/// pipeline.
fn emit_metrics(
    metrics: &PipelineMetrics,
    metrics_tx: &Sender<MetricsReport>,
    report_tx: &Sender<StreamReport>,
    seq: &mut u64,
) {
    if metrics.timing() {
        metrics.report_queue_depth.set(report_tx.len() as u64);
    }
    let report = MetricsReport {
        seq: *seq,
        windows: metrics.merge_windows.get(),
        snapshot: metrics.snapshot(),
    };
    *seq += 1;
    match metrics_tx.try_send(report) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => metrics.metrics_dropped.inc(),
        Err(TrySendError::Disconnected(_)) => {}
    }
}

/// The detection stage as the control loop drives it: the sequential
/// bank inline on the control thread, or the worker pool behind the
/// same deterministic control-side merge ([`StreamConfig::detector_workers`]).
#[allow(clippy::large_enum_variant)] // one instance per pipeline, never collected
enum BankDriver {
    Inline(DetectorBank),
    Pool(DetectorPool),
}

impl BankDriver {
    fn counters(&self) -> Vec<DetectorCounters> {
        match self {
            BankDriver::Inline(bank) => bank.counters(),
            BankDriver::Pool(pool) => pool.counters(),
        }
    }
}

/// The extraction stage as the control loop drives it: the continuous
/// extractor inline on the control thread (supervised per window, with
/// the rebuild spec for panic recovery), or the dedicated worker
/// behind the same in-order emission path
/// ([`StreamConfig::extraction_workers`]).
enum ExtractDriver {
    Inline { extractor: ContinuousExtractor, spec: RebuildSpec, supervision: Supervision },
    Pool(ExtractionPool),
}

/// Shared subscriber-emission path for both extraction drivers: count
/// the report, stamp the drop gap *at send time*, and never block on
/// the subscriber.
fn emit_report(
    mut report: StreamReport,
    metrics: &PipelineMetrics,
    report_tx: &Sender<StreamReport>,
) {
    metrics.reports_emitted.inc();
    report.set_dropped_before(metrics.reports_dropped.get());
    // Never block detection on the subscriber: a full queue drops the
    // report and counts it; a dropped subscriber just discards.
    match report_tx.try_send(report) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => metrics.reports_dropped.inc(),
        Err(TrySendError::Disconnected(_)) => {}
    }
}

/// The single consumer of shard reports: merge, detect, extract, emit.
///
/// The run counters (`windows`, `alarms`, `reports`, drops) live on the
/// metrics registry; the returned [`StreamStats`] is a read-back view
/// over them, so the stats stay byte-identical whether or not the
/// timing layer records.
fn control_loop(
    config: StreamConfig,
    window_config: WindowConfig,
    ctrl_rx: Receiver<CtrlMsg>,
    report_tx: Sender<StreamReport>,
    metrics: Arc<PipelineMetrics>,
    metrics_tx: Sender<MetricsReport>,
    faults: Arc<ActiveFaults>,
) -> StreamStats {
    let detect_supervision = Supervision {
        faults: Arc::clone(&faults),
        worker_panics: metrics.worker_panics.clone(),
        restarts: metrics.detect_restarts.clone(),
        failovers: metrics.detect_failovers.clone(),
        quarantined: metrics.quarantined_windows.clone(),
        max_restarts: MAX_POOL_RESTARTS,
    };
    let extract_supervision = Supervision {
        faults: Arc::clone(&faults),
        worker_panics: metrics.worker_panics.clone(),
        restarts: metrics.extract_restarts.clone(),
        failovers: metrics.extract_failovers.clone(),
        quarantined: metrics.quarantined_windows.clone(),
        max_restarts: MAX_POOL_RESTARTS,
    };
    let mut manager = WindowManager::new(config.shards, window_config);
    let mut bank = config.detectors.build_bank();
    bank.instrument(|name| metrics.detector_instruments(name));
    bank.supervise(detect_supervision.clone());
    let mut driver = if config.detector_workers > 0 {
        BankDriver::Pool(bank.into_pool_supervised(
            config.detector_workers,
            DETECT_POOL_QUEUE,
            detect_supervision,
        ))
    } else {
        BankDriver::Inline(bank)
    };
    let mut extractor = ContinuousExtractor::new(config.extractor, config.retain_windows);
    extractor.instrument(metrics.extract_encode.clone(), metrics.extract_mine.clone());
    extractor.instrument_dict(metrics.dict_hits.clone(), metrics.dict_misses.clone());
    let mut extract = if config.extraction_workers > 0 {
        ExtractDriver::Pool(extractor.into_pool_supervised(
            EXTRACT_POOL_QUEUE,
            metrics.extract_stall.clone(),
            extract_supervision,
        ))
    } else {
        let spec = extractor.rebuild_spec();
        ExtractDriver::Inline { extractor, spec, supervision: extract_supervision }
    };
    let mut stats = StreamStats::default();
    let mut metrics_seq = 0u64;
    let report_every = config.metrics.report_every_windows;

    let process = |closed: Vec<crate::window::ClosedWindow>,
                   driver: &mut BankDriver,
                   extract: &mut ExtractDriver,
                   metrics_seq: &mut u64| {
        if let BankDriver::Pool(pool) = driver {
            // Broadcast the whole ready run before collecting the
            // first verdict: the workers chew on windows w+1.. while
            // the control thread merges and mines window w.
            for window in &closed {
                pool.dispatch(&window.stat);
            }
            if metrics.timing() {
                metrics.detect_pool_queue_depth.set(pool.queue_depth() as u64);
            }
        }
        for window in closed {
            metrics.merge_windows.inc();
            let alarms = match driver {
                BankDriver::Inline(bank) => bank.push_window(&window),
                BankDriver::Pool(pool) => pool.collect(),
            };
            metrics.merged_alarms.add(alarms.len() as u64);
            match extract {
                ExtractDriver::Inline { extractor, spec, supervision } => {
                    for report in supervised_push(extractor, spec, supervision, window, &alarms) {
                        emit_report(report, &metrics, &report_tx);
                    }
                }
                ExtractDriver::Pool(pool) => {
                    // Hand the window off (Arc-segment snapshot: a few
                    // pointer bumps) and relay whatever the worker has
                    // already finished. The worker is a single FIFO
                    // thread, so relayed reports arrive in window order.
                    pool.dispatch(window, alarms);
                    if metrics.timing() {
                        metrics.extract_queue_depth.set(pool.queue_depth() as u64);
                    }
                    for report in pool.try_collect() {
                        emit_report(report, &metrics, &report_tx);
                    }
                }
            }
            if report_every > 0 && metrics.merge_windows.get().is_multiple_of(report_every) {
                emit_metrics(&metrics, &metrics_tx, &report_tx, metrics_seq);
            }
        }
    };

    let mut done = 0usize;
    let mut shard_faults: Vec<usize> = Vec::new();
    while done < config.shards {
        let Ok(first) = ctrl_rx.recv() else {
            break; // every worker gone (panic path): emit what we can
        };
        // Coalesce: greedily drain whatever else the shards have
        // queued, stage every report, and run ONE bulk merge — the
        // per-report frontier scans and emission walks amortize over
        // the batch, and the detector stage receives one long run of
        // ready windows instead of many short ones (which is what the
        // pool's dispatch-ahead feeds on). Bounded so a firehose of
        // reports cannot postpone emission indefinitely.
        let mut staged = 0usize;
        let mut msg = Some(first);
        loop {
            match msg.take() {
                Some(CtrlMsg::Report { shard, frontier, windows }) => {
                    manager.stage(shard, frontier, windows);
                    staged += 1;
                }
                Some(CtrlMsg::Done { late_dropped, out_of_span }) => {
                    metrics.late_dropped.add(late_dropped);
                    metrics.out_of_span.add(out_of_span);
                    done += 1;
                }
                Some(CtrlMsg::Fault { shard }) => {
                    // The dead shard sends no further frontier: retire
                    // it so the min-frontier merge keeps emitting the
                    // survivors' windows instead of stalling forever.
                    manager.retire_shard(shard);
                    shard_faults.push(shard);
                    done += 1;
                    staged += 1; // the frontier moved: run the merge
                }
                None => {}
            }
            if staged >= CTRL_COALESCE {
                break;
            }
            match ctrl_rx.try_recv() {
                Ok(next) => msg = Some(next),
                Err(_) => break, // empty or disconnected: merge what we have
            }
        }
        if staged > 0 {
            if metrics.timing() {
                metrics.merge_batch.record(staged as u64);
            }
            let closed = stage_timer!(metrics.merge_offer, manager.drain());
            process(closed, &mut driver, &mut extract, &mut metrics_seq);
        }
    }
    let closed = stage_timer!(metrics.merge_offer, manager.finish());
    process(closed, &mut driver, &mut extract, &mut metrics_seq);
    // Stream end: wait for the extraction worker to finish every
    // dispatched window and relay the remaining reports, BEFORE the
    // stats read-back and the final metrics snapshot — the last
    // subscriber report always precedes Flush, and the final snapshot
    // sees the complete run.
    if let ExtractDriver::Pool(pool) = &mut extract {
        for report in pool.drain() {
            emit_report(report, &metrics, &report_tx);
        }
        if metrics.timing() {
            metrics.extract_queue_depth.set(0);
        }
    }
    // A dead shard is a gap no downstream stage can see on its own:
    // close the stream with a terminal fault notice (after the last
    // extraction report, so subscribers read it as "the run ended
    // degraded" rather than racing it with window output).
    if !shard_faults.is_empty() {
        shard_faults.sort_unstable();
        let notice = FaultNotice {
            kind: FaultKind::ShardDead,
            window: None,
            detail: format!(
                "shard worker(s) {shard_faults:?} died; their windowed traffic from the point \
                 of death on is missing from every later window"
            ),
            terminal: true,
            dropped_before: 0,
        };
        emit_report(StreamReport::Fault(notice), &metrics, &report_tx);
    }
    stats.late_dropped = metrics.late_dropped.get();
    stats.out_of_span = metrics.out_of_span.get();
    stats.windows = metrics.merge_windows.get();
    stats.alarms = metrics.merged_alarms.get();
    stats.reports = metrics.reports_emitted.get();
    stats.reports_dropped = metrics.reports_dropped.get();
    stats.per_detector = driver.counters();
    stats.health = PipelineHealth {
        worker_panics: metrics.worker_panics.get(),
        shard_deaths: metrics.shard_deaths.get(),
        detector_restarts: metrics.detect_restarts.get(),
        detector_failovers: metrics.detect_failovers.get(),
        extraction_restarts: metrics.extract_restarts.get(),
        extraction_failovers: metrics.extract_failovers.get(),
        quarantined_windows: metrics.quarantined_windows.get(),
        shed_records: metrics.shed_records.get(),
        per_shard_shed: (0..config.shards)
            .filter_map(|s| {
                let records = metrics.shard_shed(s).get();
                (records > 0).then_some(ShardShed { shard: s, records })
            })
            .collect(),
        control_panics: metrics.control_panics.get(),
    };
    // One final report so a subscriber always sees the complete run,
    // whatever the cadence. Ingest totals are included: every handle
    // folds them at close, and the stream-end Flush that gets us here is
    // only sent (or the channels only disconnect) after the last close.
    emit_metrics(&metrics, &metrics_tx, &report_tx, &mut metrics_seq);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_detect::kl::KlConfig;
    use anomex_flow::v5;
    use std::net::Ipv4Addr;

    fn scan_config(shards: usize) -> StreamConfig {
        StreamConfig {
            shards,
            queue_depth: 64,
            lateness_ms: 10_000,
            watermark_every: 50,
            span: Some(TimeRange::new(0, 8 * 60_000)),
            detectors: DetectorRegistry::kl(KlConfig {
                interval_ms: 60_000,
                ..KlConfig::default()
            }),
            retain_windows: 2,
            ..StreamConfig::default()
        }
    }

    /// Eight 1-minute windows of benign traffic; a port scan in the last.
    fn trace() -> Vec<FlowRecord> {
        let mut flows = Vec::new();
        for t in 0..8u64 {
            let base = t * 60_000;
            for i in 0..200u32 {
                flows.push(
                    FlowRecord::builder()
                        .time(base + (i as u64 * 91) % 60_000, base + (i as u64 * 91) % 60_000 + 50)
                        .src(Ipv4Addr::from(0x0A00_0000 + (i % 40)), 1_024 + (i % 500) as u16)
                        .dst(
                            Ipv4Addr::from(0xAC10_0000 + (i % 7)),
                            if i % 3 == 0 { 443 } else { 80 },
                        )
                        .volume(3, 1_800)
                        .build(),
                );
            }
            if t == 7 {
                for p in 1..=1_500u32 {
                    flows.push(
                        FlowRecord::builder()
                            .time(base + (p as u64 % 60_000), base + (p as u64 % 60_000) + 1)
                            .src("10.66.66.66".parse().unwrap(), 55_548)
                            .dst("172.16.0.99".parse().unwrap(), p as u16)
                            .volume(1, 44)
                            .build(),
                    );
                }
            }
        }
        flows
    }

    #[test]
    fn pipeline_detects_and_reports_the_scan() {
        let (mut ingest, reports) = launch(scan_config(2));
        ingest.push_batch(trace());
        let stats = ingest.finish();
        let received: Vec<StreamReport> = reports.iter().collect();

        assert_eq!(stats.ingested, 8 * 200 + 1_500);
        assert_eq!(stats.late_dropped, 0, "in-order feed must drop nothing");
        assert_eq!(stats.send_failures, 0, "healthy workers lose nothing");
        assert_eq!(stats.windows, 8, "bounded span closes every window");
        assert_eq!(stats.alarms, 1);
        assert_eq!(stats.reports, 1);
        assert_eq!(received.len(), 1);
        let report = &received[0];
        assert_eq!(report.alarm().unwrap().window.from_ms, 7 * 60_000);
        let extraction = report.extraction().unwrap();
        assert!(
            extraction.itemsets[0].items.iter().any(|i| i.to_string() == "srcIP=10.66.66.66"),
            "scanner missing from top itemset: {}",
            extraction.itemsets[0].pattern()
        );
    }

    #[test]
    fn kl_pca_ensemble_runs_end_to_end_with_attribution() {
        use anomex_detect::pca::PcaConfig;
        let kl = KlConfig { interval_ms: 60_000, ..KlConfig::default() };
        let pca = PcaConfig { interval_ms: 60_000, ..PcaConfig::default() };
        let config = StreamConfig {
            detectors: DetectorRegistry::from_specs(&[
                crate::detector::DetectorSpec::Kl(kl),
                crate::detector::DetectorSpec::Pca(pca, 12),
            ]),
            span: Some(TimeRange::new(0, 12 * 60_000)),
            ..scan_config(2)
        };
        // Twelve windows so sliding PCA has training room; scan in the
        // last one.
        let mut flows = Vec::new();
        for t in 0..12u64 {
            let base = t * 60_000;
            let n = 200 + (t % 3) as u32 * 11;
            for i in 0..n {
                flows.push(
                    FlowRecord::builder()
                        .time(base + (i as u64 * 91) % 60_000, base + (i as u64 * 91) % 60_000 + 50)
                        .src(
                            Ipv4Addr::from(0x0A00_0000 + ((i * 3 + t as u32) % 40)),
                            1_024 + (i % 500) as u16,
                        )
                        .dst(
                            Ipv4Addr::from(0xAC10_0000 + (i % 7)),
                            if i % 3 == 0 { 443 } else { 80 },
                        )
                        .volume(3, 1_800)
                        .build(),
                );
            }
            if t == 11 {
                for p in 1..=2_000u32 {
                    flows.push(
                        FlowRecord::builder()
                            .time(base + (p as u64 % 60_000), base + (p as u64 % 60_000) + 1)
                            .src("10.66.66.66".parse().unwrap(), 55_548)
                            .dst("172.16.0.99".parse().unwrap(), p as u16)
                            .volume(1, 44)
                            .build(),
                    );
                }
            }
        }
        let (mut ingest, reports) = launch(config);
        ingest.push_batch(flows);
        let stats = ingest.finish();
        let received: Vec<StreamReport> = reports.iter().collect();

        assert_eq!(stats.windows, 12);
        assert_eq!(stats.per_detector.len(), 2, "per-detector counters: {:?}", stats.per_detector);
        assert_eq!(stats.per_detector[0].name, "kl");
        assert_eq!(stats.per_detector[1].name, "entropy-pca");
        assert_eq!(stats.per_detector[0].windows, 12);
        assert_eq!(stats.per_detector[1].windows, 12);
        assert!(stats.per_detector[0].alarms >= 1, "KL missed the scan: {:?}", stats.per_detector);
        assert!(stats.per_detector[1].alarms >= 1, "PCA missed the scan: {:?}", stats.per_detector);

        let scan = received
            .iter()
            .find(|r| r.alarm().is_some_and(|a| a.window.from_ms == 11 * 60_000))
            .expect("scan window must be reported");
        assert_eq!(scan.sources().len(), 2, "both detectors attribute: {:?}", scan.alarm());
        assert_eq!(scan.alarm().unwrap().detector, "kl+entropy-pca");
        let extraction = scan.extraction().unwrap();
        assert!(
            extraction.itemsets[0].items.iter().any(|i| i.to_string() == "srcIP=10.66.66.66"),
            "scanner missing from merged extraction: {}",
            extraction.itemsets[0].pattern()
        );
        // Merged per window: reports never repeat a window per detector.
        let mut windows: Vec<u64> =
            received.iter().map(|r| r.alarm().unwrap().window.from_ms).collect();
        windows.dedup();
        assert_eq!(windows.len(), received.len(), "duplicate window reports: {windows:?}");
    }

    #[test]
    fn detector_pool_run_is_bit_identical_to_inline() {
        use anomex_detect::pca::PcaConfig;
        let run = |detector_workers: usize| {
            let kl = KlConfig { interval_ms: 60_000, ..KlConfig::default() };
            let pca = PcaConfig { interval_ms: 60_000, ..PcaConfig::default() };
            let config = StreamConfig {
                detectors: DetectorRegistry::from_specs(&[
                    crate::detector::DetectorSpec::Kl(kl),
                    crate::detector::DetectorSpec::Pca(pca, 12),
                ]),
                detector_workers,
                ..scan_config(2)
            };
            let (mut ingest, reports) = launch(config);
            ingest.push_batch(trace());
            let stats = ingest.finish();
            (stats, reports.iter().collect::<Vec<StreamReport>>())
        };
        let (inline_stats, inline_reports) = run(0);
        for workers in [1usize, 2] {
            let (pool_stats, pool_reports) = run(workers);
            assert_eq!(pool_stats, inline_stats, "{workers} workers changed the statistics");
            assert_eq!(pool_reports, inline_reports, "{workers} workers changed a report");
        }
    }

    #[test]
    fn extraction_pool_run_is_bit_identical_to_inline() {
        // The async extraction worker is pure scheduling: whatever the
        // worker count asks for (clamped to the single FIFO worker) and
        // whether or not the detector pool runs alongside it, stats and
        // reports must be byte-identical to the inline extractor.
        let run = |extraction_workers: usize, detector_workers: usize| {
            let config = StreamConfig { extraction_workers, detector_workers, ..scan_config(2) };
            let (mut ingest, reports) = launch(config);
            ingest.push_batch(trace());
            let stats = ingest.finish();
            (stats, reports.iter().collect::<Vec<StreamReport>>())
        };
        let (inline_stats, inline_reports) = run(0, 0);
        assert!(inline_stats.reports >= 1, "trace must produce a report: {inline_stats:?}");
        for (extraction_workers, detector_workers) in [(1usize, 0usize), (2, 0), (1, 2)] {
            let (pool_stats, pool_reports) = run(extraction_workers, detector_workers);
            assert_eq!(
                pool_stats, inline_stats,
                "extraction_workers={extraction_workers} changed the statistics"
            );
            assert_eq!(
                pool_reports, inline_reports,
                "extraction_workers={extraction_workers} changed a report"
            );
        }
    }

    #[test]
    fn pinned_shard_workers_change_nothing() {
        // Affinity is pure scheduling: stats and reports must be
        // byte-identical with pinning on and off (and on non-Linux
        // hosts, where pinning is a no-op, this still holds trivially).
        let run = |pin_shards: bool| {
            let config = StreamConfig { pin_shards, ..scan_config(2) };
            let (mut ingest, reports) = launch(config);
            ingest.push_batch(trace());
            let stats = ingest.finish();
            (stats, reports.iter().collect::<Vec<StreamReport>>())
        };
        let (unpinned_stats, unpinned_reports) = run(false);
        let (pinned_stats, pinned_reports) = run(true);
        assert_eq!(pinned_stats, unpinned_stats);
        assert_eq!(pinned_reports, unpinned_reports);
    }

    #[test]
    fn shard_counts_agree_on_stats_and_reports() {
        let mut baseline: Option<(StreamStats, Vec<StreamReport>)> = None;
        for shards in [1usize, 3] {
            let (mut ingest, reports) = launch(scan_config(shards));
            ingest.push_batch(trace());
            let mut stats = ingest.finish();
            let received: Vec<StreamReport> = reports.iter().collect();
            match &baseline {
                None => baseline = Some((stats, received)),
                Some((expected_stats, expected_reports)) => {
                    // Candidate *order* differs across shard counts;
                    // mined itemsets and supports must not.
                    assert_eq!(&received.len(), &expected_reports.len());
                    for (a, b) in received.iter().zip(expected_reports) {
                        let (a, b) = (a.as_alarm().unwrap(), b.as_alarm().unwrap());
                        assert_eq!(a.alarm.window, b.alarm.window);
                        assert_eq!(a.extraction.itemsets, b.extraction.itemsets);
                        assert_eq!(a.extraction.candidate_flows, b.extraction.candidate_flows);
                    }
                    stats.ingested = expected_stats.ingested; // identical by construction
                    assert_eq!(&stats, expected_stats);
                }
            }
        }
    }

    #[test]
    fn batch_sizes_agree_on_stats_and_reports() {
        // The flush-buffer size is pure mechanics: every batch size
        // must produce the identical run.
        let mut baseline: Option<(StreamStats, Vec<StreamReport>)> = None;
        for ingest_batch in [1usize, 7, 256] {
            let config = StreamConfig { ingest_batch, ..scan_config(2) };
            let (mut ingest, reports) = launch(config);
            ingest.push_batch(trace());
            let stats = ingest.finish();
            let received: Vec<StreamReport> = reports.iter().collect();
            match &baseline {
                None => baseline = Some((stats, received)),
                Some((expected_stats, expected_reports)) => {
                    assert_eq!(&stats, expected_stats, "batch {ingest_batch} diverged");
                    assert_eq!(received.len(), expected_reports.len());
                    for (a, b) in received.iter().zip(expected_reports) {
                        let (a, b) = (a.as_alarm().unwrap(), b.as_alarm().unwrap());
                        assert_eq!(a.alarm, b.alarm);
                        assert_eq!(a.extraction.itemsets, b.extraction.itemsets);
                    }
                }
            }
        }
    }

    #[test]
    fn split_handles_share_the_pipeline_and_the_watermark() {
        let (ingest, reports) = launch(scan_config(2));
        let mut handles = ingest.split(3);
        assert_eq!(handles[0].live_handles(), 3);
        let flows = trace();
        let total = flows.len() as u64;
        // Round-robin the trace across three concurrently-pushing
        // handles; the shared min-over-handles watermark keeps every
        // record inside the lateness bound.
        let mut parts: Vec<Vec<FlowRecord>> = vec![Vec::new(), Vec::new(), Vec::new()];
        for (i, flow) in flows.into_iter().enumerate() {
            parts[i % 3].push(flow);
        }
        let finisher = handles.pop().unwrap();
        let threads: Vec<_> = handles
            .into_iter()
            .zip(parts.drain(..2))
            .map(|(mut handle, part)| {
                std::thread::spawn(move || {
                    handle.push_batch(part);
                    // dropping the handle flushes + retires its slot
                })
            })
            .collect();
        let mut finisher = finisher;
        finisher.push_batch(parts.pop().unwrap());
        for t in threads {
            t.join().unwrap();
        }
        let stats = finisher.finish();
        let received: Vec<StreamReport> = reports.iter().collect();
        assert_eq!(stats.ingested, total);
        assert_eq!(stats.late_dropped, 0, "shared watermark must not strand any handle");
        assert_eq!(stats.send_failures, 0);
        assert_eq!(stats.windows, 8);
        assert_eq!(received.len(), 1);
        assert_eq!(received[0].alarm().unwrap().window.from_ms, 7 * 60_000);
    }

    #[test]
    fn v5_packets_feed_the_pipeline() {
        let flows = trace();
        let packets = v5::encode_all(&flows, v5::ExportBase::epoch(), 0).expect("encode v5 stream");
        let (mut ingest, reports) = launch(scan_config(2));
        for packet in &packets {
            let n = ingest.push_v5(packet).expect("decode own packets");
            assert!(n > 0);
        }
        let stats = ingest.finish();
        assert_eq!(stats.ingested, flows.len() as u64);
        assert_eq!(stats.decode_errors, 0);
        assert_eq!(reports.iter().count(), 1, "scan still found after codec round-trip");
    }

    #[test]
    fn garbage_packet_is_counted_not_fatal() {
        let (mut ingest, _reports) = launch(scan_config(1));
        assert!(ingest.push_v5(&[0u8; 7]).is_err());
        ingest.push_batch(trace());
        let stats = ingest.finish();
        assert_eq!(stats.decode_errors, 1);
        assert_eq!(stats.alarms, 1, "pipeline survives bad input");
    }

    #[test]
    fn dropped_subscriber_does_not_stall_finish() {
        let (mut ingest, reports) = launch(scan_config(2));
        drop(reports);
        ingest.push_batch(trace());
        let stats = ingest.finish();
        assert_eq!(stats.reports, 1, "report was produced even if nobody listened");
    }

    /// Benign background with scans in windows 5..8 — several alarmed
    /// windows, so several reports.
    fn multi_scan_trace() -> Vec<FlowRecord> {
        let mut flows = Vec::new();
        for t in 0..8u64 {
            let base = t * 60_000;
            for i in 0..200u32 {
                flows.push(
                    FlowRecord::builder()
                        .time(base + (i as u64 * 91) % 60_000, base + (i as u64 * 91) % 60_000 + 50)
                        .src(Ipv4Addr::from(0x0A00_0000 + (i % 40)), 1_024 + (i % 500) as u16)
                        .dst(
                            Ipv4Addr::from(0xAC10_0000 + (i % 7)),
                            if i % 3 == 0 { 443 } else { 80 },
                        )
                        .volume(3, 1_800)
                        .build(),
                );
            }
            if t >= 5 {
                for p in 1..=1_500u32 {
                    flows.push(
                        FlowRecord::builder()
                            .time(base + (p as u64 % 60_000), base + (p as u64 % 60_000) + 1)
                            .src("10.66.66.66".parse().unwrap(), 55_548)
                            .dst("172.16.0.99".parse().unwrap(), p as u16)
                            .volume(1, 44)
                            .build(),
                    );
                }
            }
        }
        flows
    }

    #[test]
    fn full_report_queue_drops_and_counts_instead_of_stalling() {
        // Scans in several windows produce several reports; a queue of 1
        // with nobody draining keeps exactly one and counts the rest as
        // dropped — finish() must not deadlock on the lazy subscriber.
        let config = StreamConfig { report_queue: 1, ..scan_config(2) };
        let (mut ingest, reports) = launch(config);
        ingest.push_batch(multi_scan_trace());
        let stats = ingest.finish();
        assert!(stats.reports >= 2, "need several reports to exercise dropping: {stats:?}");
        let received: Vec<StreamReport> = reports.iter().collect();
        assert_eq!(received.len(), 1, "queue of 1 keeps exactly one report");
        assert_eq!(stats.reports_dropped, stats.reports - 1, "{stats:?}");
        assert_eq!(received[0].dropped_before(), 0, "first report preceded every drop");
    }

    #[test]
    fn pooled_extraction_stamps_drop_gaps_at_send_time() {
        // Same lazy-subscriber scenario through the extraction pool:
        // reports surface control-side at collect time, and
        // `dropped_before` must reflect the subscriber-channel state at
        // that moment — not anything the worker thread could know. The
        // first report that lands still precedes every drop, and the
        // drop accounting matches the inline run exactly.
        let run = |extraction_workers: usize| {
            let config = StreamConfig { report_queue: 1, extraction_workers, ..scan_config(2) };
            let (mut ingest, reports) = launch(config);
            ingest.push_batch(multi_scan_trace());
            let stats = ingest.finish();
            (stats, reports.iter().collect::<Vec<StreamReport>>())
        };
        let (inline_stats, inline_received) = run(0);
        let (pool_stats, pool_received) = run(1);
        assert!(pool_stats.reports >= 2, "need several reports to exercise dropping");
        assert_eq!(pool_received.len(), 1, "queue of 1 keeps exactly one report");
        assert_eq!(pool_stats.reports_dropped, pool_stats.reports - 1, "{pool_stats:?}");
        assert_eq!(pool_received[0].dropped_before(), 0, "first report preceded every drop");
        assert_eq!(pool_stats, inline_stats, "pool changed the drop accounting");
        assert_eq!(pool_received, inline_received, "pool changed the surviving report");
    }

    #[test]
    fn open_ended_stream_emits_through_last_window() {
        let config = StreamConfig { span: None, ..scan_config(2) };
        let (mut ingest, reports) = launch(config);
        ingest.push_batch(trace());
        let stats = ingest.finish();
        assert_eq!(stats.windows, 8);
        assert_eq!(reports.iter().count(), 1);
    }

    #[test]
    fn dropping_every_handle_still_flushes_the_stream() {
        // No finish() at all: dropping the last handle disconnects the
        // shard channels, the workers seal, and queued reports remain
        // readable until the report channel disconnects.
        let (mut ingest, reports) = launch(scan_config(2));
        ingest.push_batch(trace());
        drop(ingest);
        let received: Vec<StreamReport> = reports.iter().collect();
        assert_eq!(received.len(), 1, "the scan report still lands");
        assert_eq!(received[0].alarm().unwrap().window.from_ms, 7 * 60_000);
    }

    #[test]
    fn metrics_reports_flow_and_the_final_one_agrees_with_stats() {
        let (mut ingest, reports) = launch(scan_config(2));
        let metrics = ingest.metrics_reports().expect("subscription available");
        assert!(ingest.metrics_reports().is_none(), "subscription is take-once");
        ingest.push_batch(trace());
        let stats = ingest.finish();
        let _ = reports.iter().count();
        // The control thread is joined, so the metrics channel is
        // disconnected and this drain terminates.
        let emissions: Vec<MetricsReport> = metrics.iter().collect();
        assert!(!emissions.is_empty(), "cadence of 1 window must emit");
        for pair in emissions.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "emission sequence must increase");
        }
        let last = emissions.last().unwrap();
        assert_eq!(last.windows, stats.windows);
        assert_eq!(last.records(), stats.ingested, "final report includes folded ingest totals");
        assert_eq!(last.send_failures(), stats.send_failures);
        assert_eq!(last.reports_dropped(), stats.reports_dropped);
        assert_eq!(last.snapshot.counter("merge.windows"), stats.windows);
        assert_eq!(last.snapshot.counter("detect.merged_alarms"), stats.alarms);
        assert_eq!(last.snapshot.counter("report.emitted"), stats.reports);
        assert_eq!(last.snapshot.counter("detect.kl.windows"), stats.per_detector[0].windows);
        assert_eq!(last.snapshot.counter("detect.kl.alarms"), stats.per_detector[0].alarms);
        // The timing layer recorded: per-stage histograms have samples
        // and the watermark gauges are present.
        for stage in [
            "shard.apply_ns",
            "merge.offer_ns",
            "merge.batch_reports",
            "detect.kl.push_ns",
            "extract.mine_ns",
        ] {
            let hist = last.snapshot.histogram(stage).unwrap_or_else(|| panic!("{stage} missing"));
            assert!(hist.count > 0, "{stage} never recorded");
        }
        assert!(last.watermark_lag_event_ms().is_some());
        assert!(last.report_queue_depth().is_some());
    }

    #[test]
    fn disabling_the_timing_layer_changes_no_stats_or_reports() {
        let run = |enabled: bool| {
            let config = StreamConfig {
                metrics: MetricsConfig { enabled, ..MetricsConfig::default() },
                ..scan_config(2)
            };
            let (mut ingest, reports) = launch(config);
            let metrics = ingest.metrics_reports().expect("subscription available");
            ingest.push_batch(trace());
            let stats = ingest.finish();
            let received: Vec<StreamReport> = reports.iter().collect();
            (stats, received, metrics.iter().last().expect("final metrics report"))
        };
        let (on_stats, on_reports, on_last) = run(true);
        let (off_stats, off_reports, off_last) = run(false);
        assert_eq!(on_stats, off_stats, "instrumentation must not change the run");
        assert_eq!(on_reports, off_reports);
        // Counters survive in both modes; the timing layer only when on.
        assert_eq!(off_last.records(), on_last.records());
        assert_eq!(off_last.snapshot.counter("merge.windows"), 8);
        assert!(on_last.snapshot.histogram("shard.apply_ns").is_some());
        assert_eq!(off_last.snapshot.get("shard.apply_ns"), None);
        assert_eq!(off_last.watermark_lag_event_ms(), None);
    }

    #[test]
    fn emit_metrics_counts_drops_on_a_full_queue() {
        // The telemetry channel's drop-on-full policy is accounted on
        // `report.metrics_dropped` — a full queue counts, a dropped
        // subscriber does not (discarding then is intentional).
        let metrics = Arc::new(PipelineMetrics::new(&MetricsConfig::default()));
        let (metrics_tx, metrics_rx) = bounded::<MetricsReport>(1);
        let (report_tx, _report_rx) = bounded::<StreamReport>(1);
        let mut seq = 0u64;
        emit_metrics(&metrics, &metrics_tx, &report_tx, &mut seq);
        emit_metrics(&metrics, &metrics_tx, &report_tx, &mut seq); // full → dropped
        drop(metrics_tx);
        let kept: Vec<MetricsReport> = metrics_rx.iter().collect();
        assert_eq!(kept.len(), 1, "queue of 1 keeps exactly one emission");
        assert_eq!(metrics.snapshot().counter("report.metrics_dropped"), 1);
        assert_eq!(seq, 2, "dropped emissions still advance the sequence");

        let (disconnected_tx, _) = bounded::<MetricsReport>(1);
        emit_metrics(&metrics, &disconnected_tx, &report_tx, &mut seq);
        assert_eq!(
            metrics.snapshot().counter("report.metrics_dropped"),
            1,
            "a missing subscriber is not a drop"
        );
    }

    #[test]
    fn watermark_gauges_expose_lag_and_skew_across_split_handles() {
        fn probe(start_ms: u64) -> FlowRecord {
            FlowRecord::builder()
                .time(start_ms, start_ms + 1)
                .src("10.0.0.1".parse().unwrap(), 4_000)
                .dst("172.16.0.1".parse().unwrap(), 80)
                .volume(1, 64)
                .build()
        }
        // Every push publishes the handle's frontier and broadcasts the
        // min-over-handles watermark, so the gauge values after the
        // third push are exact functions of the three frontiers.
        let config = StreamConfig {
            lateness_ms: 5_000,
            watermark_every: 1,
            ingest_batch: 1,
            ..scan_config(1)
        };
        let (ingest, _reports) = launch(config);
        let mut handles = ingest.split(3);
        handles[0].push(probe(10_000));
        handles[1].push(probe(20_000));
        handles[2].push(probe(60_000));
        // Frontiers are now (10_000, 20_000, 60_000): the watermark is
        // min − lateness, lag is max − watermark, skew is max − min.
        let snap = handles[0].metrics_snapshot();
        assert_eq!(snap.counter("watermark.broadcasts"), 3);
        assert_eq!(snap.gauge("watermark.broadcast_ms"), Some(5_000));
        assert_eq!(snap.gauge("watermark.lag_event_ms"), Some(55_000));
        assert_eq!(snap.gauge("watermark.frontier_skew_ms"), Some(50_000));
        drop(handles.drain(1..));
        let stats = handles.pop().unwrap().finish();
        assert_eq!(stats.ingested, 3);
        assert_eq!(stats.late_dropped, 0, "no record fell behind the shared watermark");
    }
}

//! # anomex-stream
//!
//! The continuous-operation layer over the batch crates: NetFlow
//! packets or [`FlowRecord`]s stream in, sharded workers window them by
//! event time, closed windows feed the detectors incrementally, and
//! every alarm is mined against the in-memory window shards the moment
//! it fires — turning the paper's post-hoc "query the archive after an
//! alarm" workflow into a live pipeline, the way operational systems
//! (SENATUS, Facebook's Fast Dimensional Analysis) couple detection and
//! root-cause mining online.
//!
//! - [`pipeline`] — [`launch`] the assembled pipeline: ingest handle in,
//!   [`StreamReport`] channel out, bounded queues (backpressure) between.
//! - [`ingest`] — the batched, multi-handle intake front-end: per-shard
//!   flush buffers over the lock-free channel (`send_many`/`recv_many`
//!   amortize synchronization), and [`IngestHandle::split`] for
//!   multi-socket deployments under one shared min-over-handles
//!   watermark.
//! - [`window`] — event-time tumbling windows, watermarks with bounded
//!   out-of-orderness, deterministic cross-shard merge.
//! - [`detector`] — the detector registry and the running ensemble
//!   bank: any number of `Detector` implementations per stream, alarms
//!   merged per window with per-detector attribution.
//! - [`report`] — continuous extraction over retained windows.
//! - [`fault`] — deterministic fault injection (`fault-inject`
//!   feature) and the supervision layer: every worker runs under
//!   `catch_unwind`, pools restart or fail over to the inline path,
//!   and degraded operation is reported, never silent.
//!
//! Fed the same records, the streaming pipeline raises the same alarms
//! and mines the same itemsets as the batch pipeline — even when
//! records arrive out of order within the configured lateness bound
//! (`tests/stream_equivalence.rs` at the workspace root proves it).
//!
//! ## Example
//!
//! ```
//! use anomex_stream::prelude::*;
//! use anomex_detect::kl::KlConfig;
//! use anomex_flow::prelude::*;
//!
//! let span = TimeRange::new(0, 8 * 60_000);
//! let config = StreamConfig {
//!     shards: 2,
//!     span: Some(span),
//!     detectors: DetectorRegistry::kl(KlConfig { interval_ms: 60_000, ..KlConfig::default() }),
//!     ..StreamConfig::default()
//! };
//! let (mut ingest, reports) = launch(config);
//! // Benign-ish traffic, then a small port scan in the final minute.
//! for t in 0..8u64 {
//!     for i in 0..120u32 {
//!         ingest.push(
//!             FlowRecord::builder()
//!                 .time(t * 60_000 + i as u64 * 400, t * 60_000 + i as u64 * 400 + 50)
//!                 .src(std::net::Ipv4Addr::from(0x0A000000 + (i % 30)), 1024 + (i % 200) as u16)
//!                 .dst(std::net::Ipv4Addr::from(0xAC100001 + (i % 5)), 80)
//!                 .volume(3, 1500)
//!                 .build(),
//!         );
//!     }
//! }
//! for p in 1..=900u32 {
//!     ingest.push(
//!         FlowRecord::builder()
//!             .time(7 * 60_000 + p as u64 % 60_000, 7 * 60_000 + p as u64 % 60_000 + 1)
//!             .src("10.66.66.66".parse().unwrap(), 55_548)
//!             .dst("172.16.0.99".parse().unwrap(), p as u16)
//!             .volume(1, 44)
//!             .build(),
//!     );
//! }
//! let stats = ingest.finish();
//! assert_eq!(stats.windows, 8);
//! let reports: Vec<StreamReport> = reports.iter().collect();
//! assert_eq!(reports.len(), 1, "the scan window alarms");
//! assert_eq!(reports[0].alarm().unwrap().window.from_ms, 7 * 60_000);
//! ```
//!
//! [`FlowRecord`]: anomex_flow::record::FlowRecord
//! [`launch`]: pipeline::launch
//! [`StreamReport`]: report::StreamReport

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod affinity;
pub mod detector;
pub mod fault;
pub mod ingest;
pub mod metrics;
pub mod pipeline;
pub mod report;
mod sync;
pub mod watermark;
pub mod window;

/// One-stop imports for downstream crates.
pub mod prelude {
    pub use crate::detector::{
        DetectorBank, DetectorCounters, DetectorPool, DetectorRegistry, DetectorSpec, EnsembleAlarm,
    };
    pub use crate::fault::{FaultPlan, FaultSite};
    pub use crate::ingest::IngestHandle;
    pub use crate::metrics::{MetricValue, MetricsConfig, MetricsReport, MetricsSnapshot, CATALOG};
    pub use crate::pipeline::{
        launch, OverloadPolicy, PipelineHealth, ShardShed, StreamConfig, StreamStats,
    };
    pub use crate::report::{
        AlarmReport, ContinuousExtractor, ExtractionPool, FaultKind, FaultNotice, StreamReport,
    };
    pub use crate::window::{
        ClosedWindow, ShardWindows, WindowConfig, WindowManager, WindowRecords, WindowShard,
    };
}

pub use prelude::*;

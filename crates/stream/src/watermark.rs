//! The lock-free watermark table: per-handle event-time frontiers and
//! the min-over-live-handles global frontier.
//!
//! Built on the [`crate::sync`] facade so the exact source below also
//! compiles against the `modelcheck` shims: every claimed memory-
//! ordering downgrade in this file is backed by a model-checked test
//! (`vendor/modelcheck/tests/watermark_model.rs`, run in tier-1) that
//! explores the interleavings exhaustively and fails on any access not
//! ordered by happens-before.

use crate::sync::{AtomicU64, Ordering};

/// Default capacity of a [`WatermarkTable`]: the number of
/// simultaneously live [`IngestHandle`]s `WatermarkTable::new`
/// provisions for. No longer a hard protocol cap — the mask is a
/// multi-word array sized at construction
/// ([`WatermarkTable::with_capacity`] accepts any handle count), so
/// this is just the default a pipeline gets without asking.
///
/// [`IngestHandle`]: crate::ingest::IngestHandle
pub const MAX_HANDLES: usize = 256;

/// Bits per mask word (the mask array is `u64`-word granular).
const WORD_BITS: usize = 64;

/// Lock-free registry of per-handle event-time frontiers.
///
/// Slot membership is a growable array of `u64` bitmask words (one
/// word per 64 slots, sized at construction); each live handle owns
/// one slot and publishes the maximum event time it has seen with a
/// monotonic `fetch_max`. The global ingest frontier is the minimum
/// over *live* slots — retired handles stop holding the watermark back
/// the moment their bit clears. Every operation is a handful of
/// atomics; nothing on the record path ever takes a lock here.
///
/// # Memory-ordering contract
///
/// The table leans on exactly two happens-before edges, both through
/// a slot's **owning `active` word** (each word independently carries
/// the full single-word protocol for its 64 slots; the multi-word scan
/// is just the per-word scan repeated, and needs no cross-word edge —
/// see the scan notes below):
///
/// 1. **release → re-acquire** (slot handoff): [`release`] zeroes the
///    mark, then clears the bit with a `Release` RMW on the owning
///    word; [`acquire`]'s claim CAS acquires that word, so the new
///    occupant — and any scanner whose `Acquire` load of the word
///    observes the new epoch — sees the zero, never the previous
///    occupant's stale high mark. (Each `active` word is only ever
///    modified by RMWs, so the release sequence headed by the clearing
///    `fetch_and` is never broken.)
/// 2. **acquire → scan** ([`min_frontier`]'s `Acquire` load of each
///    `active` word), the reader side of edge 1. The words are read at
///    different moments, but each word's contribution is individually
///    sound — a mark is only read under a mask that showed its slot
///    live — and "min over per-word-sound minima" can only err low
///    (conservative), exactly as a stale single-word mask could.
///
/// Everything else is deliberately `Relaxed`: mark publishes are
/// monotonic per slot (RMW `fetch_max`), the table holds no non-atomic
/// data a missing edge could corrupt, and a scanner that reads a
/// *stale-low* value merely stalls the watermark — the conservative
/// direction. The model suite checks the protocol invariants (slot
/// exclusivity, zero-before-release, seed-on-acquire, no frontier
/// overshoot) across every explored interleaving, and the negative
/// tests in `vendor/modelcheck/tests/negative_watermark.rs` show the
/// checker catching the stale-mark and lost-claim bugs the moment the
/// protocol is restructured; the nightly TSan/Miri lane covers the
/// pure ordering-strength class an SC-exploring checker cannot see.
///
/// [`release`]: WatermarkTable::release
/// [`acquire`]: WatermarkTable::acquire
/// [`min_frontier`]: WatermarkTable::min_frontier
#[derive(Debug)]
pub struct WatermarkTable {
    active: Box<[AtomicU64]>,
    marks: Box<[AtomicU64]>,
}

impl Default for WatermarkTable {
    fn default() -> WatermarkTable {
        WatermarkTable::new()
    }
}

impl WatermarkTable {
    /// An empty table with the default [`MAX_HANDLES`] capacity.
    pub fn new() -> WatermarkTable {
        WatermarkTable::with_capacity(MAX_HANDLES)
    }

    /// An empty table provisioned for `capacity` simultaneously live
    /// handles (rounded up to the next multiple of 64 — the mask-word
    /// granularity). The table never grows a live allocation — sizing
    /// happens here, once, so every operation stays lock-free and
    /// allocation-free.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> WatermarkTable {
        assert!(capacity > 0, "watermark table capacity must be positive");
        let words = capacity.div_ceil(WORD_BITS);
        WatermarkTable {
            active: (0..words).map(|_| AtomicU64::new(0)).collect(),
            marks: (0..words * WORD_BITS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of handle slots this table was provisioned for.
    pub fn capacity(&self) -> usize {
        self.marks.len()
    }

    /// Claim a free slot, seeded with `seed_ms` (a fresh handle inherits
    /// its parent's frontier so cloning never *regresses* the global
    /// minimum further than the parent already held it).
    ///
    /// # Panics
    /// Panics when every provisioned slot is live (see
    /// [`capacity`](WatermarkTable::capacity)).
    pub fn acquire(&self, seed_ms: u64) -> usize {
        loop {
            let mut every_word_full = true;
            for (w, word) in self.active.iter().enumerate() {
                let mask = word.load(Ordering::SeqCst);
                if mask == u64::MAX {
                    // This word has no free bit; the next one may.
                    continue;
                }
                every_word_full = false;
                let free = (!mask).trailing_zeros() as usize;
                // The claim CAS keeps SeqCst (policy: CAS loops are not
                // downgraded); its Acquire half is load-bearing — it
                // pairs with `release`'s clearing fetch_and on this
                // word so this thread sees the previous occupant's
                // zeroed mark before seeding.
                if word
                    .compare_exchange(mask, mask | (1 << free), Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    let slot = w * WORD_BITS + free;
                    // The slot was zeroed at release; between the claim
                    // and this publish a concurrent min scan reads 0,
                    // which is merely conservative (the watermark can
                    // stall, never overshoot). Relaxed: exclusivity
                    // came from the CAS above, and a scanner needs no
                    // edge to *this* store — missing it just reads that
                    // conservative 0.
                    self.marks[slot].fetch_max(seed_ms, Ordering::Relaxed);
                    return slot;
                }
                // Claim race on this word: rescan from the first word —
                // the loser may now find an earlier free bit.
                break;
            }
            assert!(!every_word_full, "too many live IngestHandles (capacity {})", self.capacity());
        }
    }

    /// Retire a slot. The mark is zeroed *before* the bit clears so no
    /// concurrent scan can ever read a stale high value from a slot
    /// about to be re-acquired.
    pub fn release(&self, slot: usize) {
        // Relaxed store + Release RMW: the store is sequenced before
        // the fetch_and, so the Release on the slot's owning `active`
        // word publishes it to every thread that later acquires that
        // word (edge 1 in the type docs). A scanner still holding the
        // *old* mask may read either the old mark (the slot was
        // legitimately live when that mask was read) or the zero
        // (conservative) — both safe.
        self.marks[slot].store(0, Ordering::Relaxed);
        self.active[slot / WORD_BITS].fetch_and(!(1u64 << (slot % WORD_BITS)), Ordering::Release);
    }

    /// Raise `slot`'s event-time mark (monotonic).
    pub fn publish(&self, slot: usize, max_event_ms: u64) {
        // Relaxed: per-slot monotonicity is the RMW's atomicity, not an
        // ordering property, and a scanner that misses this publish
        // reads an older (lower) mark — a stalled watermark, never an
        // overshoot. The publishing handle itself re-reads the mark in
        // program order (coherence covers it).
        self.marks[slot].fetch_max(max_event_ms, Ordering::Relaxed);
    }

    /// The global ingest frontier: minimum mark over live slots (0 when
    /// none are live — maximally conservative).
    pub fn min_frontier(&self) -> u64 {
        let mut min = u64::MAX;
        for (w, word) in self.active.iter().enumerate() {
            // Acquire pairs with `release`'s clearing fetch_and (via
            // the unbroken RMW release sequence on this word): if this
            // mask shows a slot's post-recycle epoch, the zero store
            // that preceded the recycle is visible, so the scan can
            // never attribute the *previous* occupant's high mark to
            // the new one. The words are loaded one at a time — each
            // word's contribution is sound on its own, and a handle
            // that moves between scan moments only ever lowers the
            // result (conservative).
            let mut mask = word.load(Ordering::Acquire);
            while mask != 0 {
                let slot = w * WORD_BITS + mask.trailing_zeros() as usize;
                // Relaxed: any value this load can return was held by
                // the slot while the mask above showed it live, i.e. a
                // frontier some live handle legitimately published (or
                // the conservative 0 between claim and seed).
                min = min.min(self.marks[slot].load(Ordering::Relaxed));
                mask &= mask - 1;
            }
        }
        if min == u64::MAX {
            0
        } else {
            min
        }
    }

    /// The freshest published frontier: maximum mark over live slots
    /// (0 when none are live). Telemetry companion to
    /// [`min_frontier`](WatermarkTable::min_frontier) — the spread
    /// between the two is the per-handle frontier skew, and
    /// `max - watermark` is the event-time lag a broadcast watermark
    /// trails the freshest event by.
    pub fn max_frontier(&self) -> u64 {
        let mut max = 0;
        for (w, word) in self.active.iter().enumerate() {
            // Same pairing as `min_frontier`: Acquire on each mask word
            // keeps a recycled slot's pre-release zero store visible,
            // so the scan reads either a legitimately published live
            // mark or the conservative 0 between claim and seed —
            // never the previous occupant's stale high mark.
            let mut mask = word.load(Ordering::Acquire);
            while mask != 0 {
                let slot = w * WORD_BITS + mask.trailing_zeros() as usize;
                // Relaxed: see `min_frontier` — any readable value was
                // a mark some live handle published (or the seed-gap
                // 0), and a stale low read only understates the
                // maximum, which a lag gauge is allowed to do.
                max = max.max(self.marks[slot].load(Ordering::Relaxed));
                mask &= mask - 1;
            }
        }
        max
    }

    /// Number of live slots.
    pub fn live(&self) -> u32 {
        // Relaxed: an advisory snapshot — callers use it for "anyone
        // else still live?" courtesy decisions (e.g. whether to
        // broadcast one final watermark) where a stale answer costs at
        // most one redundant or deferred broadcast.
        self.active.iter().map(|word| word.load(Ordering::Relaxed).count_ones()).sum()
    }
}

// The std-threaded tests don't make sense under the modelcheck shims
// (those require the controlled scheduler); the model suite in
// tests/suites/watermark.rs covers the same protocol exhaustively.
#[cfg(all(test, not(anomex_model)))]
mod tests {
    use std::sync::Arc;

    use proptest::prelude::ProptestConfig;

    use super::*;

    #[test]
    fn watermark_table_tracks_min_over_live_slots() {
        let table = WatermarkTable::new();
        let a = table.acquire(0);
        let b = table.acquire(0);
        table.publish(a, 500);
        table.publish(b, 300);
        assert_eq!(table.min_frontier(), 300, "slowest live handle wins");
        table.publish(b, 900);
        assert_eq!(table.min_frontier(), 500);
        table.release(a);
        assert_eq!(table.min_frontier(), 900, "retired handle stops holding the min back");
        table.release(b);
        assert_eq!(table.min_frontier(), 0, "no live handles: conservative zero");
    }

    #[test]
    fn max_frontier_tracks_the_freshest_live_handle() {
        let table = WatermarkTable::new();
        assert_eq!(table.max_frontier(), 0, "no live handles: zero");
        let a = table.acquire(0);
        let b = table.acquire(0);
        table.publish(a, 500);
        table.publish(b, 300);
        assert_eq!(table.max_frontier(), 500, "freshest live handle wins");
        assert_eq!(table.max_frontier() - table.min_frontier(), 200, "skew is the spread");
        table.release(a);
        assert_eq!(table.max_frontier(), 300, "retired handle stops contributing");
        table.release(b);
        assert_eq!(table.max_frontier(), 0);
    }

    #[test]
    fn watermark_publish_is_monotonic_and_slots_recycle_clean() {
        let table = WatermarkTable::new();
        let a = table.acquire(0);
        table.publish(a, 700);
        table.publish(a, 200);
        assert_eq!(table.min_frontier(), 700, "publish never regresses");
        table.release(a);
        let b = table.acquire(0);
        assert_eq!(b, a, "first free slot is reused");
        assert_eq!(table.min_frontier(), 0, "no stale mark from the previous occupant");
    }

    #[test]
    fn acquire_seeds_from_parent_frontier() {
        let table = WatermarkTable::new();
        let a = table.acquire(0);
        table.publish(a, 60_000);
        let b = table.acquire(60_000);
        assert_eq!(table.min_frontier(), 60_000, "clone must not stall the watermark");
        table.release(a);
        table.release(b);
    }

    #[test]
    fn table_scales_past_the_old_64_handle_word_boundary() {
        // 80 rounds up to two mask words (128 slots): the single-u64
        // cap this table used to have is gone.
        let table = WatermarkTable::with_capacity(80);
        assert_eq!(table.capacity(), 128);
        let slots: Vec<usize> = (0..80).map(|i| table.acquire(i as u64 + 1)).collect();
        assert_eq!(slots[64], 64, "the 65th handle claims the second word's first bit");
        assert_eq!(table.live(), 80);
        assert_eq!(table.min_frontier(), 1, "min scan reads the first word");
        assert_eq!(table.max_frontier(), 80, "max scan reads the second word");
        table.release(slots[0]);
        assert_eq!(table.min_frontier(), 2, "released first-word slot stops contributing");
        let again = table.acquire(500);
        assert_eq!(again, slots[0], "first free bit — across all words — is reused");
        for &slot in &slots[1..] {
            table.release(slot);
        }
        table.release(again);
        assert_eq!(table.live(), 0);
        assert_eq!(table.min_frontier(), 0);
    }

    #[test]
    #[should_panic(expected = "too many live IngestHandles")]
    fn exhausting_every_provisioned_slot_panics() {
        let table = WatermarkTable::with_capacity(64);
        for _ in 0..=64 {
            table.acquire(0);
        }
    }

    #[test]
    fn watermark_table_is_safe_under_concurrent_churn() {
        // Scale the churn with the proptest profile machinery so debug
        // runs and PROPTEST_CASES-capped CI stay fast while release
        // runs (and the TSan lane) hammer properly.
        let rounds = 25 * ProptestConfig::profile_cases(8).cases as u64;
        let table = Arc::new(WatermarkTable::new());
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let table = Arc::clone(&table);
                std::thread::spawn(move || {
                    for round in 0..rounds {
                        let slot = table.acquire(t * 1_000);
                        table.publish(slot, t * 1_000 + round);
                        let _ = table.min_frontier();
                        table.release(slot);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(table.live(), 0);
        assert_eq!(table.min_frontier(), 0);
    }
}

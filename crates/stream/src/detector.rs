//! The detection stage of the pipeline: a registry of detector builders
//! and the running bank they assemble into.
//!
//! Where the seed had a closed two-variant enum, the pipeline now runs
//! any number of [`Detector`] implementations side by side over the
//! same shard-merge stream — the paper's premise ("can be integrated
//! with any anomaly detection system") taken to its operational
//! conclusion, the way SENATUS and Facebook's Fast Dimensional Analysis
//! feed one root-cause mining stage from a detector ensemble.
//!
//! - [`DetectorSpec`] — plain-data configuration for the built-in
//!   detectors (KL histograms, sliding entropy-PCA).
//! - [`DetectorRegistry`] — named builders, pre-populated from specs
//!   and open to [`register`](DetectorRegistry::register)ed custom
//!   detectors; lives in [`StreamConfig`](crate::pipeline::StreamConfig).
//! - [`DetectorBank`] — the live ensemble the control thread feeds:
//!   every closed window goes to every detector, alarms on the same
//!   window are merged into one [`EnsembleAlarm`] (one extraction per
//!   flagged window, however many detectors fired) with per-detector
//!   attribution and counters kept intact.

use std::sync::Arc;

use anomex_detect::alarm::Alarm;
use anomex_detect::detector::Detector;
use anomex_detect::interval::IntervalStat;
use anomex_detect::kl::{KlConfig, KlOnline};
use anomex_detect::pca::{PcaConfig, PcaSliding};
use anomex_flow::store::TimeRange;
use anomex_obs::{Counter, StageTimer};
use serde::{Deserialize, Serialize};

use crate::window::ClosedWindow;

/// Configuration of one built-in detector slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorSpec {
    /// Histogram/KL detector — bit-identical with the batch
    /// `KlDetector` over the same windows.
    Kl(KlConfig),
    /// Entropy-PCA detector over a trailing window of the given length
    /// (incremental sliding-window PCA; approximates the batch
    /// detector).
    Pca(PcaConfig, usize),
}

impl DetectorSpec {
    /// The detection interval the windows must be cut to.
    pub fn interval_ms(&self) -> u64 {
        match self {
            DetectorSpec::Kl(c) => c.interval_ms,
            DetectorSpec::Pca(c, _) => c.interval_ms,
        }
    }

    /// The attribution name of the detector this spec builds.
    pub fn name(&self) -> &'static str {
        match self {
            DetectorSpec::Kl(_) => "kl",
            DetectorSpec::Pca(..) => "entropy-pca",
        }
    }

    /// Build a fresh incremental state.
    pub fn build(&self) -> Box<dyn Detector> {
        match *self {
            DetectorSpec::Kl(c) => Box::new(KlOnline::new(c)),
            DetectorSpec::Pca(c, history) => Box::new(PcaSliding::new(c, history)),
        }
    }
}

type BuildFn = Arc<dyn Fn() -> Box<dyn Detector> + Send + Sync>;

#[derive(Clone)]
struct RegistryEntry {
    name: String,
    interval_ms: u64,
    build: BuildFn,
}

/// Named detector builders: what a pipeline's detection stage runs.
///
/// Built-in detectors enter via [`DetectorSpec`]s; anything implementing
/// [`Detector`] can be [`register`](DetectorRegistry::register)ed
/// alongside them. Every entry must agree on the detection interval —
/// [`launch`](crate::pipeline::launch) validates it, since the tumbling
/// window grid is shared by the whole bank.
#[derive(Clone, Default)]
pub struct DetectorRegistry {
    entries: Vec<RegistryEntry>,
}

impl DetectorRegistry {
    /// Empty registry (invalid to launch with — add at least one
    /// detector).
    pub fn new() -> DetectorRegistry {
        DetectorRegistry { entries: Vec::new() }
    }

    /// Registry running a single KL detector.
    pub fn kl(config: KlConfig) -> DetectorRegistry {
        DetectorRegistry::from_specs(&[DetectorSpec::Kl(config)])
    }

    /// Registry running a single sliding-PCA detector.
    pub fn pca(config: PcaConfig, history: usize) -> DetectorRegistry {
        DetectorRegistry::from_specs(&[DetectorSpec::Pca(config, history)])
    }

    /// Registry running every spec'd detector as an ensemble.
    pub fn from_specs(specs: &[DetectorSpec]) -> DetectorRegistry {
        let mut registry = DetectorRegistry::new();
        for spec in specs {
            registry.add_spec(*spec);
        }
        registry
    }

    /// Append one built-in detector.
    pub fn add_spec(&mut self, spec: DetectorSpec) -> &mut DetectorRegistry {
        let build: BuildFn = Arc::new(move || spec.build());
        self.entries.push(RegistryEntry {
            name: spec.name().to_string(),
            interval_ms: spec.interval_ms(),
            build,
        });
        self
    }

    /// Builder-style [`add_spec`](DetectorRegistry::add_spec).
    pub fn with_spec(mut self, spec: DetectorSpec) -> DetectorRegistry {
        self.add_spec(spec);
        self
    }

    /// Register a custom detector under `name`: `build` is called once
    /// per pipeline launch to create the incremental state. The name
    /// appears in alarm attribution and per-detector counters; it
    /// should match what the built states report from
    /// [`Detector::name`].
    ///
    /// # Panics
    /// Panics when `name` contains `'+'` — that is the merged-alarm
    /// attribution separator ("kl+entropy-pca"), and a name embedding
    /// it would be indistinguishable from a cross-detector merge.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        interval_ms: u64,
        build: impl Fn() -> Box<dyn Detector> + Send + Sync + 'static,
    ) -> &mut DetectorRegistry {
        let name = name.into();
        assert!(
            !name.contains('+'),
            "detector name '{name}' may not contain '+': it is the ensemble attribution separator"
        );
        self.entries.push(RegistryEntry { name, interval_ms, build: Arc::new(build) });
        self
    }

    /// Names of the registered detectors, in run order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Number of registered detectors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no detector is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The common detection interval.
    ///
    /// # Panics
    /// Panics when the registry is empty or the entries disagree —
    /// the tumbling-window grid is shared, so a mixed-interval bank
    /// cannot be windowed.
    pub fn interval_ms(&self) -> u64 {
        let first = self.entries.first().expect("detector registry is empty").interval_ms;
        for e in &self.entries {
            assert_eq!(
                e.interval_ms, first,
                "detector '{}' wants a {} ms interval but the bank runs at {} ms",
                e.name, e.interval_ms, first
            );
        }
        first
    }

    /// Build the live bank the control thread feeds.
    pub fn build_bank(&self) -> DetectorBank {
        DetectorBank {
            slots: self
                .entries
                .iter()
                .map(|e| BankSlot {
                    name: e.name.clone(),
                    state: (e.build)(),
                    instruments: DetectorInstruments::standalone(),
                })
                .collect(),
            next_id: 0,
        }
    }
}

impl std::fmt::Debug for DetectorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectorRegistry").field("detectors", &self.names()).finish()
    }
}

/// One merged alarm with its per-detector sources.
///
/// `alarm` is what drives extraction: when a single detector fired it
/// is that detector's alarm verbatim (id included — a single-detector
/// pipeline stays bit-identical with batch detection); when several
/// detectors flagged the same window it is a synthesized alarm whose
/// detector name joins the sources ("kl+entropy-pca"), whose hints are
/// the deduplicated union of the sources' hints, and whose id counts
/// merged alarms in this pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleAlarm {
    /// The merged alarm extraction runs on.
    pub alarm: Alarm,
    /// The contributing alarms, one per detector that fired, in bank
    /// order (detector-native ids).
    pub sources: Vec<Alarm>,
}

impl EnsembleAlarm {
    /// Wrap a single detector's alarm (attribution = itself).
    pub fn solo(alarm: Alarm) -> EnsembleAlarm {
        EnsembleAlarm { sources: vec![alarm.clone()], alarm }
    }
}

/// Per-detector counters of one pipeline run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorCounters {
    /// Detector (registry) name.
    pub name: String,
    /// Windows this detector consumed.
    pub windows: u64,
    /// Alarms this detector raised (before cross-detector merging).
    pub alarms: u64,
}

/// Telemetry handles one bank member reports through. The counters are
/// the authoritative per-detector totals ([`DetectorBank::counters`] is
/// a view over them): standalone by default, swapped for registry-
/// backed handles when the pipeline instruments the bank — that swap is
/// what migrates `StreamStats.per_detector` onto the metrics registry
/// without changing any caller.
#[derive(Debug, Clone, Default)]
pub struct DetectorInstruments {
    /// Wall time of each `Detector::push` call (nanoseconds).
    pub push_timer: StageTimer,
    /// Windows this detector consumed.
    pub windows: Counter,
    /// Alarms this detector raised (before cross-detector merging).
    pub alarms: Counter,
}

impl DetectorInstruments {
    /// Live counters not attached to any registry, no push timing —
    /// the default for a bank built outside an instrumented pipeline.
    pub fn standalone() -> DetectorInstruments {
        DetectorInstruments {
            push_timer: StageTimer::noop(),
            windows: Counter::standalone(),
            alarms: Counter::standalone(),
        }
    }
}

struct BankSlot {
    name: String,
    state: Box<dyn Detector>,
    instruments: DetectorInstruments,
}

/// The running detector ensemble: every closed window is fed to every
/// detector; alarms on the same window are merged into one
/// [`EnsembleAlarm`] so downstream extraction runs once per flagged
/// window regardless of how many detectors agree.
pub struct DetectorBank {
    slots: Vec<BankSlot>,
    next_id: u64,
}

impl DetectorBank {
    /// Number of detectors in the bank.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the bank holds no detector.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Per-detector counters so far, in bank order (a view over the
    /// slots' [`DetectorInstruments`] counters).
    pub fn counters(&self) -> Vec<DetectorCounters> {
        self.slots
            .iter()
            .map(|s| DetectorCounters {
                name: s.name.clone(),
                windows: s.instruments.windows.get(),
                alarms: s.instruments.alarms.get(),
            })
            .collect()
    }

    /// Swap each slot's telemetry handles, matched by detector name.
    /// Call before feeding the bank: previously counted totals stay
    /// behind in the replaced handles.
    pub fn instrument(&mut self, mut provide: impl FnMut(&str) -> DetectorInstruments) {
        for slot in &mut self.slots {
            slot.instruments = provide(&slot.name);
        }
    }

    /// Feed one closed window's summary to every detector; returns the
    /// merged alarms (usually empty or one), in window order.
    pub fn push(&mut self, stat: &IntervalStat) -> Vec<EnsembleAlarm> {
        // Collect (window, source alarms in bank order).
        let mut groups: Vec<(TimeRange, Vec<Alarm>)> = Vec::new();
        for slot in &mut self.slots {
            slot.instruments.windows.inc();
            let state = &mut slot.state;
            for alarm in slot.instruments.push_timer.time(|| state.push(stat)) {
                slot.instruments.alarms.inc();
                match groups.iter_mut().find(|(w, _)| *w == alarm.window) {
                    Some((_, sources)) => sources.push(alarm),
                    None => groups.push((alarm.window, vec![alarm])),
                }
            }
        }
        groups.sort_by_key(|(w, _)| w.from_ms);
        groups
            .into_iter()
            .map(|(window, sources)| {
                let merged = self.merge(window, &sources);
                EnsembleAlarm { alarm: merged, sources }
            })
            .collect()
    }

    /// Feed one closed window; returns the merged alarms it raised.
    pub fn push_window(&mut self, window: &ClosedWindow) -> Vec<EnsembleAlarm> {
        self.push(&window.stat)
    }

    /// One alarm out of the window's sources. A lone source passes
    /// through verbatim except for the id, which always counts merged
    /// alarms — for a single-detector bank the two numberings coincide,
    /// preserving the batch==stream bit-identity.
    fn merge(&mut self, window: TimeRange, sources: &[Alarm]) -> Alarm {
        let id = self.next_id;
        self.next_id += 1;
        if sources.len() == 1 {
            let mut alarm = sources[0].clone();
            alarm.id = id;
            return alarm;
        }
        let detector = sources.iter().map(|a| a.detector.as_str()).collect::<Vec<_>>().join("+");
        // Union of hints, first-seen order (earlier bank slots first).
        let mut hints = Vec::new();
        for source in sources {
            for hint in &source.hints {
                if !hints.contains(hint) {
                    hints.push(*hint);
                }
            }
        }
        // Scores live on detector-specific scales; carry the most
        // severe source's score/severity — and its kind guess, so the
        // label matches the severity it is reported with — rather than
        // inventing a unit.
        // total_cmp, not partial_cmp: a custom detector emitting a NaN
        // score must not panic the pipeline control thread.
        let worst = sources
            .iter()
            .max_by(|a, b| a.severity.cmp(&b.severity).then(a.score.total_cmp(&b.score)))
            .expect("merge called with sources");
        let mut merged = Alarm::new(id, detector, window).with_hints(hints);
        let kind =
            worst.kind_hint.clone().or_else(|| sources.iter().find_map(|s| s.kind_hint.clone()));
        if let Some(kind) = kind {
            merged = merged.with_kind(kind);
        }
        merged.score = worst.score;
        merged.severity = worst.severity;
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_detect::alarm::Severity;
    use anomex_flow::feature::FeatureItem;
    use anomex_flow::record::FlowRecord;
    use anomex_flow::store::TimeRange;
    use std::net::Ipv4Addr;

    fn scan_stat(range: TimeRange, benign: u32, scan: u32) -> IntervalStat {
        let mut stat = IntervalStat::empty(range);
        for i in 0..benign {
            stat.add(
                &FlowRecord::builder()
                    .time(range.from_ms + i as u64, range.from_ms + i as u64 + 5)
                    .src(Ipv4Addr::from(0x0A00_0000 + (i % 30)), 1_024 + (i % 400) as u16)
                    .dst(Ipv4Addr::from(0xAC10_0000 + (i % 5)), 80)
                    .volume(2, 1_000)
                    .build(),
            );
        }
        for p in 1..=scan {
            stat.add(
                &FlowRecord::builder()
                    .time(range.from_ms + p as u64 % 1_000, range.from_ms + p as u64 % 1_000 + 1)
                    .src("10.66.66.66".parse().unwrap(), 55_548)
                    .dst("172.16.0.99".parse().unwrap(), p as u16)
                    .volume(1, 44)
                    .build(),
            );
        }
        stat
    }

    fn feed(bank: &mut DetectorBank, windows: u64, scan_in_last: bool) -> Vec<EnsembleAlarm> {
        let mut merged = Vec::new();
        for t in 0..windows {
            let range = TimeRange::new(t * 1_000, (t + 1) * 1_000);
            let scan = if scan_in_last && t == windows - 1 { 1_200 } else { 0 };
            // Wobble the benign load so PCA's training variance is
            // non-degenerate.
            let benign = 150 + (t % 4) as u32 * 13;
            merged.extend(bank.push(&scan_stat(range, benign, scan)));
        }
        merged
    }

    #[test]
    fn single_kl_bank_alarms_on_scan_window() {
        let config = KlConfig { interval_ms: 1_000, ..KlConfig::default() };
        let mut bank = DetectorRegistry::kl(config).build_bank();
        let alarms = feed(&mut bank, 8, true);
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].alarm.window.from_ms, 7_000);
        assert_eq!(alarms[0].alarm.detector, "kl");
        assert_eq!(alarms[0].sources.len(), 1);
        let counters = bank.counters();
        assert_eq!(counters.len(), 1);
        assert_eq!(counters[0].name, "kl");
        assert_eq!(counters[0].windows, 8);
        assert_eq!(counters[0].alarms, 1);
    }

    #[test]
    fn ensemble_merges_same_window_alarms_with_attribution() {
        let kl = KlConfig { interval_ms: 1_000, ..KlConfig::default() };
        let pca = PcaConfig { interval_ms: 1_000, ..PcaConfig::default() };
        let registry =
            DetectorRegistry::from_specs(&[DetectorSpec::Kl(kl), DetectorSpec::Pca(pca, 12)]);
        assert_eq!(registry.names(), vec!["kl", "entropy-pca"]);
        assert_eq!(registry.interval_ms(), 1_000);

        let mut bank = registry.build_bank();
        let alarms = feed(&mut bank, 12, true);
        assert_eq!(alarms.len(), 1, "one merged alarm per flagged window");
        let ensemble = &alarms[0];
        assert_eq!(ensemble.sources.len(), 2, "both detectors must flag the scan");
        assert_eq!(ensemble.alarm.detector, "kl+entropy-pca");
        assert_eq!(ensemble.alarm.id, 0, "merged ids count merged alarms");
        assert_eq!(ensemble.sources[0].detector, "kl");
        assert_eq!(ensemble.sources[1].detector, "entropy-pca");
        // The union meta-data carries the scanner from either source.
        assert!(
            ensemble
                .alarm
                .hints
                .iter()
                .any(|h| *h == FeatureItem::src_ip("10.66.66.66".parse().unwrap())),
            "union hints lost the scanner: {:?}",
            ensemble.alarm.hints
        );
        let counters = bank.counters();
        assert_eq!(counters[0].alarms, 1);
        assert_eq!(counters[1].alarms, 1);
        assert_eq!(counters[1].windows, 12);
    }

    #[test]
    fn custom_detector_registers_and_runs() {
        struct EveryWindow {
            next_id: u64,
        }
        impl Detector for EveryWindow {
            fn name(&self) -> &str {
                "every-window"
            }
            fn interval_ms(&self) -> u64 {
                1_000
            }
            fn push(&mut self, stat: &IntervalStat) -> Vec<Alarm> {
                let alarm = Alarm::new(self.next_id, self.name(), stat.range);
                self.next_id += 1;
                vec![alarm]
            }
        }
        let mut registry = DetectorRegistry::new();
        registry.register("every-window", 1_000, || Box::new(EveryWindow { next_id: 0 }));
        let mut bank = registry.build_bank();
        let merged = feed(&mut bank, 3, false);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[2].alarm.id, 2);
        assert_eq!(bank.counters()[0].alarms, 3);
    }

    #[test]
    fn merged_alarm_takes_most_severe_source() {
        let kl = KlConfig { interval_ms: 1_000, ..KlConfig::default() };
        let mut bank = DetectorRegistry::kl(kl).build_bank();
        // Craft a merge directly: two sources with conflicting kind
        // guesses, the second more severe — score, severity AND kind
        // must all come from the same (worst) source.
        let window = TimeRange::new(0, 1_000);
        let a = Alarm::new(0, "kl", window).with_score(2.0, 1.9).with_kind("port scan");
        let b = Alarm::new(0, "entropy-pca", window).with_score(50.0, 1.0).with_kind("flood");
        let merged = bank.merge(window, &[a, b]);
        assert_eq!(merged.severity, Severity::High);
        assert_eq!(merged.score, 50.0);
        assert_eq!(merged.detector, "kl+entropy-pca");
        assert_eq!(merged.kind_hint.as_deref(), Some("flood"), "kind follows the worst source");
    }

    #[test]
    fn merge_survives_nan_scores_from_custom_detectors() {
        let kl = KlConfig { interval_ms: 1_000, ..KlConfig::default() };
        let mut bank = DetectorRegistry::kl(kl).build_bank();
        let window = TimeRange::new(0, 1_000);
        let mut a = Alarm::new(0, "bad-custom", window);
        a.score = f64::NAN; // same (default Medium) severity as `b`
        let b = Alarm::new(0, "kl", window).with_score(3.0, 1.9);
        let merged = bank.merge(window, &[a, b]);
        assert_eq!(merged.detector, "bad-custom+kl", "NaN must not panic the merge");
    }

    #[test]
    #[should_panic(expected = "may not contain '+'")]
    fn registering_a_plus_name_is_rejected() {
        struct Never;
        impl Detector for Never {
            fn name(&self) -> &str {
                "ips+ids"
            }
            fn interval_ms(&self) -> u64 {
                1_000
            }
            fn push(&mut self, _stat: &IntervalStat) -> Vec<Alarm> {
                Vec::new()
            }
        }
        DetectorRegistry::new().register("ips+ids", 1_000, || Box::new(Never));
    }

    #[test]
    #[should_panic(expected = "wants a 2000 ms interval")]
    fn mixed_intervals_panic() {
        let kl = KlConfig { interval_ms: 1_000, ..KlConfig::default() };
        let pca = PcaConfig { interval_ms: 2_000, ..PcaConfig::default() };
        DetectorRegistry::from_specs(&[DetectorSpec::Kl(kl), DetectorSpec::Pca(pca, 8)])
            .interval_ms();
    }
}

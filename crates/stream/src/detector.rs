//! The online detector adapter: one closed window in, alarms out.
//!
//! Wraps the incremental detector states of `anomex-detect`
//! ([`KlOnline`], [`PcaSliding`]) behind one enum so the pipeline's
//! control thread is detector-agnostic — the paper's premise ("can be
//! integrated with any anomaly detection system") carried into the
//! streaming layer.

use anomex_detect::alarm::Alarm;
use anomex_detect::interval::IntervalStat;
use anomex_detect::kl::{KlConfig, KlOnline};
use anomex_detect::pca::{PcaConfig, PcaSliding};

use crate::window::ClosedWindow;

/// Which detector the pipeline runs, with its configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorConfig {
    /// Histogram/KL detector — bit-identical with the batch
    /// `KlDetector` over the same windows.
    Kl(KlConfig),
    /// Entropy-PCA detector refit over a trailing window of the given
    /// length (sliding-window PCA; approximates the batch detector).
    Pca(PcaConfig, usize),
}

impl DetectorConfig {
    /// The detection interval the windows must be cut to.
    pub fn interval_ms(&self) -> u64 {
        match self {
            DetectorConfig::Kl(c) => c.interval_ms,
            DetectorConfig::Pca(c, _) => c.interval_ms,
        }
    }
}

/// Incremental detector state fed one closed window at a time.
#[derive(Debug, Clone)]
pub enum OnlineDetector {
    /// KL histogram state.
    Kl(KlOnline),
    /// Sliding-window PCA state.
    Pca(PcaSliding),
}

impl OnlineDetector {
    /// Fresh state for `config`.
    pub fn new(config: DetectorConfig) -> OnlineDetector {
        match config {
            DetectorConfig::Kl(c) => OnlineDetector::Kl(KlOnline::new(c)),
            DetectorConfig::Pca(c, history) => OnlineDetector::Pca(PcaSliding::new(c, history)),
        }
    }

    /// Feed one closed window's summary; returns the alarm it raised,
    /// if any.
    pub fn push(&mut self, stat: &IntervalStat) -> Option<Alarm> {
        match self {
            OnlineDetector::Kl(state) => state.push(stat),
            OnlineDetector::Pca(state) => state.push(stat),
        }
    }

    /// Feed one closed window; returns the alarm it raised, if any.
    pub fn push_window(&mut self, window: &ClosedWindow) -> Option<Alarm> {
        self.push(&window.stat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_flow::record::FlowRecord;
    use anomex_flow::store::TimeRange;
    use std::net::Ipv4Addr;

    /// Quiet windows then a scan window: the KL adapter must alarm on
    /// the scan window and stay quiet otherwise.
    #[test]
    fn kl_adapter_alarms_on_scan_window() {
        let config = KlConfig { interval_ms: 1_000, ..KlConfig::default() };
        let mut detector = OnlineDetector::new(DetectorConfig::Kl(config));
        let mut alarms = Vec::new();
        for t in 0..8u64 {
            let range = TimeRange::new(t * 1_000, (t + 1) * 1_000);
            let mut stat = IntervalStat::empty(range);
            for i in 0..150u32 {
                stat.add(
                    &FlowRecord::builder()
                        .time(range.from_ms + i as u64, range.from_ms + i as u64 + 5)
                        .src(Ipv4Addr::from(0x0A00_0000 + (i % 30)), 1_024 + (i % 400) as u16)
                        .dst(Ipv4Addr::from(0xAC10_0000 + (i % 5)), 80)
                        .volume(2, 1_000)
                        .build(),
                );
            }
            if t == 7 {
                for p in 1..=1_200u32 {
                    stat.add(
                        &FlowRecord::builder()
                            .time(
                                range.from_ms + p as u64 % 1_000,
                                range.from_ms + p as u64 % 1_000 + 1,
                            )
                            .src("10.66.66.66".parse().unwrap(), 55_548)
                            .dst("172.16.0.99".parse().unwrap(), p as u16)
                            .volume(1, 44)
                            .build(),
                    );
                }
            }
            if let Some(alarm) = detector.push(&stat) {
                alarms.push(alarm);
            }
        }
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].window.from_ms, 7_000);
        assert_eq!(alarms[0].detector, "kl");
    }
}
